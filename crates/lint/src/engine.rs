//! The engine: workspace walk, two-tier rule dispatch (per-file, then
//! interprocedural over the whole parsed set), pragma suppression, and
//! the final report.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::items::{self, ItemIndex};
use crate::pragma::{pragmas, Pragma};
use crate::rules;
use crate::source::SourceFile;
use crate::summary::Analysis;

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings (pragma-suppressed ones removed), sorted by
    /// `(file, line, rule, message)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of findings suppressed by justified pragmas.
    pub suppressed: usize,
    /// Number of files checked.
    pub files: usize,
    /// Number of pragma comment sites across the analysis scope (for the
    /// budget gate — each site may suppress more than one finding).
    pub pragmas: usize,
    /// Analysis cost counters (for `--bench`).
    pub stats: crate::summary::Stats,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors()
    }
}

/// Lints a parsed file set as one unit: per-file rules, then the
/// interprocedural rules over the call graph spanning the whole set, then
/// pragma suppression and hygiene per file. The set *is* the analysis
/// scope — calls into files outside it simply do not resolve.
pub fn lint_files(files: &[SourceFile]) -> Report {
    let items: Vec<ItemIndex> = files.iter().map(items::index).collect();
    let mut found = Vec::new();
    for (file, idx) in files.iter().zip(&items) {
        rules::check_file(file, idx, &mut found);
    }
    let analysis = Analysis::build(files, &items);
    rules::check_graph(&analysis, &mut found);

    let mut report = Report {
        files: files.len(),
        stats: analysis.stats,
        ..Report::default()
    };
    let by_path: BTreeMap<&Path, usize> = files
        .iter()
        .enumerate()
        .map(|(k, f)| (f.path.as_path(), k))
        .collect();
    let prags: Vec<Vec<Pragma>> = files.iter().map(pragmas).collect();
    report.pragmas = prags.iter().map(Vec::len).sum();
    for d in found {
        let file_prags = by_path
            .get(d.path.as_path())
            .map(|&k| prags[k].as_slice())
            .unwrap_or(&[]);
        if let Some(p) = file_prags.iter().find(|p| p.suppresses(d.rule, d.line)) {
            p.used.set(true);
            report.suppressed += 1;
        } else {
            report.diagnostics.push(d);
        }
    }
    for (file, file_prags) in files.iter().zip(&prags) {
        pragma_hygiene(file, file_prags, &mut report);
    }
    report.diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    report
}

/// `pragma`: malformed pragmas, unknown rule ids, missing justification,
/// and unused allows. A misspelled rule id must never silently suppress —
/// it is reported instead.
fn pragma_hygiene(file: &SourceFile, prags: &[Pragma], report: &mut Report) {
    for p in prags {
        let mut fail = |message: String, severity: Severity| {
            report.diagnostics.push(Diagnostic {
                path: file.path.clone(),
                line: p.line,
                rule: "pragma",
                message,
                hint: "format: `// s4d-lint: allow(<rule>) — <justification>`; rules: \
                       determinism, ordered-iter, panic, panic-path, lock-graph, \
                       lock-across-io, durability, typestate, file-budget, \
                       unbounded-retry, shard-discipline, shard-affinity, \
                       async-ready, hot-alloc",
                severity,
                chain: Vec::new(),
            });
        };
        if !p.well_formed {
            fail(
                "malformed s4d-lint pragma (expected `allow(<rule, …>)`)".to_string(),
                Severity::Error,
            );
            continue;
        }
        for r in &p.rules {
            if !config::RULES.contains(&r.as_str()) {
                fail(
                    format!("allow names unknown rule `{r}` — nothing is suppressed"),
                    Severity::Error,
                );
            }
        }
        if !p.justified {
            fail(
                "allow pragma without a justification".to_string(),
                Severity::Error,
            );
        } else if !p.used.get() && p.rules.iter().all(|r| config::RULES.contains(&r.as_str())) {
            fail(
                format!(
                    "unused allow pragma for `{}` (nothing on the covered lines trips it)",
                    p.rules.join(", ")
                ),
                Severity::Warning,
            );
        }
    }
}

/// Recursively collects `.rs` files under `dir`, skipping fixture
/// directories (they hold seeded violations) and anything unreadable.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "fixtures" || name == "target" || name == "vendor" {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The workspace directories the linter covers.
const WORKSPACE_ROOTS: &[&str] = &["src", "tests", "examples", "crates"];

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    for r in WORKSPACE_ROOTS {
        collect_rs(&root.join(r), &mut files);
    }
    if files.is_empty() {
        return Err(format!(
            "no .rs files under {} — run from the workspace root or pass paths",
            root.display()
        ));
    }
    lint_paths(root, &files)
}

/// Lints an explicit set of files as one analysis scope (workspace-
/// relative scoping is derived from each path's prefix relative to
/// `root`).
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> Result<Report, String> {
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files.push(SourceFile::parse(path.clone(), rel, &src));
    }
    Ok(lint_files(&files))
}
