//! Per-function effect summaries with a **must/may split**, propagated
//! along the call graph and grounded on each function's CFG.
//!
//! Each function gets a [`Summary`] in two halves:
//!
//! * **may-facts** — what *some* path does: append to the journal,
//!   discard or apply cache bytes, charge the crash fuse, perform device
//!   I/O, acquire locks, panic. Collected as unions over the reachable
//!   blocks; unreachable code contributes nothing.
//! * **must-facts** (`appends_all`, `fuse_all`) — what *every* path
//!   reaching the function's exit does, computed by a forward
//!   must-analysis (meet = conjunction) over the CFG
//!   ([`crate::dataflow`]). At a call site only a callee's must-facts
//!   establish ordering state for the caller: "this call appends" is
//!   sound only if the callee appends on all of *its* paths.
//!
//! On top of the split, two **ordered exposures** capture the
//! §9-relevant shapes a callee can leak to its caller:
//!
//! * `exposed_discard` — on some path a discard happens with no journal
//!   append before it (the caller must provide the append first, or
//!   recovery maps freed space);
//! * `exposed_unfused_effect` — on some path a durable effect happens
//!   with no crash-fuse charge before it.
//!
//! Alongside the summaries, [`NodeFacts`] records for every event
//! whether an append/fuse *must* have happened before it on every path —
//! the per-event facts the durability rule and witness descent consume.
//!
//! Summaries are computed to a fixpoint: all facts are monotone booleans
//! or sets drawn from finite universes, so iteration terminates. Calls to
//! the protocol primitives themselves (`append_journal_sync`,
//! `fuse_consume`, `journal_op`, `data_op`) and to the durable-effect /
//! device-I/O method names are classified *by name* — they are the
//! protocol's anchor vocabulary — and are not expanded through their
//! resolved bodies, mirroring the PR-3 rule that the primitives implement
//! the gate rather than being checked against it.

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, FnId};
use crate::cfg::{BlockId, Cfg};
use crate::config;
use crate::dataflow;
use crate::items::{Event, EventKind, ItemIndex};
use crate::source::SourceFile;

/// What one function may — and must — do, transitively.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Summary {
    /// May call `append_journal_sync` on some path.
    pub appends: bool,
    /// Calls `append_journal_sync` on **every** path reaching exit.
    pub appends_all: bool,
    /// May call the batched `journal_op` planner.
    pub journal_op: bool,
    /// May call the `data_op` plan constructor.
    pub data_op: bool,
    /// May charge the crash fuse.
    pub fuse: bool,
    /// Charges the crash fuse on **every** path reaching exit.
    pub fuse_all: bool,
    /// May perform device I/O or a journal append (lock-across-io).
    pub device_io: bool,
    /// Locks this function (or a callee) may acquire.
    pub acquires: BTreeSet<String>,
    /// May panic (unwrap/expect/panic-macro/indexing site reachable).
    pub panics: bool,
    /// Some path discards before any journal append covers it.
    pub exposed_discard: bool,
    /// Some path performs a durable effect before any fuse charge.
    pub exposed_unfused_effect: bool,
}

/// Per-event must-facts for one function: has an append / fuse charge
/// happened on **every** path reaching each event? Unreachable events
/// are vacuously covered (no path reaches them at all).
#[derive(Debug, Default, Clone)]
pub struct NodeFacts {
    /// `append_journal_sync` on every path before event `k`.
    pub appended_before: Vec<bool>,
    /// `fuse_consume` on every path before event `k`.
    pub fused_before: Vec<bool>,
    /// Event `k` sits in a block reachable from the entry.
    pub reachable: Vec<bool>,
}

/// Cost counters for the analysis, reported by `--bench`.
#[derive(Debug, Default)]
pub struct Stats {
    /// Functions with a CFG (call-graph nodes).
    pub functions: usize,
    /// Total basic blocks across all CFGs.
    pub blocks: usize,
    /// Total CFG edges.
    pub edges: usize,
    /// Outer passes of the interprocedural summary fixpoint.
    pub summary_passes: usize,
    /// Worklist iterations across every intra-function dataflow solve
    /// (summary phase plus the flow-sensitive rules).
    pub dataflow_iterations: std::cell::Cell<usize>,
    /// Shard-state accesses classified by the alias layer
    /// ([`crate::alias`]) across all functions.
    pub alias_facts: std::cell::Cell<usize>,
    /// Distinct locks in the computed lock-acquisition graph.
    pub lock_graph_nodes: std::cell::Cell<usize>,
    /// Held-while-acquiring edges in the lock-acquisition graph.
    pub lock_graph_edges: std::cell::Cell<usize>,
    /// Edge expansions performed by the cycle search.
    pub cycle_checks: std::cell::Cell<usize>,
}

impl Stats {
    /// Adds intra-function worklist iterations to the running total.
    pub fn add_iterations(&self, n: usize) {
        self.dataflow_iterations
            .set(self.dataflow_iterations.get() + n);
    }

    /// Adds alias-layer access classifications to the running total.
    pub fn add_alias_facts(&self, n: usize) {
        self.alias_facts.set(self.alias_facts.get() + n);
    }

    /// Records the lock-acquisition graph's size.
    pub fn set_lock_graph(&self, nodes: usize, edges: usize) {
        self.lock_graph_nodes.set(nodes);
        self.lock_graph_edges.set(edges);
    }

    /// Adds cycle-search edge expansions to the running total.
    pub fn add_cycle_checks(&self, n: usize) {
        self.cycle_checks.set(self.cycle_checks.get() + n);
    }
}

/// The fully analyzed workspace: parsed files, items, CFGs, graph,
/// summaries, and per-event facts.
pub struct Analysis<'a> {
    /// The parsed files, in walk order.
    pub files: &'a [SourceFile],
    /// Item index per file (parallel to `files`).
    pub items: &'a [ItemIndex],
    /// The call graph over the non-test library functions.
    pub graph: CallGraph,
    /// Control-flow graph per graph node.
    pub cfgs: Vec<Cfg>,
    /// Fixpoint summaries, one per graph node.
    pub summaries: Vec<Summary>,
    /// Per-event must-facts, one per graph node.
    pub facts: Vec<NodeFacts>,
    /// Analysis cost counters.
    pub stats: Stats,
}

/// Resolved targets of a call event. Protocol-anchor names resolve to
/// nothing: they are vocabulary classified by name, never expanded.
pub fn call_targets<'a>(graph: &'a CallGraph, ev: &Event) -> &'a [FnId] {
    let EventKind::Call { name, .. } = &ev.kind else {
        return &[];
    };
    if is_protocol_name(name) {
        return &[];
    }
    graph.resolve(name)
}

/// True for the protocol's anchor vocabulary — classified by name, never
/// expanded through resolution.
pub fn is_protocol_name(name: &str) -> bool {
    name == config::JOURNAL_SYNC_FN
        || name == config::JOURNAL_BATCH_FN
        || name == config::DATA_OP_FN
        || name == config::FUSE_FN
        || config::DEVICE_IO_FNS.contains(&name)
}

/// Applies one event's effect to a `(appended, fused)` must-fact pair.
/// Only callee **must**-facts establish state — a callee that appends on
/// some path establishes nothing for the caller's ordering.
fn apply_event(
    id: FnId,
    ev: &Event,
    graph: &CallGraph,
    summaries: &[Summary],
    fact: (bool, bool),
) -> (bool, bool) {
    let (mut appended, mut fused) = fact;
    if let EventKind::Call { name, .. } = &ev.kind {
        let n = name.as_str();
        if n == config::JOURNAL_SYNC_FN {
            appended = true;
        } else if n == config::FUSE_FN {
            fused = true;
        } else if !is_protocol_name(n) {
            for &callee in graph.resolve(n) {
                if callee != id {
                    appended |= summaries[callee].appends_all;
                    fused |= summaries[callee].fuse_all;
                }
            }
        }
    }
    (appended, fused)
}

/// Computes all summaries and per-event facts to fixpoint.
pub fn compute(
    items: &[ItemIndex],
    graph: &CallGraph,
    cfgs: &[Cfg],
    stats: &mut Stats,
) -> (Vec<Summary>, Vec<NodeFacts>) {
    let mut summaries = vec![Summary::default(); graph.len()];
    let mut facts = vec![NodeFacts::default(); graph.len()];
    // Monotone facts over finite universes: iterate until stable. The
    // iteration count is bounded by the number of facts that can flip,
    // but a hard cap keeps pathological inputs from stalling the linter.
    for _ in 0..graph.len().max(4) {
        stats.summary_passes += 1;
        let mut changed = false;
        for id in 0..graph.len() {
            let (next, nf) = recompute(id, items, graph, cfgs, &summaries, stats);
            if next != summaries[id] {
                summaries[id] = next;
                changed = true;
            }
            facts[id] = nf;
        }
        if !changed {
            break;
        }
    }
    (summaries, facts)
}

/// One function's summary from its CFG, direct events, and current
/// callee summaries.
fn recompute(
    id: FnId,
    items: &[ItemIndex],
    graph: &CallGraph,
    cfgs: &[Cfg],
    summaries: &[Summary],
    stats: &Stats,
) -> (Summary, NodeFacts) {
    let (fi, ni) = graph.nodes[id];
    let f = &items[fi].fns[ni];
    let cfg = &cfgs[id];
    // Forward must-analysis: (appended-on-every-path, fused-on-every-path).
    let sol = dataflow::forward(
        cfg,
        (false, false),
        (true, true),
        |a, b| (a.0 && b.0, a.1 && b.1),
        |b, fact| {
            let mut fact = *fact;
            for &e in &cfg.blocks[b].events {
                fact = apply_event(id, &f.events[e], graph, summaries, fact);
            }
            fact
        },
    );
    stats.add_iterations(sol.iterations);

    let reach = cfg.reachable();
    let mut s = Summary {
        appends_all: sol.entry[cfg.exit].0,
        fuse_all: sol.entry[cfg.exit].1,
        ..Summary::default()
    };
    let mut nf = NodeFacts {
        appended_before: vec![true; f.events.len()],
        fused_before: vec![true; f.events.len()],
        reachable: vec![false; f.events.len()],
    };
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !reach[b] {
            continue;
        }
        let mut fact = sol.entry[b];
        for &e in &blk.events {
            let ev = &f.events[e];
            nf.appended_before[e] = fact.0;
            nf.fused_before[e] = fact.1;
            nf.reachable[e] = true;
            match &ev.kind {
                EventKind::Acquire { lock, .. } => {
                    s.acquires.insert(lock.clone());
                }
                EventKind::Panic { .. } => s.panics = true,
                EventKind::Intent => {}
                EventKind::Call { name, method } => {
                    let n = name.as_str();
                    if config::DEVICE_IO_FNS.contains(&n) {
                        s.device_io = true;
                    }
                    match n {
                        _ if n == config::JOURNAL_SYNC_FN => s.appends = true,
                        _ if n == config::JOURNAL_BATCH_FN => s.journal_op = true,
                        _ if n == config::DATA_OP_FN => s.data_op = true,
                        _ if n == config::FUSE_FN => s.fuse = true,
                        _ if *method && config::DURABLE_EFFECT_FNS.contains(&n) => {
                            if n == "discard" && !fact.0 {
                                s.exposed_discard = true;
                            }
                            if !fact.1 {
                                s.exposed_unfused_effect = true;
                            }
                        }
                        _ if is_protocol_name(n) => {}
                        _ => {
                            for &callee in graph.resolve(n) {
                                if callee == id {
                                    continue;
                                }
                                let c = &summaries[callee];
                                if c.exposed_discard && !fact.0 {
                                    s.exposed_discard = true;
                                }
                                if c.exposed_unfused_effect && !fact.1 {
                                    s.exposed_unfused_effect = true;
                                }
                                s.appends |= c.appends;
                                s.journal_op |= c.journal_op;
                                s.data_op |= c.data_op;
                                s.device_io |= c.device_io;
                                s.panics |= c.panics;
                                for l in &c.acquires {
                                    s.acquires.insert(l.clone());
                                }
                            }
                        }
                    }
                    s.fuse |= fact.1;
                }
            }
            fact = apply_event(id, ev, graph, summaries, fact);
        }
    }
    s.fuse |= s.fuse_all;
    s.appends |= s.appends_all;
    (s, nf)
}

impl<'a> Analysis<'a> {
    /// Builds CFGs, graph, summaries, and facts over parsed files + items.
    pub fn build(files: &'a [SourceFile], items: &'a [ItemIndex]) -> Analysis<'a> {
        let graph = CallGraph::build(files, items);
        let mut stats = Stats::default();
        let cfgs: Vec<Cfg> = graph
            .nodes
            .iter()
            .map(|&(fi, ni)| {
                let f = &items[fi].fns[ni];
                Cfg::build(&files[fi], f, &f.nested)
            })
            .collect();
        stats.functions = cfgs.len();
        stats.blocks = cfgs.iter().map(|c| c.blocks.len()).sum();
        stats.edges = cfgs
            .iter()
            .flat_map(|c| c.blocks.iter())
            .map(|b| b.succs.len())
            .sum();
        let (summaries, facts) = compute(items, &graph, &cfgs, &mut stats);
        Analysis {
            files,
            items,
            graph,
            cfgs,
            summaries,
            facts,
            stats,
        }
    }

    /// The [`crate::items::FnItem`] behind a node id.
    pub fn fn_item(&self, id: FnId) -> &crate::items::FnItem {
        let (fi, ni) = self.graph.nodes[id];
        &self.items[fi].fns[ni]
    }

    /// File index of a node.
    pub fn file_of(&self, id: FnId) -> &SourceFile {
        &self.files[self.graph.nodes[id].0]
    }

    /// Renders one `file:line fn` chain step.
    pub fn step(&self, id: FnId, line: u32) -> String {
        format!(
            "{}:{} fn {}",
            self.file_of(id).rel,
            line,
            self.fn_item(id).name
        )
    }

    /// Renders a block path through one function as a witness line:
    /// `path through fn name: entry@12 -> then@14 -> exit`.
    pub fn path_trace(&self, id: FnId, path: &[BlockId]) -> String {
        let cfg = &self.cfgs[id];
        let steps: Vec<String> = path
            .iter()
            .map(|&b| {
                let blk = &cfg.blocks[b];
                if blk.line > 0 {
                    format!("{}@{}", blk.label, blk.line)
                } else {
                    blk.label.to_string()
                }
            })
            .collect();
        format!(
            "path through fn {}: {}",
            self.fn_item(id).name,
            steps.join(" -> ")
        )
    }

    /// Finds a deterministic witness chain from `start` to the first
    /// direct event matching `pred`, following call edges through
    /// functions for which `via` holds. Returns rendered chain steps
    /// ending at the witness line, or an empty chain if none is found
    /// (the summaries promised one, so this is defensive).
    pub fn witness<F, G>(&self, start: FnId, pred: F, via: G) -> Vec<String>
    where
        F: Fn(&Analysis<'a>, FnId) -> Option<u32>,
        G: Fn(&Summary) -> bool,
    {
        let mut chain = Vec::new();
        let mut cur = start;
        let mut seen = std::collections::BTreeSet::new();
        loop {
            if !seen.insert(cur) {
                return chain; // cycle: stop with what we have
            }
            if let Some(line) = pred(self, cur) {
                chain.push(self.step(cur, line));
                return chain;
            }
            // Descend into the first callee (source order) whose summary
            // still promises the witness.
            let (fi, ni) = self.graph.nodes[cur];
            let mut next = None;
            'events: for ev in &self.items[fi].fns[ni].events {
                for &callee in call_targets(&self.graph, ev) {
                    if callee != cur && via(&self.summaries[callee]) {
                        chain.push(self.step(cur, ev.line));
                        next = Some(callee);
                        break 'events;
                    }
                }
            }
            match next {
                Some(n) => cur = n,
                None => return chain,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use std::path::PathBuf;

    fn analyze(sources: &[(&str, &str)]) -> (Vec<SourceFile>, Vec<ItemIndex>) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(PathBuf::from(rel), rel.to_string(), src))
            .collect();
        let idx = files.iter().map(items::index).collect();
        (files, idx)
    }

    fn summary_of<'a>(a: &'a Analysis<'_>, name: &str) -> &'a Summary {
        let id = a
            .graph
            .nodes
            .iter()
            .position(|&(fi, ni)| a.items[fi].fns[ni].name == name)
            .unwrap();
        &a.summaries[id]
    }

    #[test]
    fn effects_propagate_transitively() {
        let (files, idx) = analyze(&[
            (
                "crates/core/src/a.rs",
                "pub fn top() { mid_layer(); }\nfn mid_layer() { leaf_effect(); }",
            ),
            (
                "crates/core/src/b.rs",
                "fn leaf_effect(c: &mut C) { c.apply_bytes(1, 2, 3, None); }",
            ),
        ]);
        let a = Analysis::build(&files, &idx);
        let top = summary_of(&a, "top");
        assert!(top.device_io, "apply_bytes is device I/O, two hops down");
        assert!(top.exposed_unfused_effect, "no fuse anywhere on the path");
    }

    #[test]
    fn exposed_discard_clears_when_append_precedes() {
        let (files, idx) = analyze(&[(
            "crates/core/src/a.rs",
            "fn safe(c: &mut C) { append_journal_sync(&[]); c.discard(1, 2, 3); }\n\
             fn exposed(c: &mut C) { c.discard(1, 2, 3); append_journal_sync(&[]); }\n\
             fn caller_safe(c: &mut C) { append_journal_sync(&[]); helper_d(c); }\n\
             fn helper_d(c: &mut C) { fuse_consume(1); c.discard(1, 2, 3); }",
        )]);
        let a = Analysis::build(&files, &idx);
        assert!(!summary_of(&a, "safe").exposed_discard);
        assert!(summary_of(&a, "exposed").exposed_discard);
        assert!(summary_of(&a, "helper_d").exposed_discard);
        assert!(
            !summary_of(&a, "caller_safe").exposed_discard,
            "the caller's append covers the callee's exposed discard"
        );
        assert!(
            !summary_of(&a, "helper_d").exposed_unfused_effect,
            "helper fuses its own effect"
        );
    }

    #[test]
    fn must_facts_require_every_path() {
        let (files, idx) = analyze(&[(
            "crates/core/src/a.rs",
            "fn one_arm(c: &mut C, x: bool) { if x { append_journal_sync(&[]); } }\n\
             fn both_arms(c: &mut C, x: bool) { if x { append_journal_sync(&[]); } \
                else { append_journal_sync(&[]); } }\n\
             fn via_branchy(c: &mut C, x: bool) { one_arm(c, x); c.discard(1, 2, 3); }\n\
             fn via_total(c: &mut C, x: bool) { both_arms(c, x); c.discard(1, 2, 3); }",
        )]);
        let a = Analysis::build(&files, &idx);
        let one = summary_of(&a, "one_arm");
        assert!(one.appends && !one.appends_all, "append on some path only");
        let both = summary_of(&a, "both_arms");
        assert!(both.appends_all, "append on every path");
        assert!(
            summary_of(&a, "via_branchy").exposed_discard,
            "a some-path append does not cover the discard after the call"
        );
        assert!(
            !summary_of(&a, "via_total").exposed_discard,
            "an all-paths append covers the discard after the call"
        );
    }

    #[test]
    fn branch_local_append_does_not_cover_the_other_arm() {
        let (files, idx) = analyze(&[(
            "crates/core/src/a.rs",
            "fn hidden(c: &mut C, x: bool) { if x { append_journal_sync(&[]); } \
                else { c.discard(1, 2, 3); } }\n\
             fn guarded(c: &mut C, x: bool) { if x { append_journal_sync(&[]); \
                c.discard(1, 2, 3); } }",
        )]);
        let a = Analysis::build(&files, &idx);
        assert!(
            summary_of(&a, "hidden").exposed_discard,
            "the append on the sibling arm covers nothing"
        );
        assert!(
            !summary_of(&a, "guarded").exposed_discard,
            "append and discard on the same branch are ordered"
        );
    }

    #[test]
    fn panic_propagates_and_witness_chains() {
        let (files, idx) = analyze(&[
            ("crates/core/src/a.rs", "pub fn api() { helper_p(); }"),
            (
                "crates/sim/src/b.rs",
                "pub fn helper_p() { deep_p(); }\nfn deep_p(x: Option<u32>) { x.unwrap(); }",
            ),
        ]);
        let a = Analysis::build(&files, &idx);
        assert!(summary_of(&a, "api").panics);
        let api = a
            .graph
            .nodes
            .iter()
            .position(|&(fi, ni)| a.items[fi].fns[ni].name == "api")
            .unwrap();
        let chain = a.witness(
            api,
            |a, id| {
                a.fn_item(id).events.iter().find_map(|e| match e.kind {
                    EventKind::Panic { .. } => Some(e.line),
                    _ => None,
                })
            },
            |s| s.panics,
        );
        assert_eq!(chain.len(), 3, "api → helper_p → deep_p panic: {chain:?}");
        assert!(chain[2].contains("fn deep_p"));
    }

    #[test]
    fn unreachable_effects_are_invisible() {
        let (files, idx) = analyze(&[(
            "crates/core/src/a.rs",
            "fn dead_code(c: &mut C) { return; c.discard(1, 2, 3); }",
        )]);
        let a = Analysis::build(&files, &idx);
        assert!(
            !summary_of(&a, "dead_code").exposed_discard,
            "no path reaches the discard"
        );
    }
}
