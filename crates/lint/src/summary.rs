//! Per-function effect summaries, propagated along the call graph.
//!
//! Each function gets a [`Summary`] of what it *may* do, transitively:
//! append to the journal, discard or apply cache bytes, charge the crash
//! fuse, perform device I/O, acquire locks, or panic. On top of the may-
//! sets, two **ordered exposures** capture the §9-relevant shapes a
//! callee can leak to its caller:
//!
//! * `exposed_discard` — some discard happens with no journal append
//!   earlier *within the function's own expanded order* (the caller must
//!   provide the append first, or recovery maps freed space);
//! * `exposed_unfused_effect` — some durable effect happens with no
//!   crash-fuse charge earlier (the caller must charge the fuse, or the
//!   torture matrix cannot crash inside the effect).
//!
//! Summaries are computed to a fixpoint: all facts are monotone booleans
//! or sets drawn from finite universes, so iteration terminates. Calls to
//! the protocol primitives themselves (`append_journal_sync`,
//! `fuse_consume`, `journal_op`, `data_op`) and to the durable-effect /
//! device-I/O method names are classified *by name* — they are the
//! protocol's anchor vocabulary — and are not expanded through their
//! resolved bodies, mirroring the PR-3 rule that the primitives implement
//! the gate rather than being checked against it.

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, FnId};
use crate::config;
use crate::items::{Event, EventKind, ItemIndex};
use crate::source::SourceFile;

/// What one function may do, transitively.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Summary {
    /// May call `append_journal_sync`.
    pub appends: bool,
    /// May call the batched `journal_op` planner.
    pub journal_op: bool,
    /// May call the `data_op` plan constructor.
    pub data_op: bool,
    /// May charge the crash fuse.
    pub fuse: bool,
    /// May perform device I/O or a journal append (lock-across-io).
    pub device_io: bool,
    /// Locks this function (or a callee) may acquire.
    pub acquires: BTreeSet<String>,
    /// May panic (unwrap/expect/panic-macro/indexing site reachable).
    pub panics: bool,
    /// A discard may happen before any journal append in expanded order.
    pub exposed_discard: bool,
    /// A durable effect may happen before any fuse charge in expanded
    /// order.
    pub exposed_unfused_effect: bool,
}

/// The fully analyzed workspace: parsed files, items, graph, summaries.
pub struct Analysis<'a> {
    /// The parsed files, in walk order.
    pub files: &'a [SourceFile],
    /// Item index per file (parallel to `files`).
    pub items: &'a [ItemIndex],
    /// The call graph over the non-test library functions.
    pub graph: CallGraph,
    /// Fixpoint summaries, one per graph node.
    pub summaries: Vec<Summary>,
}

/// Resolved targets of a call event. Protocol-anchor names resolve to
/// nothing: they are vocabulary classified by name, never expanded.
pub fn call_targets<'a>(graph: &'a CallGraph, ev: &Event) -> &'a [FnId] {
    let EventKind::Call { name, .. } = &ev.kind else {
        return &[];
    };
    if is_protocol_name(name) {
        return &[];
    }
    graph.resolve(name)
}

/// True for the protocol's anchor vocabulary — classified by name, never
/// expanded through resolution.
pub fn is_protocol_name(name: &str) -> bool {
    name == config::JOURNAL_SYNC_FN
        || name == config::JOURNAL_BATCH_FN
        || name == config::DATA_OP_FN
        || name == config::FUSE_FN
        || config::DEVICE_IO_FNS.contains(&name)
}

/// Computes all summaries to fixpoint.
pub fn compute(items: &[ItemIndex], graph: &CallGraph) -> Vec<Summary> {
    let mut summaries = vec![Summary::default(); graph.len()];
    // Monotone facts over finite universes: iterate until stable. The
    // iteration count is bounded by the number of facts that can flip,
    // but a hard cap keeps pathological inputs from stalling the linter.
    for _ in 0..graph.len().max(4) {
        let mut changed = false;
        for id in 0..graph.len() {
            let next = recompute(id, items, graph, &summaries);
            if next != summaries[id] {
                summaries[id] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

/// One function's summary from its direct events plus current callee
/// summaries, walked in source order.
fn recompute(id: FnId, items: &[ItemIndex], graph: &CallGraph, summaries: &[Summary]) -> Summary {
    let (fi, ni) = graph.nodes[id];
    let f = &items[fi].fns[ni];
    let mut s = Summary::default();
    // Walk state: has an append / fuse charge happened yet, in expanded
    // order?
    let mut appended = false;
    let mut fused = false;
    for ev in &f.events {
        match &ev.kind {
            EventKind::Acquire { lock, .. } => {
                s.acquires.insert(lock.clone());
            }
            EventKind::Panic { .. } => s.panics = true,
            EventKind::Intent => {}
            EventKind::Call { name, method } => {
                if config::DEVICE_IO_FNS.contains(&name.as_str()) {
                    s.device_io = true;
                }
                match name.as_str() {
                    n if n == config::JOURNAL_SYNC_FN => {
                        s.appends = true;
                        appended = true;
                    }
                    n if n == config::JOURNAL_BATCH_FN => s.journal_op = true,
                    n if n == config::DATA_OP_FN => s.data_op = true,
                    n if n == config::FUSE_FN => {
                        s.fuse = true;
                        fused = true;
                    }
                    n if *method && config::DURABLE_EFFECT_FNS.contains(&n) => {
                        if n == "discard" && !appended {
                            s.exposed_discard = true;
                        }
                        if !fused {
                            s.exposed_unfused_effect = true;
                        }
                    }
                    n if is_protocol_name(n) => {}
                    n => {
                        for &callee in graph.resolve(n) {
                            if callee == id {
                                continue;
                            }
                            let c = &summaries[callee];
                            if c.exposed_discard && !appended {
                                s.exposed_discard = true;
                            }
                            if c.exposed_unfused_effect && !fused {
                                s.exposed_unfused_effect = true;
                            }
                            s.appends |= c.appends;
                            s.journal_op |= c.journal_op;
                            s.data_op |= c.data_op;
                            s.device_io |= c.device_io;
                            s.panics |= c.panics;
                            for l in &c.acquires {
                                s.acquires.insert(l.clone());
                            }
                            appended |= c.appends;
                            if c.fuse {
                                s.fuse = true;
                                fused = true;
                            }
                        }
                    }
                }
            }
        }
    }
    s
}

impl<'a> Analysis<'a> {
    /// Builds graph and summaries over parsed files + items.
    pub fn build(files: &'a [SourceFile], items: &'a [ItemIndex]) -> Analysis<'a> {
        let graph = CallGraph::build(files, items);
        let summaries = compute(items, &graph);
        Analysis {
            files,
            items,
            graph,
            summaries,
        }
    }

    /// The [`crate::items::FnItem`] behind a node id.
    pub fn fn_item(&self, id: FnId) -> &crate::items::FnItem {
        let (fi, ni) = self.graph.nodes[id];
        &self.items[fi].fns[ni]
    }

    /// File index of a node.
    pub fn file_of(&self, id: FnId) -> &SourceFile {
        &self.files[self.graph.nodes[id].0]
    }

    /// Renders one `file:line fn` chain step.
    pub fn step(&self, id: FnId, line: u32) -> String {
        format!(
            "{}:{} fn {}",
            self.file_of(id).rel,
            line,
            self.fn_item(id).name
        )
    }

    /// Finds a deterministic witness chain from `start` to the first
    /// direct event matching `pred`, following call edges through
    /// functions for which `via` holds. Returns rendered chain steps
    /// ending at the witness line, or an empty chain if none is found
    /// (the summaries promised one, so this is defensive).
    pub fn witness<F, G>(&self, start: FnId, pred: F, via: G) -> Vec<String>
    where
        F: Fn(&Analysis<'a>, FnId) -> Option<u32>,
        G: Fn(&Summary) -> bool,
    {
        let mut chain = Vec::new();
        let mut cur = start;
        let mut seen = std::collections::BTreeSet::new();
        loop {
            if !seen.insert(cur) {
                return chain; // cycle: stop with what we have
            }
            if let Some(line) = pred(self, cur) {
                chain.push(self.step(cur, line));
                return chain;
            }
            // Descend into the first callee (source order) whose summary
            // still promises the witness.
            let (fi, ni) = self.graph.nodes[cur];
            let mut next = None;
            'events: for ev in &self.items[fi].fns[ni].events {
                for &callee in call_targets(&self.graph, ev) {
                    if callee != cur && via(&self.summaries[callee]) {
                        chain.push(self.step(cur, ev.line));
                        next = Some(callee);
                        break 'events;
                    }
                }
            }
            match next {
                Some(n) => cur = n,
                None => return chain,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use std::path::PathBuf;

    fn analyze(sources: &[(&str, &str)]) -> (Vec<SourceFile>, Vec<ItemIndex>) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(PathBuf::from(rel), rel.to_string(), src))
            .collect();
        let idx = files.iter().map(items::index).collect();
        (files, idx)
    }

    fn summary_of<'a>(a: &'a Analysis<'_>, name: &str) -> &'a Summary {
        let id = a
            .graph
            .nodes
            .iter()
            .position(|&(fi, ni)| a.items[fi].fns[ni].name == name)
            .unwrap();
        &a.summaries[id]
    }

    #[test]
    fn effects_propagate_transitively() {
        let (files, idx) = analyze(&[
            (
                "crates/core/src/a.rs",
                "pub fn top() { mid_layer(); }\nfn mid_layer() { leaf_effect(); }",
            ),
            (
                "crates/core/src/b.rs",
                "fn leaf_effect(c: &mut C) { c.apply_bytes(1, 2, 3, None); }",
            ),
        ]);
        let a = Analysis::build(&files, &idx);
        let top = summary_of(&a, "top");
        assert!(top.device_io, "apply_bytes is device I/O, two hops down");
        assert!(top.exposed_unfused_effect, "no fuse anywhere on the path");
    }

    #[test]
    fn exposed_discard_clears_when_append_precedes() {
        let (files, idx) = analyze(&[(
            "crates/core/src/a.rs",
            "fn safe(c: &mut C) { append_journal_sync(&[]); c.discard(1, 2, 3); }\n\
             fn exposed(c: &mut C) { c.discard(1, 2, 3); append_journal_sync(&[]); }\n\
             fn caller_safe(c: &mut C) { append_journal_sync(&[]); helper_d(c); }\n\
             fn helper_d(c: &mut C) { fuse_consume(1); c.discard(1, 2, 3); }",
        )]);
        let a = Analysis::build(&files, &idx);
        assert!(!summary_of(&a, "safe").exposed_discard);
        assert!(summary_of(&a, "exposed").exposed_discard);
        assert!(summary_of(&a, "helper_d").exposed_discard);
        assert!(
            !summary_of(&a, "caller_safe").exposed_discard,
            "the caller's append covers the callee's exposed discard"
        );
        assert!(
            !summary_of(&a, "helper_d").exposed_unfused_effect,
            "helper fuses its own effect"
        );
    }

    #[test]
    fn panic_propagates_and_witness_chains() {
        let (files, idx) = analyze(&[
            ("crates/core/src/a.rs", "pub fn api() { helper_p(); }"),
            (
                "crates/sim/src/b.rs",
                "pub fn helper_p() { deep_p(); }\nfn deep_p(x: Option<u32>) { x.unwrap(); }",
            ),
        ]);
        let a = Analysis::build(&files, &idx);
        assert!(summary_of(&a, "api").panics);
        let api = a
            .graph
            .nodes
            .iter()
            .position(|&(fi, ni)| a.items[fi].fns[ni].name == "api")
            .unwrap();
        let chain = a.witness(
            api,
            |a, id| {
                a.fn_item(id).events.iter().find_map(|e| match e.kind {
                    EventKind::Panic { .. } => Some(e.line),
                    _ => None,
                })
            },
            |s| s.panics,
        );
        assert_eq!(chain.len(), 3, "api → helper_p → deep_p panic: {chain:?}");
        assert!(chain[2].contains("fn deep_p"));
    }
}
