//! `lock-graph`: deadlock freedom by computed lock-acquisition graph,
//! replacing the old declared lock-order table.
//!
//! The declared table (PR 5) had two weaknesses: it had to be maintained
//! by hand, and it only caught *declared* pairs — a lock missing from
//! the table produced an error about the table, not about a cycle. This
//! rule computes the real graph from the same PR 8 may-held machinery
//! the `lock-across-io` rule uses:
//!
//! * **nodes** are name-class locks (every field named `records` is one
//!   lock — the same approximation the acquisition extractor makes);
//! * **edges** `A → B` mean *lock A is held while B is acquired on some
//!   path*: a direct acquisition inside A's guard extent (intersected
//!   with CFG reachability, so sibling branches don't fabricate holds),
//!   or a call made while A is held into a callee whose transitive
//!   summary acquires B — edges cross function boundaries for free
//!   because the summaries already do;
//! * **cycles** in the graph are potential deadlocks: `A → B → A` means
//!   one thread can hold A wanting B while another holds B wanting A. A
//!   self-loop `A → A` is a re-entry deadlock on a non-reentrant mutex.
//!
//! Each edge carries the witness chain that created it (call-site steps
//! down to the acquisition), so a cycle report shows a concrete
//! interleaving, one hop per edge. Determinism: edges live in a
//! `BTreeMap` keyed by name pair, the first witness (node-id order) is
//! kept, and cycles are enumerated from lexicographically-least start
//! nodes — so the same workspace always renders the same report.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::FnId;
use crate::diag::{Diagnostic, Severity};
use crate::items::EventKind;
use crate::summary::Analysis;

/// One held-while-acquiring edge with the witness that created it.
struct Edge {
    /// Node the edge was discovered in (for the diagnostic anchor).
    fn_id: FnId,
    /// Line of the acquisition (or the call leading to it).
    line: u32,
    /// Rendered steps: the site in the holder, then the descent to the
    /// acquisition when it happens in a callee.
    chain: Vec<String>,
}

/// Runs lock-graph cycle detection over the analyzed workspace.
pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    for id in 0..a.graph.len() {
        let events = &a.fn_item(id).events;
        for (ai, acq) in events.iter().enumerate() {
            let EventKind::Acquire { lock, extent } = &acq.kind else {
                continue;
            };
            nodes.insert(lock.clone());
            for (ei, ev) in events.iter().enumerate() {
                if ev.tok <= acq.tok || !extent.contains(&ev.tok) || !flows_to(a, id, ai, ei) {
                    continue;
                }
                match &ev.kind {
                    EventKind::Acquire { lock: b, .. } => {
                        add_edge(
                            &mut edges,
                            lock,
                            b,
                            Edge {
                                fn_id: id,
                                line: ev.line,
                                chain: vec![a.step(id, ev.line)],
                            },
                        );
                    }
                    EventKind::Call { name, .. } => {
                        if crate::summary::is_protocol_name(name) {
                            continue;
                        }
                        for &callee in a.graph.resolve(name) {
                            if callee == id {
                                continue;
                            }
                            for b in &a.summaries[callee].acquires {
                                let mut chain = vec![a.step(id, ev.line)];
                                chain.extend(a.witness(
                                    callee,
                                    |a, n| first_acquire(a, n, b),
                                    |s| s.acquires.contains(b),
                                ));
                                add_edge(
                                    &mut edges,
                                    lock,
                                    b,
                                    Edge {
                                        fn_id: id,
                                        line: ev.line,
                                        chain,
                                    },
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    a.stats.set_lock_graph(nodes.len(), edges.len());

    for cycle in cycles(a, &edges) {
        // Anchor at the first edge's witness site; the chain walks the
        // whole cycle, one edge at a time.
        let first = &edges[&(cycle[0].clone(), cycle[1 % cycle.len()].clone())];
        let mut ring: Vec<&str> = cycle.iter().map(String::as_str).collect();
        ring.push(&cycle[0]);
        let mut chain = Vec::new();
        for w in cycle.iter().enumerate().map(|(k, from)| {
            let to = &cycle[(k + 1) % cycle.len()];
            &edges[&(from.clone(), to.clone())]
        }) {
            chain.extend(w.chain.iter().cloned());
        }
        out.push(Diagnostic {
            path: a.file_of(first.fn_id).path.clone(),
            line: first.line,
            rule: "lock-graph",
            message: format!(
                "lock-acquisition cycle: {}",
                ring.iter()
                    .map(|l| format!("`{l}`"))
                    .collect::<Vec<_>>()
                    .join(" -> ")
            ),
            hint: "two threads walking this ring from different entry points \
                   deadlock; break the cycle by acquiring these locks in one \
                   global order on every path, or drop the first guard before \
                   taking the second",
            severity: Severity::Error,
            chain,
        });
    }
}

/// True when event `from` may still be live when event `to` runs: same
/// block in token order, or a CFG path between their blocks.
fn flows_to(a: &Analysis, id: FnId, from: usize, to: usize) -> bool {
    let cfg = &a.cfgs[id];
    let (fb, tb) = (cfg.ev_block[from], cfg.ev_block[to]);
    if fb == tb {
        return a.fn_item(id).events[from].tok <= a.fn_item(id).events[to].tok;
    }
    cfg.reaches(fb, tb)
}

/// First direct acquisition of `lock` in a function (witness descent).
fn first_acquire(a: &Analysis, id: FnId, lock: &str) -> Option<u32> {
    a.fn_item(id).events.iter().find_map(|ev| match &ev.kind {
        EventKind::Acquire { lock: l, .. } if l == lock => Some(ev.line),
        _ => None,
    })
}

fn add_edge(edges: &mut BTreeMap<(String, String), Edge>, from: &str, to: &str, e: Edge) {
    edges.entry((from.to_string(), to.to_string())).or_insert(e);
}

/// Elementary cycles of the edge set, each rendered canonically as the
/// node list starting at its lexicographically-least lock. The DFS from
/// each start node only visits nodes `>=` the start, so every cycle is
/// found exactly once, at its least node.
fn cycles(a: &Analysis, edges: &BTreeMap<(String, String), Edge>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut path: Vec<&str> = vec![start];
        dfs(a, start, start, &adj, &mut path, &mut found);
    }
    found.into_iter().collect()
}

fn dfs<'e>(
    a: &Analysis,
    start: &'e str,
    cur: &'e str,
    adj: &BTreeMap<&'e str, Vec<&'e str>>,
    path: &mut Vec<&'e str>,
    found: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(cur) else { return };
    for &next in nexts {
        a.stats.add_cycle_checks(1);
        if next == start {
            found.insert(path.iter().map(|s| s.to_string()).collect());
        } else if next > start && !path.contains(&next) {
            path.push(next);
            dfs(a, start, next, adj, path, found);
            path.pop();
        }
    }
}
