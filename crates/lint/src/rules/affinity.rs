//! `shard-affinity`: every mutation of shard-owned DMT/CDT/space state
//! must be dominated by a `ShardRouter` dispatch for that shard.
//!
//! PR 9 sharded the metadata plane; ROADMAP items 4–5 will drive it from
//! concurrent middlewares and per-shard tasks. At that point the only
//! thing standing between two tasks and a data race is that both picked
//! their shard through the router — the dispatch *is* the ownership
//! protocol. This rule proves the protocol lexically and along paths:
//!
//! * the alias layer ([`crate::alias`]) classifies every shard-state
//!   access in a function — accessor indices (`shard_mut(idx)`), bare
//!   receivers (`shard.dmt.insert(…)`), and the plane's index-taking
//!   methods (`plane.release(shard, …)`) — by routing provenance;
//! * `Routed`/`Static`/`Param`/`Carried` accesses pass outright;
//! * `Flow` accesses (a rebound local) run a forward **must-routed**
//!   dataflow over the CFG: the index must carry a router dispatch on
//!   *every* path into the access (meet = conjunction, an unrouted
//!   rebinding kills the fact). A violating path is materialized as a
//!   block-path witness, like the PR 8 flow rules;
//! * `Unrouted` accesses — `self.dmt` plane internals, unrecognized
//!   chains, indices with no dispatch in their history — are flagged
//!   unconditionally.
//!
//! Severity is **error**: a cross-shard touch that becomes a data race
//! under per-shard tasks is not a style preference. The analysis scope
//! is the `core` crate's library functions (the plane and everything
//! that drives it); trusted provenances (`Param`, `Carried`) encode the
//! routing-by-contract boundaries documented in DESIGN.md §10.

use crate::alias::{self, Provenance};
use crate::diag::{Diagnostic, Severity};
use crate::summary::Analysis;

/// Runs shard-affinity checking over the analyzed workspace.
pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for id in 0..a.graph.len() {
        let file = a.file_of(id);
        if file.crate_name != "core" {
            continue;
        }
        let f = a.fn_item(id);
        let cfg = &a.cfgs[id];
        let accesses = alias::shard_accesses(file, f, cfg);
        a.stats.add_alias_facts(accesses.len());
        for acc in accesses {
            match acc.prov {
                Provenance::Routed
                | Provenance::Static
                | Provenance::Param
                | Provenance::Carried => {}
                Provenance::Unrouted => out.push(unrouted(a, id, &acc, None)),
                Provenance::Flow {
                    ref ident,
                    ref events,
                } => {
                    check_flow(a, id, &acc, ident, events, out);
                }
            }
        }
    }
}

/// Must-routed dataflow for a rebound local: the fact is "the index
/// carries a router dispatch", true only when every path into the use
/// ends with a routed rebinding.
fn check_flow(
    a: &Analysis,
    id: crate::callgraph::FnId,
    acc: &alias::Access,
    ident: &str,
    events: &[(usize, bool)],
    out: &mut Vec<Diagnostic>,
) {
    if !events.iter().any(|&(_, routed)| routed) {
        out.push(unrouted(a, id, acc, Some(ident)));
        return;
    }
    let cfg = &a.cfgs[id];
    // Last rebinding per block decides its out-fact; blocks without a
    // rebinding pass the in-fact through.
    let final_in = |b: usize| -> Option<bool> {
        events
            .iter()
            .rfind(|&&(t, _)| cfg.block_of_tok(t) == Some(b))
            .map(|&(_, routed)| routed)
    };
    let sol = crate::dataflow::forward(
        cfg,
        false,
        true,
        |x, y| *x && *y,
        |b, fact| final_in(b).unwrap_or(*fact),
    );
    a.stats.add_iterations(sol.iterations);
    let Some(ub) = cfg.block_of_tok(acc.tok) else {
        return;
    };
    // Same-block rebindings before the use override the entry fact.
    let mut routed = sol.entry[ub];
    for &(t, r) in events {
        if cfg.block_of_tok(t) == Some(ub) && t < acc.tok {
            routed = r;
        }
    }
    if routed {
        return;
    }
    // Materialize a violating path: entry to the use through blocks
    // whose final rebinding is not a routed one.
    let chain = cfg
        .path_via(cfg.entry, ub, |b| final_in(b) != Some(true))
        .map(|p| vec![a.path_trace(id, &p)])
        .unwrap_or_default();
    out.push(Diagnostic {
        path: a.file_of(id).path.clone(),
        line: acc.line,
        rule: "shard-affinity",
        message: format!(
            "{} uses shard index `{ident}` that is not router-derived on every \
             incoming path",
            acc.what
        ),
        hint: "derive the index from `router.shard_of(file, offset)` (or a routed \
               segment) on every path before touching shard state; a cross-shard \
               touch becomes a data race under per-shard tasks",
        severity: Severity::Error,
        chain,
    });
}

/// A shard-state access with no routing evidence at all.
fn unrouted(
    a: &Analysis,
    id: crate::callgraph::FnId,
    acc: &alias::Access,
    ident: Option<&str>,
) -> Diagnostic {
    let message = match ident {
        Some(w) => format!(
            "{} uses shard index `{w}` with no router dispatch in its history",
            acc.what
        ),
        None => format!(
            "{} touches shard-owned state without a router dispatch",
            acc.what
        ),
    };
    Diagnostic {
        path: a.file_of(id).path.clone(),
        line: acc.line,
        rule: "shard-affinity",
        message,
        hint: "route every shard-state access through \
               `router.shard_of(…)`/`router.segments(…)` (or the shards \
               iterators); the dispatch is the ownership protocol that makes \
               per-shard tasks sound",
        severity: Severity::Error,
        chain: Vec::new(),
    }
}
