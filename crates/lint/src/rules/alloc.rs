//! `hot-alloc`: allocation sites in the designated hot modules —
//! report-only, ratcheted by `crates/lint/alloc_budget.toml`.
//!
//! ROADMAP item 2 wants the identify→redirect→admit pipeline and the
//! exec/drain runner paths allocation-free: under burst load (the
//! LBICA/MIDAS scenario) every transient `Vec` is a malloc in the
//! latency-critical window, and Rust makes them easy to write without
//! noticing (`.collect()`, `.clone()`, `format!`). This rule makes the
//! count visible and one-directional: every allocation site in a hot
//! module ([`crate::config::HOT_PATH_FILES`]) is a warning, the census
//! lives in `alloc_budget.toml`, and `--check-budget` fails when a file
//! exceeds its recorded ceiling — so the count can only go down.
//!
//! Detected shapes (anchored at the name token, one finding per site):
//! `Vec::new(…)`, `vec![…]`, `Box::new(…)`, `.clone()`, `.collect()` /
//! `.collect::<…>()`, `.to_vec()`, `String::from(…)`, and `format!(…)`.
//! The lexical matcher cannot see through user wrappers that allocate
//! internally — the census is a floor, not a proof — and it deliberately
//! does not exempt cold branches inside hot files: the budget file is
//! where "this one is fine" lives, with the count to show for it.

use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

/// Runs allocation-site detection over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !config::is_hot_path(&file.rel) || file.kind.is_test_like() {
        return;
    }
    for i in 0..file.code.len() {
        let Some(what) = alloc_site(file, i) else {
            continue;
        };
        let line = file.line_of(i);
        if file.in_test_span(line) {
            continue;
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line,
            rule: "hot-alloc",
            message: format!("allocation in the hot path: {what}"),
            hint: "reuse a buffer held by the owning struct (clear + extend), or \
                   restructure to borrow; the census in crates/lint/alloc_budget.toml \
                   only ratchets down (ROADMAP item 2)",
            severity: Severity::Warning,
            chain: Vec::new(),
        });
    }
}

/// Classifies token `i` as an allocation site, if it is one.
fn alloc_site(file: &SourceFile, i: usize) -> Option<&'static str> {
    let name = file.ident(i)?;
    match name {
        // Path constructors: `Type :: ctor (`.
        "Vec" | "Box" | "String"
            if file.punct_is(i + 1, ':')
                && file.punct_is(i + 2, ':')
                && file.punct_is(i + 4, '(') =>
        {
            match (name, file.ident(i + 3)) {
                ("Vec", Some("new")) => return Some("`Vec::new()`"),
                ("Vec", Some("with_capacity")) => return Some("`Vec::with_capacity(…)`"),
                ("Box", Some("new")) => return Some("`Box::new(…)`"),
                ("String", Some("from")) => return Some("`String::from(…)`"),
                ("String", Some("new")) => return Some("`String::new()`"),
                _ => {}
            }
        }
        // Allocating macros.
        "vec" if file.punct_is(i + 1, '!') => return Some("`vec![…]`"),
        "format" if file.punct_is(i + 1, '!') => return Some("`format!(…)`"),
        // Allocating method calls: `. name (` or `. name :: < … > (`.
        "clone" | "collect" | "to_vec" | "to_string" | "to_owned"
            if file.punct_is(i.wrapping_sub(1), '.')
                && (file.punct_is(i + 1, '(')
                    || (file.punct_is(i + 1, ':') && file.punct_is(i + 2, ':'))) =>
        {
            return Some(match name {
                "clone" => "`.clone()`",
                "collect" => "`.collect()`",
                "to_vec" => "`.to_vec()`",
                "to_string" => "`.to_string()`",
                _ => "`.to_owned()`",
            });
        }
        _ => {}
    }
    None
}
