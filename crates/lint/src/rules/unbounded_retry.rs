//! `unbounded-retry`: retry/hedge loops with no visible bound.
//!
//! The gray-failure machinery (deadline budgets, hedged reads, replans)
//! is built from *bounded* escalation: every retry loop must carry an
//! iteration cap, an attempt counter, or a budget/deadline check, or a
//! straggler could be re-driven forever — the exact livelock the
//! deadline protocol exists to rule out. This rule audits the retry
//! crates ([`crate::config::RETRY_CRATES`]) for `loop`/`while` bodies
//! that dispatch retry work with no such evidence in sight.
//!
//! A loop qualifies when its body contains a call that either *names*
//! retry dispatch ([`crate::config::RETRY_CALL_PATTERNS`]) or resolves
//! to a workspace function whose own body does — the cross-function
//! case, where the loop and the naked retry live in different files.
//! Evidence of a bound ([`crate::config::RETRY_BOUND_PATTERNS`],
//! matched against identifiers in the enclosing function or in the
//! resolved retry helper) clears the loop.
//!
//! Severity is *warning* (report-only): both the vocabulary and the
//! conservative call graph over-approximate, so a finding is a prompt
//! to audit, not proof of livelock. Justified sites carry
//! `// s4d-lint: allow(unbounded-retry) — <why>` (alias: `retry`).

use std::collections::BTreeSet;
use std::ops::Range;

use crate::callgraph::FnId;
use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::items::{Event, EventKind};
use crate::source::{match_brace, SourceFile};
use crate::summary::{call_targets, Analysis};

/// Runs the retry-loop audit over the retry crates.
pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    // One finding per loop keyword site.
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for id in 0..a.graph.len() {
        let file = a.file_of(id);
        if !config::RETRY_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let f = a.fn_item(id);
        let loops = loop_bodies(file, &f.body);
        if loops.is_empty() {
            continue;
        }
        let fn_bounded = has_bound_ident(file, &f.body);
        for (kw, body) in &loops {
            let Some((ev, helper)) = retry_dispatch_in(a, id, body) else {
                continue;
            };
            // Bound evidence in the enclosing function, or inside the
            // resolved retry helper (its own attempts/budget check).
            if fn_bounded {
                continue;
            }
            if let Some(h) = helper {
                if has_bound_ident(a.file_of(h), &a.fn_item(h).body) {
                    continue;
                }
            }
            let line = file.line_of(*kw);
            if !seen.insert((file.rel.clone(), line)) {
                continue;
            }
            let mut chain = vec![a.step(id, line), a.step(id, ev.line)];
            if let Some(h) = helper {
                if let Some(l) = retry_event_line(a, h) {
                    chain.push(a.step(h, l));
                }
            }
            out.push(Diagnostic {
                path: file.path.clone(),
                line,
                rule: "unbounded-retry",
                message: "retry/hedge loop with no visible iteration cap or budget check"
                    .to_string(),
                hint: "bound the loop (a `MAX_…` cap, an `attempts` counter, a \
                       deadline/budget check) or justify it with \
                       `// s4d-lint: allow(unbounded-retry) — <why>` (alias: `retry`)",
                severity: Severity::Warning,
                chain,
            });
        }
    }
}

/// The `loop`/`while` bodies of one function, as `(keyword token, body
/// token range)` pairs in source order. `for` loops are excluded: their
/// iteration is bounded by the iterator.
fn loop_bodies(file: &SourceFile, body: &Range<usize>) -> Vec<(usize, Range<usize>)> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        match file.ident(i) {
            Some("loop") if file.punct_is(i + 1, '{') => {
                let close = match_brace(&file.code, i + 1);
                out.push((i, i + 2..close));
            }
            Some("while") => {
                // The body brace is the first `{` past the condition at
                // paren/bracket depth 0 (`while let Some(Pat { .. })`
                // keeps its braces inside the parens).
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < body.end {
                    if file.punct_is(j, '(') || file.punct_is(j, '[') {
                        depth += 1;
                    } else if file.punct_is(j, ')') || file.punct_is(j, ']') {
                        depth -= 1;
                    } else if file.punct_is(j, '{') && depth == 0 {
                        let close = match_brace(&file.code, j);
                        out.push((i, j + 1..close));
                        break;
                    }
                    j += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// The first retry-dispatch call event inside `body`: a call whose name
/// matches the retry vocabulary, or one resolving to a function whose
/// own direct events do. Returns the event and the resolved helper (for
/// the cross-function case).
fn retry_dispatch_in<'a>(
    a: &'a Analysis<'_>,
    id: FnId,
    body: &Range<usize>,
) -> Option<(&'a Event, Option<FnId>)> {
    for ev in &a.fn_item(id).events {
        if !body.contains(&ev.tok) {
            continue;
        }
        let EventKind::Call { name, .. } = &ev.kind else {
            continue;
        };
        if is_retry_name(name) {
            return Some((ev, None));
        }
        for &callee in call_targets(&a.graph, ev) {
            if callee != id && retry_event_line(a, callee).is_some() {
                return Some((ev, Some(callee)));
            }
        }
    }
    None
}

/// Line of the first direct retry-named call in a function, if any.
fn retry_event_line(a: &Analysis<'_>, id: FnId) -> Option<u32> {
    a.fn_item(id).events.iter().find_map(|ev| match &ev.kind {
        EventKind::Call { name, .. } if is_retry_name(name) => Some(ev.line),
        _ => None,
    })
}

/// True when a call name marks retry/hedge dispatch.
fn is_retry_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    config::RETRY_CALL_PATTERNS
        .iter()
        .any(|p| lower.contains(p))
}

/// True when any identifier in the token range carries bound evidence
/// (an iteration cap, attempt counter, or budget/deadline check).
fn has_bound_ident(file: &SourceFile, range: &Range<usize>) -> bool {
    (range.start..range.end).any(|i| {
        file.ident(i).is_some_and(|w| {
            let lower = w.to_ascii_lowercase();
            config::RETRY_BOUND_PATTERNS
                .iter()
                .any(|p| lower.contains(p))
        })
    })
}
