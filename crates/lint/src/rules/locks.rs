//! `lock-order` and `lock-across-io`: lock discipline.
//!
//! Acquisitions are extracted lexically: `.lock()`, `.read()`, or
//! `.write()` — zero-argument, so parallel-file-system `read_bytes(...)`
//! style I/O calls never match — on a named struct field or binding
//! (`self.records.lock()`, `handle.records.lock()`, `records.lock()`).
//!
//! * `lock-order` — every acquired lock must appear in the declared
//!   lock-order table ([`crate::config::LOCK_ORDER`]), and within one
//!   function locks must be acquired in table order. The per-function
//!   acquisition sequences form a lock-acquisition graph; an edge that
//!   goes backwards in the table is a potential cycle with any path that
//!   goes forwards, so it is flagged at the acquiring line.
//! * `lock-across-io` — a lock acquisition in the same statement as (or
//!   `let`-bound and lexically before) a device-I/O or journal-append
//!   call stalls every contending thread for a device-latency bound.

use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

/// One lexical lock acquisition inside a function body.
struct Acq {
    /// Field or binding the lock method was called on.
    name: String,
    /// Code-token index of the method name.
    at: usize,
    /// Whether the guard is bound with `let` (lives past the statement).
    bound: bool,
}

/// Runs the lock-discipline family.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind.is_test_like() {
        return;
    }
    for f in &file.fns {
        let acqs = acquisitions(file, f.body.clone());
        if acqs.is_empty() {
            continue;
        }
        check_order(file, &acqs, out);
        check_across_io(file, f.body.clone(), &acqs, out);
    }
}

/// Extracts lock acquisitions from a body token range.
fn acquisitions(file: &SourceFile, body: std::ops::Range<usize>) -> Vec<Acq> {
    let mut out = Vec::new();
    for i in body.clone() {
        // `<recv> . <method> ( )` with method in {lock, read, write}.
        if !matches!(file.ident(i), Some("lock" | "read" | "write")) {
            continue;
        }
        if !(file.punct_is(i.wrapping_sub(1), '.')
            && file.punct_is(i + 1, '(')
            && file.punct_is(i + 2, ')'))
        {
            continue;
        }
        let Some(recv) = i.checked_sub(2).and_then(|r| file.ident(r)) else {
            continue;
        };
        if recv == "self" {
            continue;
        }
        if file.in_test_span(file.line_of(i)) {
            continue;
        }
        out.push(Acq {
            name: recv.to_string(),
            at: i,
            bound: let_bound(file, &body, i),
        });
    }
    out
}

/// True when the statement containing token `i` starts with `let`
/// (scanning back to the previous `;`, `{`, or the body start).
fn let_bound(file: &SourceFile, body: &std::ops::Range<usize>, i: usize) -> bool {
    let mut j = i;
    while j > body.start {
        j -= 1;
        if file.punct_is(j, ';') || file.punct_is(j, '{') {
            return false;
        }
        if file.ident(j) == Some("let") {
            return true;
        }
    }
    false
}

fn rank(name: &str) -> Option<usize> {
    config::LOCK_ORDER.iter().position(|l| *l == name)
}

fn check_order(file: &SourceFile, acqs: &[Acq], out: &mut Vec<Diagnostic>) {
    for (k, a) in acqs.iter().enumerate() {
        let line = file.line_of(a.at);
        let Some(r) = rank(&a.name) else {
            out.push(Diagnostic {
                path: file.path.clone(),
                line,
                rule: "lock-order",
                message: format!("lock `{}` is not in the declared lock-order table", a.name),
                hint: "add the lock to LOCK_ORDER in crates/lint/src/config.rs (and \
                       DESIGN.md §10) at the position matching its acquisition order",
                severity: Severity::Error,
            });
            continue;
        };
        // Any earlier acquisition with a *higher* rank means this path
        // acquires against the declared order.
        for b in acqs.iter().take(k) {
            let Some(rb) = rank(&b.name) else { continue };
            if b.name != a.name && rb > r {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line,
                    rule: "lock-order",
                    message: format!(
                        "lock `{}` acquired after `{}`, against the declared lock order \
                         (cycle risk with any path acquiring in table order)",
                        a.name, b.name
                    ),
                    hint: "acquire locks in LOCK_ORDER table order, or drop the first \
                           guard before taking the second",
                    severity: Severity::Error,
                });
            }
        }
    }
}

fn check_across_io(
    file: &SourceFile,
    body: std::ops::Range<usize>,
    acqs: &[Acq],
    out: &mut Vec<Diagnostic>,
) {
    for a in acqs {
        // The guard's lexical extent: to the end of the statement, or to
        // the end of the function body for `let`-bound guards
        // (conservative — justify early drops with a pragma).
        let extent_end = if a.bound {
            body.end
        } else {
            let mut j = a.at;
            while j < body.end && !file.punct_is(j, ';') {
                j += 1;
            }
            j
        };
        for i in a.at..extent_end {
            let Some(name) = file.ident(i) else { continue };
            if !config::DEVICE_IO_FNS.contains(&name) || !file.punct_is(i + 1, '(') {
                continue;
            }
            out.push(Diagnostic {
                path: file.path.clone(),
                line: file.line_of(i),
                rule: "lock-across-io",
                message: format!("`{name}(…)` called while lock `{}` may be held", a.name),
                hint: "copy what you need out of the guard, drop it, then do the I/O; \
                       if the guard is provably dropped earlier, justify with \
                       `// s4d-lint: allow(lock-across-io) — <proof>`",
                severity: Severity::Error,
            });
            break;
        }
    }
}
