//! `lock-order` and `lock-across-io`: lock discipline, with held-lock
//! sets propagated through callees.
//!
//! Acquisitions are the [`crate::items::EventKind::Acquire`] events the
//! item parser extracts: `.lock()`, `.read()`, or `.write()` —
//! zero-argument, so parallel-file-system `read_bytes(...)` style I/O
//! calls never match — on a named struct field or binding
//! (`self.records.lock()`, `handle.records.lock()`, `records.lock()`).
//! Lock identity is **name-class** based: every acquisition of a field
//! named `records` is treated as the same lock, the same approximation
//! the declared order table itself makes.
//!
//! * `lock-order` — every acquired lock must appear in the declared
//!   lock-order table ([`crate::config::LOCK_ORDER`]), and within one
//!   call path locks must be acquired in table order. Direct
//!   acquisitions are checked in sequence as before; additionally, a
//!   call made while a guard may be held is expanded through the
//!   callee's transitive `acquires` set — a callee acquiring a lock
//!   ranked *at or before* a held one is a potential cycle (or same-lock
//!   re-entry deadlock) and is flagged at the call site with the witness
//!   chain.
//! * `lock-across-io` — device I/O or a journal append issued while a
//!   guard may be held — directly, or anywhere inside a callee (the
//!   summary's `device_io` bit) — stalls every contending thread for a
//!   device-latency bound.
//!
//! A guard's extent is its statement, or the rest of the body when
//! `let`-bound (conservative — justify early drops with a pragma).
//!
//! Since the flow-sensitive rewrite the extent is intersected with CFG
//! **reachability**: an event counts as "inside the hold" only if the
//! acquisition's block actually reaches the event's block (or they share
//! one, in token order). A guard taken on one `if`/`match` arm no longer
//! poisons device I/O on the sibling arm, while loop back-edges keep
//! loop-carried holds visible.

use crate::callgraph::FnId;
use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::items::{Event, EventKind};
use crate::summary::Analysis;

fn rank(name: &str) -> Option<usize> {
    config::LOCK_ORDER.iter().position(|l| *l == name)
}

/// Runs the lock-discipline family over the analyzed workspace.
pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for id in 0..a.graph.len() {
        let events = &a.fn_item(id).events;
        let acqs: Vec<(usize, &Event)> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, EventKind::Acquire { .. }))
            .collect();
        if acqs.is_empty() {
            continue;
        }
        check_order(a, id, &acqs, out);
        for &(k, acq) in &acqs {
            check_extent(a, id, k, acq, out);
        }
    }
}

/// True when event `from` may still be live when event `to` runs: same
/// block in token order, or a CFG path from one block to the other.
fn flows_to(a: &Analysis, id: crate::callgraph::FnId, from: usize, to: usize) -> bool {
    let cfg = &a.cfgs[id];
    let (fb, tb) = (cfg.ev_block[from], cfg.ev_block[to]);
    if fb == tb {
        return a.fn_item(id).events[from].tok <= a.fn_item(id).events[to].tok;
    }
    cfg.reaches(fb, tb)
}

/// Direct-acquisition order: unknown locks, and pairs acquired against
/// the declared table order within one function.
fn check_order(a: &Analysis, id: FnId, acqs: &[(usize, &Event)], out: &mut Vec<Diagnostic>) {
    let file = a.file_of(id);
    for (k, &(ei, acq)) in acqs.iter().enumerate() {
        let EventKind::Acquire { lock, .. } = &acq.kind else {
            continue;
        };
        let Some(r) = rank(lock) else {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: acq.line,
                rule: "lock-order",
                message: format!("lock `{lock}` is not in the declared lock-order table"),
                hint: "add the lock to LOCK_ORDER in crates/lint/src/config.rs (and \
                       DESIGN.md §10) at the position matching its acquisition order",
                severity: Severity::Error,
                chain: Vec::new(),
            });
            continue;
        };
        // Any earlier acquisition with a *higher* rank that actually
        // flows into this one (same block or a CFG path — not a sibling
        // branch) means this path acquires against the declared order.
        for &(bi, b) in acqs.iter().take(k) {
            let EventKind::Acquire { lock: held, .. } = &b.kind else {
                continue;
            };
            let Some(rb) = rank(held) else { continue };
            if held != lock && rb > r && flows_to(a, id, bi, ei) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: acq.line,
                    rule: "lock-order",
                    message: format!(
                        "lock `{lock}` acquired after `{held}`, against the declared lock \
                         order (cycle risk with any path acquiring in table order)"
                    ),
                    hint: "acquire locks in LOCK_ORDER table order, or drop the first \
                           guard before taking the second",
                    severity: Severity::Error,
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// Checks everything inside one guard's extent: direct device I/O,
/// callee device I/O, and callee acquisitions against the held lock.
/// The extent is intersected with CFG reachability from the
/// acquisition, so sibling branches are out of the hold.
fn check_extent(a: &Analysis, id: FnId, ai: usize, acq: &Event, out: &mut Vec<Diagnostic>) {
    let EventKind::Acquire { lock, extent } = &acq.kind else {
        return;
    };
    let file = a.file_of(id);
    let held_rank = rank(lock);
    let mut io_reported = false;
    for (ei, ev) in a.fn_item(id).events.iter().enumerate() {
        if ev.tok <= acq.tok || !extent.contains(&ev.tok) || !flows_to(a, id, ai, ei) {
            continue;
        }
        let EventKind::Call { name, .. } = &ev.kind else {
            continue;
        };
        if config::DEVICE_IO_FNS.contains(&name.as_str()) {
            if !io_reported {
                out.push(across_io(a, id, ev.line, name, lock, Vec::new()));
                io_reported = true;
            }
            continue;
        }
        if crate::summary::is_protocol_name(name) {
            continue;
        }
        for &callee in a.graph.resolve(name) {
            if callee == id {
                continue;
            }
            let c = &a.summaries[callee];
            if c.device_io && !io_reported {
                let mut chain = vec![a.step(id, ev.line)];
                chain.extend(a.witness(callee, first_device_io, |s| s.device_io));
                out.push(across_io(
                    a,
                    id,
                    ev.line,
                    "device I/O in a callee",
                    lock,
                    chain,
                ));
                io_reported = true;
            }
            if let Some(hr) = held_rank {
                for acquired in &c.acquires {
                    let ra = rank(acquired);
                    // Unknown callee locks are flagged at the callee's
                    // own definition; here only the ordering matters.
                    if ra.is_some_and(|ra| ra <= hr) {
                        let mut chain = vec![a.step(id, ev.line)];
                        chain.extend(a.witness(
                            callee,
                            |a, n| first_acquire(a, n, acquired),
                            |s| s.acquires.contains(acquired),
                        ));
                        let what = if acquired == lock {
                            format!(
                                "lock `{acquired}` re-acquired in a callee while `{lock}` \
                                 may already be held (self-deadlock on a non-reentrant \
                                 mutex)"
                            )
                        } else {
                            format!(
                                "lock `{acquired}` acquired in a callee while `{lock}` is \
                                 held, against the declared lock order"
                            )
                        };
                        out.push(Diagnostic {
                            path: file.path.clone(),
                            line: ev.line,
                            rule: "lock-order",
                            message: what,
                            hint: "drop the guard before the call, or restructure so \
                                   locks are taken in LOCK_ORDER table order on every \
                                   call path",
                            severity: Severity::Error,
                            chain,
                        });
                    }
                }
            }
        }
    }
}

/// First direct device-I/O call in a function (witness descent).
fn first_device_io(a: &Analysis, id: FnId) -> Option<u32> {
    a.fn_item(id).events.iter().find_map(|ev| match &ev.kind {
        EventKind::Call { name, .. } if config::DEVICE_IO_FNS.contains(&name.as_str()) => {
            Some(ev.line)
        }
        _ => None,
    })
}

/// First direct acquisition of `lock` in a function (witness descent).
fn first_acquire(a: &Analysis, id: FnId, lock: &str) -> Option<u32> {
    a.fn_item(id).events.iter().find_map(|ev| match &ev.kind {
        EventKind::Acquire { lock: l, .. } if l == lock => Some(ev.line),
        _ => None,
    })
}

fn across_io(
    a: &Analysis,
    id: FnId,
    line: u32,
    what: &str,
    lock: &str,
    chain: Vec<String>,
) -> Diagnostic {
    Diagnostic {
        path: a.file_of(id).path.clone(),
        line,
        rule: "lock-across-io",
        message: format!("`{what}` while lock `{lock}` may be held"),
        hint: "copy what you need out of the guard, drop it, then do the I/O; if the \
               guard is provably dropped earlier, justify with \
               `// s4d-lint: allow(lock-across-io) — <proof>`",
        severity: Severity::Error,
        chain,
    }
}
