//! `lock-across-io`: device I/O issued while a lock may be held, with
//! held-lock sets propagated through callees.
//!
//! Acquisitions are the [`crate::items::EventKind::Acquire`] events the
//! item parser extracts: `.lock()`, `.read()`, or `.write()` —
//! zero-argument, so parallel-file-system `read_bytes(...)` style I/O
//! calls never match — on a named struct field or binding
//! (`self.records.lock()`, `handle.records.lock()`, `records.lock()`).
//! Lock identity is **name-class** based: every acquisition of a field
//! named `records` is treated as the same lock — the same approximation
//! the computed lock-acquisition graph ([`crate::rules::lockgraph`])
//! makes.
//!
//! Device I/O or a journal append issued while a guard may be held —
//! directly, or anywhere inside a callee (the summary's `device_io`
//! bit) — stalls every contending thread for a device-latency bound.
//! Deadlock freedom itself is the `lock-graph` rule's job: it computes
//! the global held-while-acquiring graph from the same extents and
//! callee summaries used here and reports its cycles, replacing the
//! declared lock-order table of PR 5.
//!
//! A guard's extent is its statement, or the rest of the body when
//! `let`-bound (conservative — justify early drops with a pragma).
//!
//! Since the flow-sensitive rewrite the extent is intersected with CFG
//! **reachability**: an event counts as "inside the hold" only if the
//! acquisition's block actually reaches the event's block (or they share
//! one, in token order). A guard taken on one `if`/`match` arm no longer
//! poisons device I/O on the sibling arm, while loop back-edges keep
//! loop-carried holds visible.

use crate::callgraph::FnId;
use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::items::{Event, EventKind};
use crate::summary::Analysis;

/// Runs the lock-across-io check over the analyzed workspace.
pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for id in 0..a.graph.len() {
        let events = &a.fn_item(id).events;
        let acqs: Vec<(usize, &Event)> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, EventKind::Acquire { .. }))
            .collect();
        for &(k, acq) in &acqs {
            check_extent(a, id, k, acq, out);
        }
    }
}

/// True when event `from` may still be live when event `to` runs: same
/// block in token order, or a CFG path from one block to the other.
fn flows_to(a: &Analysis, id: crate::callgraph::FnId, from: usize, to: usize) -> bool {
    let cfg = &a.cfgs[id];
    let (fb, tb) = (cfg.ev_block[from], cfg.ev_block[to]);
    if fb == tb {
        return a.fn_item(id).events[from].tok <= a.fn_item(id).events[to].tok;
    }
    cfg.reaches(fb, tb)
}

/// Checks everything inside one guard's extent for device I/O — direct,
/// or via a callee's transitive `device_io` bit. The extent is
/// intersected with CFG reachability from the acquisition, so sibling
/// branches are out of the hold.
fn check_extent(a: &Analysis, id: FnId, ai: usize, acq: &Event, out: &mut Vec<Diagnostic>) {
    let EventKind::Acquire { lock, extent } = &acq.kind else {
        return;
    };
    let mut io_reported = false;
    for (ei, ev) in a.fn_item(id).events.iter().enumerate() {
        if io_reported {
            break;
        }
        if ev.tok <= acq.tok || !extent.contains(&ev.tok) || !flows_to(a, id, ai, ei) {
            continue;
        }
        let EventKind::Call { name, .. } = &ev.kind else {
            continue;
        };
        if config::DEVICE_IO_FNS.contains(&name.as_str()) {
            out.push(across_io(a, id, ev.line, name, lock, Vec::new()));
            io_reported = true;
            continue;
        }
        if crate::summary::is_protocol_name(name) {
            continue;
        }
        for &callee in a.graph.resolve(name) {
            if callee == id {
                continue;
            }
            if a.summaries[callee].device_io && !io_reported {
                let mut chain = vec![a.step(id, ev.line)];
                chain.extend(a.witness(callee, first_device_io, |s| s.device_io));
                out.push(across_io(
                    a,
                    id,
                    ev.line,
                    "device I/O in a callee",
                    lock,
                    chain,
                ));
                io_reported = true;
            }
        }
    }
}

/// First direct device-I/O call in a function (witness descent).
fn first_device_io(a: &Analysis, id: FnId) -> Option<u32> {
    a.fn_item(id).events.iter().find_map(|ev| match &ev.kind {
        EventKind::Call { name, .. } if config::DEVICE_IO_FNS.contains(&name.as_str()) => {
            Some(ev.line)
        }
        _ => None,
    })
}

fn across_io(
    a: &Analysis,
    id: FnId,
    line: u32,
    what: &str,
    lock: &str,
    chain: Vec<String>,
) -> Diagnostic {
    Diagnostic {
        path: a.file_of(id).path.clone(),
        line,
        rule: "lock-across-io",
        message: format!("`{what}` while lock `{lock}` may be held"),
        hint: "copy what you need out of the guard, drop it, then do the I/O; if the \
               guard is provably dropped earlier, justify with \
               `// s4d-lint: allow(lock-across-io) — <proof>`",
        severity: Severity::Error,
        chain,
    }
}
