//! `panic-path`: the transitive panic surface of the public API.
//!
//! The lexical `panic` rule flags panic *sites* in the panic-free crates.
//! This rule asks the complementary interprocedural question: which panic
//! sites — anywhere in the workspace, including crates outside
//! [`crate::config::PANIC_CRATES`] — are *reachable* from the public API
//! of the middleware crates ([`crate::config::PANIC_PATH_ROOT_CRATES`]),
//! i.e. from an unrestricted `pub fn` that the MPI-IO runner or a library
//! consumer can actually call?
//!
//! Mechanics: a breadth-first reachability pass over the call graph from
//! every public root; each panic event in a reached function becomes one
//! finding, **anchored at the panic site** and carrying the shortest
//! witness call chain (root first). Anchoring at the site means the
//! pragma that justifies the site under the lexical rule
//! (`allow(panic) — …`) also justifies its reachability — one
//! justification covers the construct and every path to it.
//!
//! Severity is *warning*: the conservative call graph over-approximates
//! dispatch (every same-named workspace fn is a possible callee), so a
//! reported path may be infeasible. The chain makes each report cheap to
//! audit; the `panic` rule remains the hard error for the crates that
//! must be panic-free.

use std::collections::BTreeSet;

use crate::callgraph::{FnId, ROOT_PARENT};
use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::items::EventKind;
use crate::summary::Analysis;

/// Runs panic reachability from the public API roots.
pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    let roots: Vec<FnId> = (0..a.graph.len())
        .filter(|&id| {
            a.fn_item(id).is_pub
                && config::PANIC_PATH_ROOT_CRATES.contains(&a.file_of(id).crate_name.as_str())
        })
        .collect();
    let parents = a.graph.reach(&roots);
    // One finding per (file, line): several roots may reach one site, and
    // one site may host several constructs on a line.
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for id in 0..a.graph.len() {
        if parents[id].is_none() {
            continue;
        }
        for ev in &a.fn_item(id).events {
            let EventKind::Panic { what } = ev.kind else {
                continue;
            };
            let file = a.file_of(id);
            if !seen.insert((file.rel.clone(), ev.line)) {
                continue;
            }
            let chain = chain_to(a, &parents, id, ev.line);
            let root = chain.first().cloned().unwrap_or_default();
            out.push(Diagnostic {
                path: file.path.clone(),
                line: ev.line,
                rule: "panic-path",
                message: format!("{what} is reachable from the public API ({root})"),
                hint: "make the panic impossible (return an error, clamp the index) or \
                       justify the site with `// s4d-lint: allow(panic) — <why>`, which \
                       covers its reachability too",
                severity: Severity::Warning,
                chain,
            });
        }
    }
}

/// Reconstructs the shortest root-to-site chain from BFS parent pointers:
/// each caller step renders at the line it calls the next function; the
/// final step is the panic site itself.
fn chain_to(
    a: &Analysis,
    parents: &[Option<(FnId, u32)>],
    id: FnId,
    panic_line: u32,
) -> Vec<String> {
    let mut rev: Vec<(FnId, u32)> = Vec::new();
    let mut cur = id;
    while let Some((p, call_line)) = parents[cur] {
        if p == ROOT_PARENT {
            break;
        }
        rev.push((p, call_line));
        cur = p;
    }
    let mut chain: Vec<String> = rev.iter().rev().map(|&(n, l)| a.step(n, l)).collect();
    chain.push(a.step(id, panic_line));
    chain
}
