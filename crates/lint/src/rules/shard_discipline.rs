//! `shard-discipline`: DMT, space, and CDT mutations in `core` must go
//! through the shard plane's routed API.
//!
//! The sharded metadata plane (DESIGN.md §15) guarantees that
//! `shard_count = 1` is byte- and replay-identical to the pre-shard
//! middleware, and that every mutation lands in the shard that owns its
//! d-key. Both properties hold only if mutations flow through
//! [`MetadataPlane`]'s routed methods: a direct call on a raw component —
//! `dmt.insert(…)`, `space.release(…)`, `cdt.set_c_flag(…)` — bypasses
//! the router, mutates state the owning shard never sees, and silently
//! breaks shard-count invariance (the cross-count equivalence proptests
//! compare byte-level coverage, so a bypassed mutation shows up as a
//! divergence long after the offending line).
//!
//! The rule is lexical: a receiver identifier naming a raw component
//! ([`config::SHARD_COMPONENT_RECEIVERS`]) followed by a mutating method
//! ([`config::SHARD_MUTATOR_FNS`]) is a finding, except in the files that
//! *own* the components ([`config::SHARD_OWNER_FILES`]): the plane and
//! router themselves, the component implementations, and the
//! replay/recovery paths that rebuild a `Dmt` before handing it to
//! [`MetadataPlane::adopt`]. Test code is exempt — tests legitimately
//! build and drive raw components to state invariants.
//!
//! [`MetadataPlane`]: ../../../core/src/shard/plane.rs
//! [`MetadataPlane::adopt`]: ../../../core/src/shard/plane.rs

use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

/// Runs the `shard-discipline` rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.crate_name != "core" || config::SHARD_OWNER_FILES.contains(&file.rel.as_str()) {
        return;
    }
    if file.kind.is_test_like() {
        return;
    }
    for i in 0..file.code.len() {
        let Some(recv) = file.ident(i) else { continue };
        if !config::SHARD_COMPONENT_RECEIVERS.contains(&recv) {
            continue;
        }
        if !file.punct_is(i + 1, '.') {
            continue;
        }
        let Some(method) = file.ident(i + 2) else {
            continue;
        };
        if !config::SHARD_MUTATOR_FNS.contains(&method) || !file.punct_is(i + 3, '(') {
            continue;
        }
        let line = file.line_of(i);
        if file.in_test_span(line) {
            continue;
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line,
            rule: "shard-discipline",
            message: format!(
                "`{recv}.{method}(…)` mutates a raw metadata component outside \
                 the shard plane's owner files"
            ),
            hint: "route the mutation through MetadataPlane (e.g. plane.insert / \
                   plane.release(shard, …) / plane.cdt_insert) so it lands in the \
                   shard that owns the d-key; only the plane, the components, and \
                   replay/recovery may touch dmt/space/cdt directly",
            severity: Severity::Error,
            chain: Vec::new(),
        });
    }
}
