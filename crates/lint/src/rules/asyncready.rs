//! `async-ready`: blocking calls under a held lock on the future service
//! entry surface — report-only.
//!
//! ROADMAP item 5 puts a tokio front end over the middleware: every
//! unrestricted `pub fn` of the `core`/`mpiio` crates becomes code that
//! may run on an executor thread. The classic way that goes wrong is a
//! blocking operation — device I/O, an fsync, a synchronous journal
//! append — issued while a lock is held: the executor thread stalls for
//! a device-latency bound *and* every other task contending on the lock
//! stalls behind it, which is how a handful of slow fsyncs turns into a
//! stalled runtime.
//!
//! Mechanics: BFS reachability over the call graph from the public roots
//! (exactly like `panic-path`), then for every reached function, every
//! [`crate::config::BLOCKING_FNS`] call — direct, or anywhere inside a
//! callee via the summary's `device_io` bit — inside a guard's
//! may-held extent (intersected with CFG reachability) is one warning,
//! carrying the root-to-site chain.
//!
//! Severity is **warning** by design: the service does not exist yet, so
//! nothing is broken today — the rule is the ratchet that keeps the
//! surface clean until it does. `lock-across-io` remains the hard error
//! for the device-I/O subset; this rule covers the wider blocking
//! vocabulary and anchors it to the entry surface.

use std::collections::BTreeSet;

use crate::callgraph::{FnId, ROOT_PARENT};
use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::items::EventKind;
use crate::summary::Analysis;

/// Runs blocking-under-lock detection from the service entry surface.
pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    let roots: Vec<FnId> = (0..a.graph.len())
        .filter(|&id| {
            a.fn_item(id).is_pub
                && config::SERVICE_SURFACE_CRATES.contains(&a.file_of(id).crate_name.as_str())
        })
        .collect();
    let parents = a.graph.reach(&roots);
    // One finding per (file, line): one site may sit inside several
    // guards' extents and be reached from several roots.
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for id in 0..a.graph.len() {
        if parents[id].is_none() {
            continue;
        }
        let events = &a.fn_item(id).events;
        for (ai, acq) in events.iter().enumerate() {
            let EventKind::Acquire { lock, extent } = &acq.kind else {
                continue;
            };
            for (ei, ev) in events.iter().enumerate() {
                if ev.tok <= acq.tok || !extent.contains(&ev.tok) || !flows_to(a, id, ai, ei) {
                    continue;
                }
                let EventKind::Call { name, .. } = &ev.kind else {
                    continue;
                };
                let (what, descent) = if config::BLOCKING_FNS.contains(&name.as_str()) {
                    (format!("`{name}`"), Vec::new())
                } else if !crate::summary::is_protocol_name(name) {
                    let Some(&callee) = a
                        .graph
                        .resolve(name)
                        .iter()
                        .find(|&&c| c != id && a.summaries[c].device_io)
                    else {
                        continue;
                    };
                    (
                        "device I/O in a callee".to_string(),
                        a.witness(callee, first_blocking, |s| s.device_io),
                    )
                } else {
                    continue;
                };
                let file = a.file_of(id);
                if !seen.insert((file.rel.clone(), ev.line)) {
                    continue;
                }
                let mut chain = chain_to(a, &parents, id, ev.line);
                chain.extend(descent);
                let root = chain.first().cloned().unwrap_or_default();
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: ev.line,
                    rule: "async-ready",
                    message: format!(
                        "blocking {what} while lock `{lock}` may be held, reachable \
                         from the service entry surface ({root})"
                    ),
                    hint: "the tokio front end (ROADMAP item 5) will run this on an \
                           executor thread: move the blocking call off the lock, or \
                           hand it to a blocking pool; report-only until the service \
                           lands",
                    severity: Severity::Warning,
                    chain,
                });
            }
        }
    }
}

/// True when event `from` may still be live when event `to` runs.
fn flows_to(a: &Analysis, id: FnId, from: usize, to: usize) -> bool {
    let cfg = &a.cfgs[id];
    let (fb, tb) = (cfg.ev_block[from], cfg.ev_block[to]);
    if fb == tb {
        return a.fn_item(id).events[from].tok <= a.fn_item(id).events[to].tok;
    }
    cfg.reaches(fb, tb)
}

/// First direct blocking call in a function (witness descent).
fn first_blocking(a: &Analysis, id: FnId) -> Option<u32> {
    a.fn_item(id).events.iter().find_map(|ev| match &ev.kind {
        EventKind::Call { name, .. } if config::BLOCKING_FNS.contains(&name.as_str()) => {
            Some(ev.line)
        }
        _ => None,
    })
}

/// Root-to-site chain from the BFS parent pointers (as in `panic-path`).
fn chain_to(a: &Analysis, parents: &[Option<(FnId, u32)>], id: FnId, line: u32) -> Vec<String> {
    let mut rev: Vec<(FnId, u32)> = Vec::new();
    let mut cur = id;
    while let Some((p, call_line)) = parents[cur] {
        if p == ROOT_PARENT {
            break;
        }
        rev.push((p, call_line));
        cur = p;
    }
    let mut chain: Vec<String> = rev.iter().rev().map(|&(n, l)| a.step(n, l)).collect();
    chain.push(a.step(id, line));
    chain
}
