//! `panic`: no panicking constructs in middleware library code.
//!
//! The S4D middleware sits on every I/O path of the simulated cluster
//! (PAPER.md §III, Algorithm 1): a panic in `core`/`pfs`/`mpiio` is an
//! availability bug of the same class ECI-Cache and LBICA treat as
//! first-order cache-server failures. Library code there must return
//! typed errors (`PfsError`-style enums); `unwrap`/`expect` are allowed
//! only with a pragma whose justification proves the invariant locally.
//!
//! Checked: `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`, and (in the middleware crates) panicking slice/array
//! indexing `x[…]`. Test code — `tests/`, `examples/`, `benches/`, and
//! `#[cfg(test)]` spans — is exempt: tests *should* fail loudly. So are
//! `const`/`static` initializer expressions: those evaluate at build
//! time, where a panic is a compile error, not a runtime availability
//! bug.

use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::items::ItemIndex;
use crate::lexer::Tok;
use crate::source::SourceFile;

/// Runs the panic-freedom family.
pub fn check(file: &SourceFile, items: &ItemIndex, out: &mut Vec<Diagnostic>) {
    if file.kind.is_test_like() {
        return;
    }
    let macro_scope = config::PANIC_CRATES.contains(&file.crate_name.as_str());
    let index_scope = config::INDEX_CRATES.contains(&file.crate_name.as_str());
    if !macro_scope && !index_scope {
        return;
    }
    for i in 0..file.code.len() {
        let line = file.line_of(i);
        if file.in_test_span(line) || items.in_const_init(i) {
            continue;
        }
        if macro_scope {
            method_calls(file, i, line, out);
            panic_macros(file, i, line, out);
        }
        if index_scope {
            indexing(file, i, line, out);
        }
    }
}

fn method_calls(file: &SourceFile, i: usize, line: u32, out: &mut Vec<Diagnostic>) {
    if !file.punct_is(i, '.') {
        return;
    }
    let name = match file.ident(i + 1) {
        Some(n @ ("unwrap" | "expect")) => n,
        _ => return,
    };
    if !file.punct_is(i + 2, '(') {
        return;
    }
    out.push(Diagnostic {
        path: file.path.clone(),
        line,
        rule: "panic",
        message: format!("`.{name}()` in library code of crate `{}`", file.crate_name),
        hint: "return a typed error (see pfs::error) or restructure so the invariant \
               is explicit; if locally provable, justify with \
               `// s4d-lint: allow(panic) — <proof>`",
        severity: Severity::Error,
        chain: Vec::new(),
    });
}

fn panic_macros(file: &SourceFile, i: usize, line: u32, out: &mut Vec<Diagnostic>) {
    let name = match file.ident(i) {
        Some(n @ ("panic" | "unreachable" | "todo" | "unimplemented")) => n,
        _ => return,
    };
    if !file.punct_is(i + 1, '!') {
        return;
    }
    out.push(Diagnostic {
        path: file.path.clone(),
        line,
        rule: "panic",
        message: format!("`{name}!` in library code of crate `{}`", file.crate_name),
        hint: "return a typed error instead of aborting the middleware; if the arm is \
               locally unreachable, justify with `// s4d-lint: allow(panic) — <proof>`",
        severity: Severity::Error,
        chain: Vec::new(),
    });
}

/// Reserved words that can directly precede `[` in non-indexing positions.
fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "let"
            | "in"
            | "return"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "const"
            | "static"
            | "as"
            | "yield"
    )
}

/// Flags postfix `[` — indexing — which panics out of bounds. Postfix
/// means the previous token can end an expression: an identifier, a
/// literal, `)`, `]`, or `?`. Array *types* (`[u8; 4]`), attributes
/// (`#[…]`), macro brackets (`vec![…]`), and slice patterns (after a
/// keyword like `let`, or after `,`/`(`) are preceded by non-postfix
/// tokens and never match.
fn indexing(file: &SourceFile, i: usize, line: u32, out: &mut Vec<Diagnostic>) {
    if !file.punct_is(i, '[') || i == 0 {
        return;
    }
    let postfix = match file.code.get(i - 1).map(|t| &t.tok) {
        // Keywords end no expression: `let [a, b] = …` is a pattern,
        // `in [1, 2]` an array literal, `return [x]` likewise.
        Some(Tok::Ident(w)) => !is_keyword(w),
        Some(Tok::Number | Tok::Str | Tok::Punct(')' | ']' | '?')) => true,
        _ => false,
    };
    if !postfix {
        return;
    }
    out.push(Diagnostic {
        path: file.path.clone(),
        line,
        rule: "panic",
        message: format!(
            "slice/array indexing in library code of crate `{}` (panics out of bounds)",
            file.crate_name
        ),
        hint: "use .get()/.get_mut() with a typed error, a checked cursor, or iterators; \
               if the bound is locally provable, justify with \
               `// s4d-lint: allow(panic) — <proof>`",
        severity: Severity::Error,
        chain: Vec::new(),
    });
}
