//! `typestate`: path-sensitive tracking of the durability protocol's
//! value-shaped obligations — `DurabilityHandle` proof tokens and
//! `Pending` background actions.
//!
//! The PR 4 decomposition made journal-before-discard a *type-system*
//! fact: `append_journal_sync` is the only issuer of a
//! `DurabilityHandle`, and `discard_cache` demands one. But the type
//! system's guarantee is erased the moment a helper stores, clones, or
//! stages the value — exactly the shapes this rule re-checks over the
//! CFG ([`crate::cfg`]):
//!
//! * **handle-leak** — a proof bound from `append_journal_sync` (a
//!   `Some(proof)` pattern over a call that appends) with **no use
//!   reachable** from the bind: the append was issued for evidence
//!   nobody presents. A handle is *evidence*, freely re-presentable —
//!   the loop in `make_room` shows a zero-iteration path is legal — so
//!   the check demands a reachable use, not a use on every path.
//! * **pending-leak** — a `Pending` action bound by `let` must reach a
//!   consuming call (`register`/`chain`/`push`) on **every** path to
//!   exit; a path that drops it silently abandons the plan's unpin /
//!   seal / journal-commit obligations. The violating path is reported
//!   as a block trace.
//! * **use-after-consume** — a `Pending` value is an *obligation*,
//!   consumed exactly once: any occurrence after a consuming call on
//!   some path (double registration, stale re-use) is flagged.
//!
//! Bindings come from the CFG builder's [`crate::cfg::PatBind`] records:
//! a `Some(v)` pattern whose initializer/scrutinee calls
//! `append_journal_sync` binds a handle; a plain-identifier pattern
//! whose initializer starts with `Pending::…` binds a pending action.
//! Pattern-position occurrences (`match` arms, `matches!`) are
//! deconstruction and never count as constructions or uses. Name
//! shadowing within one function is merged conservatively (all
//! same-named occurrences attribute to the one bind) — rename the
//! shadow if this ever misfires.
//!
//! Scope: library functions of `core` — the only crate that owns these
//! types.

use std::ops::Range;

use crate::callgraph::FnId;
use crate::cfg::{BlockId, Cfg};
use crate::config;
use crate::dataflow;
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;
use crate::summary::Analysis;

/// Calls that consume a staged `Pending` action (hand the obligation to
/// the background scheduler or a staging vector).
const PENDING_CONSUMERS: &[&str] = &["register", "chain", "push"];

/// Runs the typestate checks over the analyzed workspace.
pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for id in 0..a.graph.len() {
        if a.file_of(id).crate_name != "core" {
            continue;
        }
        check_fn(a, id, out);
    }
}

/// Matching close paren for an open `(` at `open`.
fn match_paren(file: &SourceFile, open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < file.code.len() {
        if file.punct_is(i, '(') {
            depth += 1;
        } else if file.punct_is(i, ')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    file.code.len()
}

/// The bound identifier of a `Some(v)` pattern (allowing `ref`/`mut`).
fn some_bind(file: &SourceFile, span: &Range<usize>) -> Option<usize> {
    let toks: Vec<usize> = span.clone().collect();
    if toks.len() < 4 || toks.len() > 6 {
        return None;
    }
    if file.ident(toks[0]) != Some("Some") || !file.punct_is(toks[1], '(') {
        return None;
    }
    let mut k = 2;
    while matches!(file.ident(toks[k]), Some("ref" | "mut")) && k + 1 < toks.len() {
        k += 1;
    }
    if file.ident(toks[k]).is_some() && file.punct_is(toks[k + 1], ')') && k + 2 == toks.len() {
        Some(toks[k])
    } else {
        None
    }
}

/// The bound identifier of a plain `v` / `mut v` pattern.
fn ident_bind(file: &SourceFile, span: &Range<usize>) -> Option<usize> {
    let toks: Vec<usize> = span.clone().collect();
    match toks.as_slice() {
        [v] if file.ident(*v).is_some() => Some(*v),
        [m, v] if file.ident(*m) == Some("mut") && file.ident(*v).is_some() => Some(*v),
        _ => None,
    }
}

/// True when `range` contains a call token of `name` (`name (`).
fn calls_in(file: &SourceFile, range: &Range<usize>, name: &str) -> bool {
    range
        .clone()
        .any(|i| file.ident(i) == Some(name) && file.punct_is(i + 1, '('))
}

/// True when the first token of `range` starts a `Pending::…` path.
fn inits_pending(file: &SourceFile, range: &Range<usize>) -> bool {
    file.ident(range.start) == Some("Pending")
        && file.punct_is(range.start + 1, ':')
        && file.punct_is(range.start + 2, ':')
}

/// All occurrences of identifier `v` in the body, excluding the binding
/// token itself and pattern-position tokens, sorted by token index.
fn occurrences(file: &SourceFile, cfg: &Cfg, name: &str, bind_tok: usize) -> Vec<usize> {
    cfg.body
        .clone()
        .filter(|&i| i != bind_tok && file.ident(i) == Some(name) && !cfg.in_pattern(i))
        .collect()
}

/// Token ranges of consuming-call argument lists in the body.
fn consumer_arg_spans(file: &SourceFile, cfg: &Cfg) -> Vec<Range<usize>> {
    cfg.body
        .clone()
        .filter(|&i| {
            matches!(file.ident(i), Some(n) if PENDING_CONSUMERS.contains(&n))
                && file.punct_is(i + 1, '(')
        })
        .map(|i| i + 2..match_paren(file, i + 1))
        .collect()
}

fn check_fn(a: &Analysis, id: FnId, out: &mut Vec<Diagnostic>) {
    let file = a.file_of(id);
    let cfg = &a.cfgs[id];
    let reach = cfg.reachable();
    for pat in &cfg.pats {
        // Handle binds: `Some(proof)` over an appending initializer.
        if let Some(v) = some_bind(file, &pat.span) {
            if calls_in(file, &pat.init, config::JOURNAL_SYNC_FN) {
                check_handle(a, id, v, out);
            }
            continue;
        }
        // Pending binds: `let v = Pending::…`.
        if let Some(v) = ident_bind(file, &pat.span) {
            if inits_pending(file, &pat.init) {
                check_pending(a, id, v, &reach, out);
            }
        }
    }
}

/// handle-leak: a bound proof with no reachable use.
fn check_handle(a: &Analysis, id: FnId, bind_tok: usize, out: &mut Vec<Diagnostic>) {
    let file = a.file_of(id);
    let cfg = &a.cfgs[id];
    let Some(bind_block) = cfg.block_of_tok(bind_tok) else {
        return;
    };
    let name = file.ident(bind_tok).unwrap_or_default().to_string();
    if name == "_" {
        return; // an explicit discard of the evidence — the author's call
    }
    let used = occurrences(file, cfg, &name, bind_tok).iter().any(|&t| {
        cfg.block_of_tok(t)
            .is_some_and(|b| b == bind_block && t > bind_tok || cfg.reaches(bind_block, b))
    });
    if !used {
        out.push(Diagnostic {
            path: file.path.clone(),
            line: file.line_of(bind_tok),
            rule: "typestate",
            message: format!(
                "durability proof `{name}` bound from append_journal_sync but never \
                 presented on any path"
            ),
            hint: "pass the handle to discard_cache (it is the proof the discard \
                   demands), or bind `_` if the append is evidence-free by design \
                   (e.g. a group commit whose records carry their own recovery)",
            severity: Severity::Error,
            chain: Vec::new(),
        });
    }
}

/// pending-leak + use-after-consume for one bound `Pending` value.
fn check_pending(
    a: &Analysis,
    id: FnId,
    bind_tok: usize,
    reach: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    let file = a.file_of(id);
    let cfg = &a.cfgs[id];
    let Some(bind_block) = cfg.block_of_tok(bind_tok) else {
        return;
    };
    if !reach[bind_block] {
        return;
    }
    let name = file.ident(bind_tok).unwrap_or_default().to_string();
    if name == "_" {
        return;
    }
    let occs = occurrences(file, cfg, &name, bind_tok);
    let arg_spans = consumer_arg_spans(file, cfg);
    let consuming: Vec<usize> = occs
        .iter()
        .copied()
        .filter(|&t| arg_spans.iter().any(|s| s.contains(&t)))
        .collect();
    let consumes_in = |b: BlockId| consuming.iter().any(|&t| cfg.block_of_tok(t) == Some(b));

    // pending-leak: consumption must be inevitable from the bind —
    // backward must-analysis ("a consuming use lies ahead on every
    // path"), seeded false at exit.
    let must = dataflow::backward(cfg, false, true, dataflow::must_meet, |b, fact| {
        *fact || consumes_in(b)
    });
    a.stats.add_iterations(must.iterations);
    if !must.exit[bind_block] {
        let mut chain = Vec::new();
        if let Some(p) = cfg.path_via(bind_block, cfg.exit, |b| !consumes_in(b)) {
            chain.push(a.path_trace(id, &p));
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line: file.line_of(bind_tok),
            rule: "typestate",
            message: format!(
                "pending background action `{name}` is not handed to the scheduler on \
                 every path — a path leaks the open plan"
            ),
            hint: "every path from the construction must register (or chain/stage) the \
                   action before returning; a plan that is dropped silently abandons \
                   its unpin/seal/journal-commit obligations (DESIGN.md §9)",
            severity: Severity::Error,
            chain: Vec::new(),
        });
        if let Some(trace) = chain.pop() {
            if let Some(d) = out.last_mut() {
                d.chain.push(trace);
            }
        }
    }

    // use-after-consume: forward may-analysis ("some path has already
    // consumed the value"), then a within-block ordered scan.
    let may = dataflow::forward(cfg, false, false, dataflow::may_meet, |b, fact| {
        *fact || consumes_in(b)
    });
    a.stats.add_iterations(may.iterations);
    let mut by_block: Vec<(BlockId, usize)> = occs
        .iter()
        .filter_map(|&t| cfg.block_of_tok(t).map(|b| (b, t)))
        .collect();
    by_block.sort();
    let mut reported = false;
    for (b, group) in group_by_block(&by_block) {
        if !reach[b] {
            continue;
        }
        let mut consumed = may.entry[b];
        for t in group {
            if consumed && !reported {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: file.line_of(t),
                    rule: "typestate",
                    message: format!(
                        "pending background action `{name}` used after it was already \
                         consumed on some path"
                    ),
                    hint: "a Pending value is an obligation consumed exactly once — \
                           registering or touching it twice double-applies the plan's \
                           effects; restructure so each path consumes it once",
                    severity: Severity::Error,
                    chain: Vec::new(),
                });
                reported = true;
            }
            if consuming.contains(&t) {
                consumed = true;
            }
        }
    }
}

/// Groups a block-sorted `(block, tok)` list into per-block slices.
fn group_by_block(pairs: &[(BlockId, usize)]) -> Vec<(BlockId, Vec<usize>)> {
    let mut out: Vec<(BlockId, Vec<usize>)> = Vec::new();
    for &(b, t) in pairs {
        match out.last_mut() {
            Some((lb, toks)) if *lb == b => toks.push(t),
            _ => out.push((b, vec![t])),
        }
    }
    out
}
