//! `durability`: the DESIGN.md §9 write-ordering protocol, checked along
//! call paths.
//!
//! PR 2's crash-matrix harness proves crash consistency *for the
//! orderings the code happens to have today*; this rule keeps those
//! orderings from regressing. Since the component decomposition
//! (DESIGN.md §12) the protocol steps routinely span functions — the
//! append lives in `durability/mod.rs` while the discard it must precede
//! hides in a `pipeline/admit.rs` helper — so the checks walk each
//! function's events *with callee effect summaries expanded*
//! ([`crate::summary::Summary`]), not just its own tokens.
//!
//! Scope: library files of `core` that reference a journal primitive
//! (`append_journal_sync` or the batched `journal_op`) — the middleware
//! layer itself plus any future file that joins the protocol. Files that
//! never touch the journal (e.g. `durability/recovery.rs`, which runs
//! *before* a journal exists and re-enters recovery on a crash) stay
//! exempt by construction.
//!
//! Per function, four checks over the expanded event order:
//!
//! 1. **Remove-before-discard** — on any path that appends to the journal
//!    synchronously, no discard (direct `.discard(…)`, or a callee whose
//!    summary leaks an *exposed* discard) may precede the first append:
//!    the `Remove` records must be durable before the bytes go away, or
//!    recovery maps freed space. A callee that appends before its own
//!    discard (`exposed_discard == false`) satisfies the ordering
//!    internally and is not flagged.
//! 2. **FlushIntent is synchronous** — a function constructing a
//!    `FlushIntent` record must append synchronously after it — directly
//!    or via a callee that appends — before the flush plan reaches the
//!    runner, or a crash mid-flush loses the re-flush obligation.
//! 3. **Data before metadata** — once the batched `journal_op(…)` is
//!    planned (directly or via a callee), no further `data_op(…)` may be
//!    planned: the journal write describing new mappings must be the
//!    plan's final phase, or a crash leaves a mapping pointing at
//!    unwritten space. A callee that builds *both* data and journal
//!    phases is a **closed plan** — internally complete, contributing
//!    neither to the caller's ordering state.
//! 4. **Fuse-gated effects** — every durable effect (`apply_bytes`,
//!    `discard`), direct or leaked by a callee as an *exposed unfused
//!    effect*, must be preceded by a `fuse_consume(…)` charge on the
//!    path, so the crash-point torture matrix can crash inside it. An
//!    ungated effect is an untested crash site.
//!
//! Findings produced through a callee carry the witness call chain.

use crate::callgraph::FnId;
use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::items::EventKind;
use crate::summary::Analysis;

/// Function names that *implement* the protocol primitives; their bodies
/// are the gate, not gated.
fn is_primitive(name: &str) -> bool {
    name == config::JOURNAL_SYNC_FN
        || name == config::JOURNAL_BATCH_FN
        || name == config::DATA_OP_FN
        || name == config::FUSE_FN
}

/// Runs the durability-protocol checks over the analyzed workspace.
pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for id in 0..a.graph.len() {
        let file = a.file_of(id);
        if file.crate_name != "core" {
            continue;
        }
        let participates = (0..file.code.len()).any(|i| {
            matches!(
                file.ident(i),
                Some(n) if n == config::JOURNAL_SYNC_FN || n == config::JOURNAL_BATCH_FN
            )
        });
        if !participates {
            continue;
        }
        if is_primitive(&a.fn_item(id).name) {
            continue;
        }
        walk(a, id, out);
    }
}

/// Walks one function's events in order, expanding callee summaries.
fn walk(a: &Analysis, id: FnId, out: &mut Vec<Diagnostic>) {
    let f = a.fn_item(id);
    let file = a.file_of(id);
    let mut appended = false;
    let mut fused = false;
    // Line where the journal phase was (first) planned, if it was.
    let mut journal_at: Option<u32> = None;
    // Check-1 candidates: discards seen before any append. They become
    // violations only if an append follows (a function that never appends
    // leaves the obligation to its caller, where the exposed-discard
    // summary re-raises it).
    let mut pending: Vec<Diagnostic> = Vec::new();
    let mut intent: Option<u32> = None;
    let mut intent_covered = false;
    for ev in &f.events {
        match &ev.kind {
            EventKind::Intent => {
                intent = Some(ev.line);
                intent_covered = false;
            }
            EventKind::Call { name, method } => {
                let n = name.as_str();
                if n == config::JOURNAL_SYNC_FN {
                    appended = true;
                    intent_covered = true;
                    out.append(&mut pending);
                } else if n == config::FUSE_FN {
                    fused = true;
                } else if n == config::JOURNAL_BATCH_FN {
                    journal_at.get_or_insert(ev.line);
                } else if n == config::DATA_OP_FN {
                    if let Some(j) = journal_at {
                        out.push(data_after_metadata(a, id, ev.line, j, Vec::new()));
                    }
                } else if *method && config::DURABLE_EFFECT_FNS.contains(&n) {
                    if !fused {
                        let what = format!("`{n}(…)`");
                        out.push(unfused_effect(a, id, ev.line, &what, Vec::new()));
                    }
                    if n == "discard" && !appended {
                        pending.push(discard_before_append(a, id, ev.line, Vec::new()));
                    }
                } else if !crate::summary::is_protocol_name(n) {
                    for &callee in a.graph.resolve(n) {
                        if callee == id {
                            continue;
                        }
                        let c = &a.summaries[callee];
                        if c.exposed_discard && !appended {
                            let chain = via(a, id, ev.line, callee, first_exposed_discard, |s| {
                                s.exposed_discard
                            });
                            pending.push(discard_before_append(a, id, ev.line, chain));
                        }
                        if c.exposed_unfused_effect && !fused {
                            let chain = via(a, id, ev.line, callee, first_unfused_effect, |s| {
                                s.exposed_unfused_effect
                            });
                            out.push(unfused_effect(
                                a,
                                id,
                                ev.line,
                                "in a callee, see call chain",
                                chain,
                            ));
                        }
                        // Closed plan: the callee builds both its data and
                        // its journal phases — internally complete.
                        let closed = c.data_op && c.journal_op;
                        if !closed {
                            if c.data_op {
                                if let Some(j) = journal_at {
                                    let chain =
                                        via(a, id, ev.line, callee, first_data_op, |s| s.data_op);
                                    out.push(data_after_metadata(a, id, ev.line, j, chain));
                                }
                            }
                            if c.journal_op {
                                journal_at.get_or_insert(ev.line);
                            }
                        }
                        if c.appends {
                            appended = true;
                            intent_covered = true;
                            out.append(&mut pending);
                        }
                        if c.fuse {
                            fused = true;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(line) = intent {
        if !intent_covered {
            out.push(Diagnostic {
                path: file.path.clone(),
                line,
                rule: "durability",
                message: "FlushIntent record constructed without a following synchronous \
                          journal append on this path"
                    .to_string(),
                hint: "pass the intents to append_journal_sync (directly or via a callee \
                       that appends) before the flush plans are returned — the intent \
                       must be durable before any flush I/O can run (DESIGN.md §9 flush \
                       ordering)",
                severity: Severity::Error,
                chain: Vec::new(),
            });
        }
    }
}

/// Builds the witness chain for a finding raised at a call site: the
/// caller's step followed by the deterministic descent to the callee's
/// first direct witness event.
fn via(
    a: &Analysis,
    id: FnId,
    call_line: u32,
    callee: FnId,
    pred: fn(&Analysis, FnId) -> Option<u32>,
    hold: fn(&crate::summary::Summary) -> bool,
) -> Vec<String> {
    let mut chain = vec![a.step(id, call_line)];
    chain.extend(a.witness(callee, pred, hold));
    chain
}

/// First direct discard that precedes any append contribution, walking
/// the function's events the same way the summary fixpoint does.
fn first_exposed_discard(a: &Analysis, id: FnId) -> Option<u32> {
    let mut appended = false;
    for ev in &a.fn_item(id).events {
        let EventKind::Call { name, method } = &ev.kind else {
            continue;
        };
        if name == config::JOURNAL_SYNC_FN {
            appended = true;
        } else if *method && name == "discard" && !appended {
            return Some(ev.line);
        } else {
            for &c in crate::summary::call_targets(&a.graph, ev) {
                appended |= a.summaries[c].appends;
            }
        }
    }
    None
}

/// First direct durable effect that precedes any fuse charge.
fn first_unfused_effect(a: &Analysis, id: FnId) -> Option<u32> {
    let mut fused = false;
    for ev in &a.fn_item(id).events {
        let EventKind::Call { name, method } = &ev.kind else {
            continue;
        };
        if name == config::FUSE_FN {
            fused = true;
        } else if *method && config::DURABLE_EFFECT_FNS.contains(&name.as_str()) && !fused {
            return Some(ev.line);
        } else {
            for &c in crate::summary::call_targets(&a.graph, ev) {
                fused |= a.summaries[c].fuse;
            }
        }
    }
    None
}

/// First direct `data_op(…)` call.
fn first_data_op(a: &Analysis, id: FnId) -> Option<u32> {
    a.fn_item(id).events.iter().find_map(|ev| match &ev.kind {
        EventKind::Call { name, .. } if name == config::DATA_OP_FN => Some(ev.line),
        _ => None,
    })
}

fn discard_before_append(a: &Analysis, id: FnId, line: u32, chain: Vec<String>) -> Diagnostic {
    Diagnostic {
        path: a.file_of(id).path.clone(),
        line,
        rule: "durability",
        message: "cache bytes discarded before the journal append that records their \
                  removal"
            .to_string(),
        hint: "append the Remove records synchronously first (metadata durable before \
               destruction), then discard — see DESIGN.md §9 eviction ordering",
        severity: Severity::Error,
        chain,
    }
}

fn unfused_effect(a: &Analysis, id: FnId, line: u32, what: &str, chain: Vec<String>) -> Diagnostic {
    Diagnostic {
        path: a.file_of(id).path.clone(),
        line,
        rule: "durability",
        message: format!(
            "durable effect ({what}) is not gated by a crash-fuse charge on this path"
        ),
        hint: "call fuse_consume(CrashSite::…, len) first and apply only the affordable \
               prefix, so the torture matrix can crash inside this effect; \
               recovery-only paths may justify with \
               `// s4d-lint: allow(durability) — <why>`",
        severity: Severity::Error,
        chain,
    }
}

fn data_after_metadata(
    a: &Analysis,
    id: FnId,
    line: u32,
    journal_line: u32,
    chain: Vec<String>,
) -> Diagnostic {
    Diagnostic {
        path: a.file_of(id).path.clone(),
        line,
        rule: "durability",
        message: format!(
            "data op planned after the journal op (line {journal_line}): the mapping \
             record would become durable before its cache bytes"
        ),
        hint: "plan every data phase first and make the journal write the final phase \
               (DESIGN.md §9 admission ordering: data before metadata)",
        severity: Severity::Error,
        chain,
    }
}
