//! `durability`: the DESIGN.md §9 write-ordering protocol, checked along
//! call paths **and along control-flow paths**.
//!
//! PR 2's crash-matrix harness proves crash consistency *for the
//! orderings the code happens to have today*; this rule keeps those
//! orderings from regressing. Since the component decomposition
//! (DESIGN.md §12) the protocol steps routinely span functions — the
//! append lives in `durability/mod.rs` while the discard it must precede
//! hides in a `pipeline/admit.rs` helper — so the checks expand callee
//! effect summaries ([`crate::summary::Summary`]). Since the
//! flow-sensitive rewrite they are also **path-aware**: ordering state
//! is a forward *must*-fact over the function's CFG ("on every path
//! reaching this point, an append has occurred"), so a `journal.append`
//! on one `match` arm no longer covers a discard on the opposite arm,
//! and a branch-guarded append+discard pair on the *same* arm lints
//! clean without a pragma.
//!
//! Scope: library files of `core` that reference a journal primitive
//! (`append_journal_sync` or the batched `journal_op`) — the middleware
//! layer itself plus any future file that joins the protocol. Files that
//! never touch the journal (e.g. `durability/recovery.rs`, which runs
//! *before* a journal exists and re-enters recovery on a crash) stay
//! exempt by construction.
//!
//! Per function, four checks:
//!
//! 1. **Remove-before-discard** — a discard (direct `.discard(…)`, or a
//!    callee whose summary leaks an *exposed* discard) is a violation
//!    when an append does **not** precede it on every path but does
//!    follow it on some path: the two paths concatenate into a real
//!    execution where bytes vanish before their `Remove` records are
//!    durable. A function that never appends leaves the obligation to
//!    its caller (the exposed-discard summary re-raises it there).
//! 2. **FlushIntent is synchronous** — from a `FlushIntent` record
//!    *construction* (pattern-position occurrences are deconstruction
//!    and exempt), some path must reach a synchronous append — directly
//!    or via a callee that appends — before the function returns, or a
//!    crash mid-flush loses the re-flush obligation.
//! 3. **Data before metadata** — once the batched `journal_op(…)` has
//!    been planned on a path (directly or via a callee), no further
//!    `data_op(…)` may be planned on that path. A callee that builds
//!    *both* data and journal phases is a **closed plan** — internally
//!    complete, contributing neither to the caller's ordering state.
//! 4. **Fuse-gated effects** — every durable effect (`apply_bytes`,
//!    `discard`), direct or leaked by a callee as an *exposed unfused
//!    effect*, must be preceded by a `fuse_consume(…)` charge on every
//!    path reaching it, so the crash-point torture matrix can crash
//!    inside it. An ungated effect is an untested crash site.
//!
//! Findings produced through a callee carry the witness call chain, and
//! every path-sensitive finding ends its chain with the concrete
//! violating block trace (`path through fn …: entry@L -> … -> arm@L`),
//! rendered by [`crate::summary::Analysis::path_trace`].

use crate::callgraph::FnId;
use crate::cfg::BlockId;
use crate::config;
use crate::dataflow;
use crate::diag::{Diagnostic, Severity};
use crate::items::EventKind;
use crate::summary::Analysis;

/// Function names that *implement* the protocol primitives; their bodies
/// are the gate, not gated.
fn is_primitive(name: &str) -> bool {
    name == config::JOURNAL_SYNC_FN
        || name == config::JOURNAL_BATCH_FN
        || name == config::DATA_OP_FN
        || name == config::FUSE_FN
}

/// Runs the durability-protocol checks over the analyzed workspace.
pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for id in 0..a.graph.len() {
        let file = a.file_of(id);
        if file.crate_name != "core" {
            continue;
        }
        let participates = (0..file.code.len()).any(|i| {
            matches!(
                file.ident(i),
                Some(n) if n == config::JOURNAL_SYNC_FN || n == config::JOURNAL_BATCH_FN
            )
        });
        if !participates {
            continue;
        }
        if is_primitive(&a.fn_item(id).name) {
            continue;
        }
        walk(a, id, out);
    }
}

/// True when event `e` of function `id` performs (or may transitively
/// perform) a synchronous journal append.
fn event_appends(a: &Analysis, id: FnId, e: usize) -> bool {
    let ev = &a.fn_item(id).events[e];
    let EventKind::Call { name, .. } = &ev.kind else {
        return false;
    };
    if name == config::JOURNAL_SYNC_FN {
        return true;
    }
    crate::summary::call_targets(&a.graph, ev)
        .iter()
        .any(|&c| c != id && a.summaries[c].appends)
}

/// Per-event "an append may still happen strictly after this event on
/// some path", from a backward may-analysis.
fn may_append_after(a: &Analysis, id: FnId) -> Vec<bool> {
    let cfg = &a.cfgs[id];
    let f = a.fn_item(id);
    let sol = dataflow::backward(cfg, false, false, dataflow::may_meet, |b, fact| {
        *fact
            || cfg.blocks[b]
                .events
                .iter()
                .any(|&e| event_appends(a, id, e))
    });
    a.stats.add_iterations(sol.iterations);
    let mut after = vec![false; f.events.len()];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        // `entry` of a backward solution is the fact at the block's end.
        let mut fact = sol.entry[b];
        for &e in blk.events.iter().rev() {
            after[e] = fact;
            fact |= event_appends(a, id, e);
        }
    }
    after
}

/// The violating block trace for an ordering finding: the shortest path
/// from `from` to the event's block through blocks that do not
/// establish the covering fact (`covers`), rendered as a chain line.
fn violating_path<F: Fn(BlockId) -> bool>(
    a: &Analysis,
    id: FnId,
    from: BlockId,
    to: BlockId,
    covers: F,
) -> Option<String> {
    let cfg = &a.cfgs[id];
    cfg.path_via(from, to, |b| !covers(b))
        .map(|p| a.path_trace(id, &p))
}

/// Walks one function's CFG, checking each event against its path facts.
fn walk(a: &Analysis, id: FnId, out: &mut Vec<Diagnostic>) {
    let f = a.fn_item(id);
    let file = a.file_of(id);
    let cfg = &a.cfgs[id];
    let facts = &a.facts[id];
    let append_after = may_append_after(a, id);
    // Forward may-analysis for check 3: the earliest line a journal op
    // was planned on some path reaching this point (`None` = no path has
    // planned one yet; meet keeps the smallest line for determinism).
    let journal_plans = |e: usize| -> Option<u32> {
        let ev = &f.events[e];
        let EventKind::Call { name, .. } = &ev.kind else {
            return None;
        };
        if name == config::JOURNAL_BATCH_FN {
            return Some(ev.line);
        }
        crate::summary::call_targets(&a.graph, ev)
            .iter()
            .filter(|&&c| c != id)
            .find(|&&c| {
                let s = &a.summaries[c];
                s.journal_op && !s.data_op
            })
            .map(|_| ev.line)
    };
    let sol = dataflow::forward(
        cfg,
        None,
        None,
        |x: &Option<u32>, y: &Option<u32>| match (x, y) {
            (Some(a), Some(b)) => Some(*a.min(b)),
            (Some(a), None) => Some(*a),
            (None, b) => *b,
        },
        |b, fact| {
            let mut fact = *fact;
            for &e in &cfg.blocks[b].events {
                if let Some(line) = journal_plans(e) {
                    fact = Some(fact.map_or(line, |l: u32| l.min(line)));
                }
            }
            fact
        },
    );
    a.stats.add_iterations(sol.iterations);

    // A block "establishes the append" (for path witnesses) when any of
    // its events appends; same for the fuse.
    let block_appends = |b: BlockId| {
        cfg.blocks[b]
            .events
            .iter()
            .any(|&e| event_appends(a, id, e))
    };
    let block_fuses = |b: BlockId| {
        cfg.blocks[b].events.iter().any(|&e| {
            let ev = &f.events[e];
            let EventKind::Call { name, .. } = &ev.kind else {
                return false;
            };
            name == config::FUSE_FN
                || crate::summary::call_targets(&a.graph, ev)
                    .iter()
                    .any(|&c| c != id && a.summaries[c].fuse_all)
        })
    };

    let mut journal_state: Vec<Option<u32>> = vec![None; f.events.len()];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let mut fact = sol.entry[b];
        for &e in &blk.events {
            journal_state[e] = fact;
            if let Some(line) = journal_plans(e) {
                fact = Some(fact.map_or(line, |l| l.min(line)));
            }
        }
    }

    for (e, ev) in f.events.iter().enumerate() {
        if !facts.reachable[e] {
            continue;
        }
        let eb = cfg.ev_block[e];
        match &ev.kind {
            EventKind::Intent => {
                // Check 2 — construction only; a `FlushIntent { .. }`
                // match pattern destructures an already-durable record.
                if cfg.in_pattern(ev.tok) {
                    continue;
                }
                if !append_after[e] {
                    let mut chain = Vec::new();
                    if let Some(trace) = violating_path(a, id, eb, cfg.exit, block_appends) {
                        chain.push(trace);
                    }
                    out.push(Diagnostic {
                        path: file.path.clone(),
                        line: ev.line,
                        rule: "durability",
                        message: "FlushIntent record constructed without a following \
                                  synchronous journal append on this path"
                            .to_string(),
                        hint: "pass the intents to append_journal_sync (directly or via a \
                               callee that appends) before the flush plans are returned — \
                               the intent must be durable before any flush I/O can run \
                               (DESIGN.md §9 flush ordering)",
                        severity: Severity::Error,
                        chain,
                    });
                }
            }
            EventKind::Call { name, method } => {
                let n = name.as_str();
                let direct_discard = *method && n == "discard";
                let direct_effect = *method && config::DURABLE_EFFECT_FNS.contains(&n);
                // Callee exposures (skip protocol vocabulary).
                let mut callee_discard = None;
                let mut callee_unfused = None;
                if !crate::summary::is_protocol_name(n) && !direct_effect {
                    for &callee in a.graph.resolve(n) {
                        if callee == id {
                            continue;
                        }
                        let c = &a.summaries[callee];
                        if c.exposed_discard && callee_discard.is_none() {
                            callee_discard = Some(callee);
                        }
                        if c.exposed_unfused_effect && callee_unfused.is_none() {
                            callee_unfused = Some(callee);
                        }
                        // Check 3 at the call site: a non-closed callee
                        // planning data ops after a journal op is planned.
                        let closed = c.data_op && c.journal_op;
                        if c.data_op && !closed {
                            if let Some(j) = journal_state[e] {
                                let chain =
                                    via(a, id, ev.line, callee, first_data_op, |s| s.data_op);
                                out.push(data_after_metadata(a, id, ev.line, j, chain));
                            }
                        }
                    }
                }
                // Check 3, direct.
                if n == config::DATA_OP_FN {
                    if let Some(j) = journal_state[e] {
                        out.push(data_after_metadata(a, id, ev.line, j, Vec::new()));
                    }
                }
                // Check 1 — discard not must-covered, append follows on
                // some path: the uncovered prefix and the appending
                // suffix concatenate into a real violating execution.
                let discards = direct_discard || callee_discard.is_some();
                if discards && !facts.appended_before[e] && append_after[e] {
                    let mut chain = match callee_discard {
                        Some(callee) => via(a, id, ev.line, callee, first_exposed_discard, |s| {
                            s.exposed_discard
                        }),
                        None => Vec::new(),
                    };
                    if let Some(trace) = violating_path(a, id, cfg.entry, eb, block_appends) {
                        chain.push(trace);
                    }
                    out.push(discard_before_append(a, id, ev.line, chain));
                }
                // Check 4 — durable effect not must-fused.
                let unfused = (direct_effect || callee_unfused.is_some()) && !facts.fused_before[e];
                if unfused {
                    let (what, mut chain) = match callee_unfused {
                        Some(callee) if !direct_effect => (
                            "in a callee, see call chain".to_string(),
                            via(a, id, ev.line, callee, first_unfused_effect, |s| {
                                s.exposed_unfused_effect
                            }),
                        ),
                        _ => (format!("`{n}(…)`"), Vec::new()),
                    };
                    if let Some(trace) = violating_path(a, id, cfg.entry, eb, block_fuses) {
                        chain.push(trace);
                    }
                    out.push(unfused_effect(a, id, ev.line, &what, chain));
                }
            }
            _ => {}
        }
    }
}

/// Builds the witness chain for a finding raised at a call site: the
/// caller's step followed by the deterministic descent to the callee's
/// first direct witness event.
fn via(
    a: &Analysis,
    id: FnId,
    call_line: u32,
    callee: FnId,
    pred: fn(&Analysis, FnId) -> Option<u32>,
    hold: fn(&crate::summary::Summary) -> bool,
) -> Vec<String> {
    let mut chain = vec![a.step(id, call_line)];
    chain.extend(a.witness(callee, pred, hold));
    chain
}

/// First direct discard not must-covered by an append — the same
/// per-event facts the summary fixpoint computed.
fn first_exposed_discard(a: &Analysis, id: FnId) -> Option<u32> {
    let f = a.fn_item(id);
    let facts = &a.facts[id];
    f.events
        .iter()
        .enumerate()
        .find_map(|(e, ev)| match &ev.kind {
            EventKind::Call { name, method }
                if *method
                    && name == "discard"
                    && facts.reachable[e]
                    && !facts.appended_before[e] =>
            {
                Some(ev.line)
            }
            _ => None,
        })
}

/// First direct durable effect not must-covered by a fuse charge.
fn first_unfused_effect(a: &Analysis, id: FnId) -> Option<u32> {
    let f = a.fn_item(id);
    let facts = &a.facts[id];
    f.events
        .iter()
        .enumerate()
        .find_map(|(e, ev)| match &ev.kind {
            EventKind::Call { name, method }
                if *method
                    && config::DURABLE_EFFECT_FNS.contains(&name.as_str())
                    && facts.reachable[e]
                    && !facts.fused_before[e] =>
            {
                Some(ev.line)
            }
            _ => None,
        })
}

/// First direct `data_op(…)` call.
fn first_data_op(a: &Analysis, id: FnId) -> Option<u32> {
    a.fn_item(id).events.iter().find_map(|ev| match &ev.kind {
        EventKind::Call { name, .. } if name == config::DATA_OP_FN => Some(ev.line),
        _ => None,
    })
}

fn discard_before_append(a: &Analysis, id: FnId, line: u32, chain: Vec<String>) -> Diagnostic {
    Diagnostic {
        path: a.file_of(id).path.clone(),
        line,
        rule: "durability",
        message: "cache bytes discarded before the journal append that records their \
                  removal"
            .to_string(),
        hint: "append the Remove records synchronously first (metadata durable before \
               destruction), then discard — see DESIGN.md §9 eviction ordering",
        severity: Severity::Error,
        chain,
    }
}

fn unfused_effect(a: &Analysis, id: FnId, line: u32, what: &str, chain: Vec<String>) -> Diagnostic {
    Diagnostic {
        path: a.file_of(id).path.clone(),
        line,
        rule: "durability",
        message: format!(
            "durable effect ({what}) is not gated by a crash-fuse charge on this path"
        ),
        hint: "call fuse_consume(CrashSite::…, len) first and apply only the affordable \
               prefix, so the torture matrix can crash inside this effect; \
               recovery-only paths may justify with \
               `// s4d-lint: allow(durability) — <why>`",
        severity: Severity::Error,
        chain,
    }
}

fn data_after_metadata(
    a: &Analysis,
    id: FnId,
    line: u32,
    journal_line: u32,
    chain: Vec<String>,
) -> Diagnostic {
    Diagnostic {
        path: a.file_of(id).path.clone(),
        line,
        rule: "durability",
        message: format!(
            "data op planned after the journal op (line {journal_line}): the mapping \
             record would become durable before its cache bytes"
        ),
        hint: "plan every data phase first and make the journal write the final phase \
               (DESIGN.md §9 admission ordering: data before metadata)",
        severity: Severity::Error,
        chain,
    }
}
