//! `durability`: the DESIGN.md §9 write-ordering protocol, statically.
//!
//! PR 2's crash-matrix harness proves crash consistency *for the
//! orderings the code happens to have today*; this rule keeps those
//! orderings from regressing. Scope: library files of `core` that
//! reference the synchronous journal-append primitive
//! (`append_journal_sync`) — i.e. the middleware layer itself plus any
//! future file that joins the protocol.
//!
//! Per function body, four lexical checks:
//!
//! 1. **Remove-before-discard** — in a function that appends to the
//!    journal synchronously, no `.discard(…)` may precede the first
//!    append: the `Remove` records must be durable before the bytes go
//!    away, or recovery maps freed space.
//! 2. **FlushIntent is synchronous** — a function constructing a
//!    `FlushIntent` record must call `append_journal_sync` after it; the
//!    intent must be durable before the flush plan reaches the runner,
//!    or a crash mid-flush loses the re-flush obligation.
//! 3. **Data before metadata** — in a plan-building function, no
//!    `data_op(…)` may follow the batched `journal_op(…)`: the journal
//!    write describing new mappings must be the plan's final phase, or a
//!    crash leaves a mapping pointing at unwritten space.
//! 4. **Fuse-gated effects** — every durable effect (`apply_bytes`,
//!    `discard`) must be preceded in its function by a
//!    `fuse_consume(…)` charge, so the crash-point torture matrix can
//!    crash inside it. An ungated effect is an untested crash site.

use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

/// Runs the durability-protocol checks.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind.is_test_like() || file.crate_name != "core" {
        return;
    }
    let participates = (0..file.code.len()).any(|i| file.ident(i) == Some(config::JOURNAL_SYNC_FN));
    if !participates {
        return;
    }
    for f in &file.fns {
        if f.name == config::JOURNAL_SYNC_FN || f.name == config::FUSE_FN {
            // The primitives themselves implement the gate.
            continue;
        }
        if file
            .code
            .get(f.body.start)
            .is_some_and(|t| file.in_test_span(t.line))
        {
            continue;
        }
        let body = f.body.clone();
        remove_before_discard(file, body.clone(), out);
        flush_intent_sync(file, body.clone(), out);
        data_before_metadata(file, body.clone(), out);
        fuse_gated(file, body, out);
    }
}

fn find_call(file: &SourceFile, body: &std::ops::Range<usize>, name: &str) -> Option<usize> {
    body.clone().find(|&i| file.is_call(i, name))
}

/// Check 1: no `.discard(` before the first synchronous append.
fn remove_before_discard(
    file: &SourceFile,
    body: std::ops::Range<usize>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(first_append) = find_call(file, &body, config::JOURNAL_SYNC_FN) else {
        return;
    };
    for i in body.start..first_append {
        if file.punct_is(i.wrapping_sub(1), '.') && file.is_call(i, "discard") {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: file.line_of(i),
                rule: "durability",
                message: "cache bytes discarded before the journal append that records \
                          their removal"
                    .to_string(),
                hint: "append the Remove records synchronously first (metadata durable \
                       before destruction), then discard — see DESIGN.md §9 eviction \
                       ordering",
                severity: Severity::Error,
            });
        }
    }
}

/// Check 2: `FlushIntent` construction requires a later sync append.
fn flush_intent_sync(file: &SourceFile, body: std::ops::Range<usize>, out: &mut Vec<Diagnostic>) {
    let Some(last_intent) = body
        .clone()
        .rev()
        .find(|&i| file.ident(i) == Some(config::INTENT_RECORD))
    else {
        return;
    };
    let appended_after = (last_intent..body.end).any(|i| file.is_call(i, config::JOURNAL_SYNC_FN));
    if !appended_after {
        out.push(Diagnostic {
            path: file.path.clone(),
            line: file.line_of(last_intent),
            rule: "durability",
            message: "FlushIntent record constructed without a following synchronous \
                      journal append in this function"
                .to_string(),
            hint: "pass the intents to append_journal_sync before the flush plans are \
                   returned — the intent must be durable before any flush I/O can run \
                   (DESIGN.md §9 flush ordering)",
            severity: Severity::Error,
        });
    }
}

/// Check 3: no data op planned after the batched journal op.
fn data_before_metadata(
    file: &SourceFile,
    body: std::ops::Range<usize>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(first_journal) = find_call(file, &body, config::JOURNAL_BATCH_FN) else {
        return;
    };
    for i in first_journal..body.end {
        if file.is_call(i, config::DATA_OP_FN) {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: file.line_of(i),
                rule: "durability",
                message: "data op planned after the journal op: the mapping record \
                          would become durable before its cache bytes"
                    .to_string(),
                hint: "plan every data phase first and make the journal write the \
                       final phase (DESIGN.md §9 admission ordering: data before \
                       metadata)",
                severity: Severity::Error,
            });
        }
    }
}

/// Check 4: durable effects must be fuse-gated.
fn fuse_gated(file: &SourceFile, body: std::ops::Range<usize>, out: &mut Vec<Diagnostic>) {
    for i in body.clone() {
        let Some(name) = file.ident(i) else { continue };
        if !config::DURABLE_EFFECT_FNS.contains(&name)
            || !file.punct_is(i.wrapping_sub(1), '.')
            || !file.punct_is(i + 1, '(')
        {
            continue;
        }
        let gated = (body.start..i).any(|j| file.is_call(j, config::FUSE_FN));
        if !gated {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: file.line_of(i),
                rule: "durability",
                message: format!(
                    "durable effect `{name}(…)` is not gated by a crash-fuse charge \
                     in this function"
                ),
                hint: "call fuse_consume(CrashSite::…, len) first and apply only the \
                       affordable prefix, so the torture matrix can crash inside this \
                       effect; recovery-only paths may justify with \
                       `// s4d-lint: allow(durability) — <why>`",
                severity: Severity::Error,
            });
        }
    }
}
