//! `determinism` and `ordered-iter`: the simulator and everything on the
//! simulated I/O path must be bit-for-bit reproducible.
//!
//! One stray `SystemTime::now()` (wall-clock time leaking into simulated
//! time), `thread_rng()` (OS entropy), or `std::thread::spawn` (scheduler
//! nondeterminism) silently invalidates the crash-matrix torture harness
//! and the replay-equivalence proptests, which compare byte-for-byte.
//! Likewise, iterating a `HashMap`/`HashSet` while serializing journal,
//! checkpoint, or report state makes the byte stream order-of-iteration
//! dependent; those paths must use `BTreeMap`/`BTreeSet` or sort
//! explicitly.
//!
//! Findings in test directories and `#[cfg(test)]` spans are report-only
//! (warnings): tests may measure wall time, but production paths may not.

use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

fn severity(file: &SourceFile, line: u32) -> Severity {
    if file.kind.is_test_like() || file.in_test_span(line) {
        Severity::Warning
    } else {
        Severity::Error
    }
}

/// Runs both determinism-family rules.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !config::DETERMINISM_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    forbidden_sources(file, out);
    ordered_iter(file, out);
}

/// `determinism`: wall-clock, OS randomness, OS threads.
fn forbidden_sources(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let path2 = |i: usize, a: &str, b: &str| {
        file.ident(i) == Some(a)
            && file.punct_is(i + 1, ':')
            && file.punct_is(i + 2, ':')
            && file.ident(i + 3) == Some(b)
    };
    for i in 0..file.code.len() {
        let found = if path2(i, "SystemTime", "now") {
            Some("SystemTime::now() reads the wall clock")
        } else if path2(i, "Instant", "now") {
            Some("Instant::now() reads the wall clock")
        } else if file.ident(i) == Some("thread_rng") {
            Some("thread_rng() draws OS entropy")
        } else if path2(i, "thread", "spawn") {
            Some("thread::spawn introduces scheduler nondeterminism")
        } else {
            None
        };
        if let Some(what) = found {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: file.line_of(i),
                rule: "determinism",
                message: format!("{what} in deterministic crate `{}`", file.crate_name),
                hint: "use SimTime/SimClock for time, the seeded sim RNG for randomness, \
                       and the discrete-event Runner instead of OS threads",
                severity: severity(file, file.line_of(i)),
                chain: Vec::new(),
            });
        }
    }
}

/// `ordered-iter`: unordered map types in serialization paths.
fn ordered_iter(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let whole_file = config::SERIALIZATION_FILES.contains(&file.rel.as_str());
    // Code-token index ranges that are serialization paths.
    let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
    if whole_file {
        ranges.push(0..file.code.len());
    } else {
        for f in &file.fns {
            let lname = f.name.to_lowercase();
            if config::SERIALIZATION_FN_PATTERNS
                .iter()
                .any(|p| lname.contains(p))
            {
                ranges.push(f.body.clone());
            }
        }
    }
    for r in ranges {
        for i in r {
            let Some(name) = file.ident(i) else { continue };
            if name != "HashMap" && name != "HashSet" {
                continue;
            }
            let line = file.line_of(i);
            out.push(Diagnostic {
                path: file.path.clone(),
                line,
                rule: "ordered-iter",
                message: format!(
                    "`{name}` in a journal/checkpoint/report serialization path: \
                     iteration order is nondeterministic"
                ),
                hint: "use BTreeMap/BTreeSet, or collect and sort explicitly before \
                       emitting bytes",
                severity: severity(file, line),
                chain: Vec::new(),
            });
        }
    }
}
