//! `file-budget`: no library module may exceed the non-test line budget.
//!
//! The component-architecture decomposition (DESIGN.md §12) replaced two
//! god-objects with small modules behind narrow interfaces; this rule
//! keeps them small. Only lines carrying code tokens count, and lines
//! inside `#[cfg(test)]` / `#[test]` spans are excluded — inline unit
//! tests never push a module over the budget, and files under `tests/`,
//! `examples/`, or `benches/` are exempt entirely.

use crate::config;
use crate::diag::{Diagnostic, Severity};
use crate::source::{FileKind, SourceFile};

/// Flags library files whose non-test code-line count exceeds
/// [`config::FILE_BUDGET_MAX_LINES`].
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Lib {
        return;
    }
    let over_budget: Vec<u32> = file
        .code_lines
        .iter()
        .copied()
        .filter(|&l| !file.in_test_span(l))
        .skip(config::FILE_BUDGET_MAX_LINES)
        .collect();
    if over_budget.is_empty() {
        return;
    }
    // Anchor at the first line past the budget so the finding points at
    // where the module outgrew its seam, not at line 1.
    let line = over_budget[0];
    let count = config::FILE_BUDGET_MAX_LINES + over_budget.len();
    out.push(Diagnostic {
        path: file.path.clone(),
        line,
        rule: "file-budget",
        message: format!(
            "module has {count} non-test code lines — the budget is {} \
             (DESIGN.md §12)",
            config::FILE_BUDGET_MAX_LINES
        ),
        hint: "split the module along a component seam (pipeline stage, \
               durability engine, background scheduler) instead of growing \
               it; `#[cfg(test)]` spans do not count toward the budget",
        severity: Severity::Error,
        chain: Vec::new(),
    });
}
