//! The rule families. Each rule walks a [`SourceFile`]'s code-token
//! stream and pushes [`Diagnostic`]s; the engine applies pragmas
//! afterwards.

pub mod determinism;
pub mod durability;
pub mod file_budget;
pub mod locks;
pub mod panic_freedom;

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Runs every rule family over one file.
pub fn check_all(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    determinism::check(file, out);
    panic_freedom::check(file, out);
    locks::check(file, out);
    durability::check(file, out);
    file_budget::check(file, out);
}
