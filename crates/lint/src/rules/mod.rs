//! The rule families, in two tiers:
//!
//! * **per-file** rules walk one [`SourceFile`]'s code-token stream (with
//!   its [`ItemIndex`] for const-initializer exemptions);
//! * **graph** rules walk the interprocedural [`Analysis`] — call graph
//!   plus effect summaries — and may anchor findings in any file.
//!
//! The engine runs both tiers, then applies pragmas per file.

pub mod affinity;
pub mod alloc;
pub mod asyncready;
pub mod determinism;
pub mod durability;
pub mod file_budget;
pub mod lockgraph;
pub mod locks;
pub mod panic_freedom;
pub mod panic_path;
pub mod shard_discipline;
pub mod typestate;
pub mod unbounded_retry;

use crate::diag::Diagnostic;
use crate::items::ItemIndex;
use crate::source::SourceFile;
use crate::summary::Analysis;

/// Runs the per-file rule families over one file.
pub fn check_file(file: &SourceFile, items: &ItemIndex, out: &mut Vec<Diagnostic>) {
    determinism::check(file, out);
    panic_freedom::check(file, items, out);
    file_budget::check(file, out);
    shard_discipline::check(file, out);
    alloc::check(file, out);
}

/// Runs the interprocedural rule families over the analyzed workspace.
pub fn check_graph(a: &Analysis, out: &mut Vec<Diagnostic>) {
    durability::check(a, out);
    locks::check(a, out);
    lockgraph::check(a, out);
    affinity::check(a, out);
    asyncready::check(a, out);
    panic_path::check(a, out);
    typestate::check(a, out);
    unbounded_retry::check(a, out);
}
