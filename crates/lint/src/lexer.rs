//! A small but correct Rust lexer.
//!
//! The rule engine works on token streams, not raw text, so that string
//! literals, comments, raw strings, and char literals can never produce
//! false matches (`"calls .unwrap() here"` is a [`Tok::Str`], not a method
//! call). The lexer handles the full literal surface the workspace uses:
//!
//! * line comments and *nested* block comments (kept as tokens — the
//!   pragma parser reads them);
//! * cooked strings with escapes, raw strings `r"…"` / `r#"…"#` with any
//!   hash depth, byte/C-string variants (`b"…"`, `br#"…"#`, `c"…"`,
//!   `cr#"…"#`);
//! * char and byte-char literals vs. lifetimes (`'a'` vs `'a`);
//! * numbers (including float dots, without swallowing `..` ranges);
//! * identifiers (keywords are plain identifiers here) and raw
//!   identifiers (`r#match`);
//! * everything else as single-character punctuation.
//!
//! Every token carries the 1-based line it starts on, which is all the
//! diagnostics need.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (text preserved).
    Ident(String),
    /// A lifetime such as `'a` (name without the quote).
    Lifetime(String),
    /// Any numeric literal.
    Number,
    /// Any string-ish literal (cooked, raw, byte, C).
    Str,
    /// A char or byte-char literal.
    Char,
    /// A `// …` comment (text after `//` preserved, for pragma parsing).
    LineComment(String),
    /// A `/* … */` comment (interior preserved), nesting handled.
    BlockComment(String),
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

struct Cursor<'a> {
    rest: std::str::Chars<'a>,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.rest.clone().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.rest.clone();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.rest.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn eat_if(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// simply end at end-of-input (the linter must degrade gracefully on
/// half-written code).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        rest: src.chars(),
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.push(Token {
                    tok: Tok::LineComment(text),
                    line,
                });
            }
            '/' if cur.peek2() == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                let mut text = String::new();
                while depth > 0 {
                    match cur.peek() {
                        Some('/') if cur.peek2() == Some('*') => {
                            depth += 1;
                            text.push_str("/*");
                            cur.bump();
                            cur.bump();
                        }
                        Some('*') if cur.peek2() == Some('/') => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                            if depth > 0 {
                                text.push_str("*/");
                            }
                        }
                        Some(c) => {
                            text.push(c);
                            cur.bump();
                        }
                        None => break,
                    }
                }
                out.push(Token {
                    tok: Tok::BlockComment(text),
                    line,
                });
            }
            '"' => {
                cur.bump();
                lex_cooked_string(&mut cur);
                out.push(Token {
                    tok: Tok::Str,
                    line,
                });
            }
            '\'' => {
                cur.bump();
                out.push(Token {
                    tok: lex_quote(&mut cur),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                lex_number(&mut cur);
                out.push(Token {
                    tok: Tok::Number,
                    line,
                });
            }
            c if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    name.push(c);
                    cur.bump();
                }
                out.push(Token {
                    tok: lex_after_ident(&mut cur, name),
                    line,
                });
            }
            c => {
                cur.bump();
                out.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
            }
        }
    }
    out
}

/// Scans a cooked string body after the opening quote.
fn lex_cooked_string(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Scans a raw string after its identifier prefix: `#…#"…"#…#` or `"…"`.
/// Returns false if the characters do not actually start a raw string
/// (e.g. `r #` as separate tokens), in which case nothing is consumed.
fn lex_raw_string(cur: &mut Cursor<'_>) -> bool {
    let mut probe = cur.rest.clone();
    let mut hashes = 0usize;
    loop {
        match probe.next() {
            Some('#') => hashes += 1,
            Some('"') => break,
            _ => return false,
        }
    }
    // Commit: consume hashes + opening quote.
    for _ in 0..=hashes {
        cur.bump();
    }
    // Body ends at `"` followed by `hashes` hashes.
    'body: while let Some(c) = cur.bump() {
        if c == '"' {
            let mut probe = cur.rest.clone();
            for _ in 0..hashes {
                if probe.next() != Some('#') {
                    continue 'body;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return true;
        }
    }
    true
}

/// After an identifier: raw strings (`r"…"`, `br#"…"#`), byte chars
/// (`b'x'`), raw identifiers (`r#match`), or just the identifier.
fn lex_after_ident(cur: &mut Cursor<'_>, name: String) -> Tok {
    let string_prefix = matches!(name.as_str(), "r" | "b" | "c" | "br" | "cr" | "rb" | "rc");
    match cur.peek() {
        Some('"') if string_prefix => {
            cur.bump();
            lex_cooked_or_raw_tail(cur, &name);
            Tok::Str
        }
        Some('#') if string_prefix => {
            if lex_raw_string(cur) {
                Tok::Str
            } else if name == "r" && cur.peek() == Some('#') {
                // Raw identifier `r#ident`.
                cur.bump();
                let mut raw = String::new();
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    raw.push(c);
                    cur.bump();
                }
                Tok::Ident(raw)
            } else {
                Tok::Ident(name)
            }
        }
        Some('\'') if name == "b" => {
            cur.bump();
            lex_char_body(cur);
            Tok::Char
        }
        _ => Tok::Ident(name),
    }
}

/// Body of a string opened with a quote right after a prefix: raw
/// (`r"…"` — no escapes) or cooked (`b"…"` — escapes) depending on it.
fn lex_cooked_or_raw_tail(cur: &mut Cursor<'_>, prefix: &str) {
    if prefix.contains('r') {
        while let Some(c) = cur.bump() {
            if c == '"' {
                break;
            }
        }
    } else {
        lex_cooked_string(cur);
    }
}

/// Scans a char-literal body after the opening quote (escape or single
/// char, then the closing quote).
fn lex_char_body(cur: &mut Cursor<'_>) {
    // Skip one unit: an escape consumes the backslash and the escaped
    // char; otherwise the single content char.
    cur.eat_if('\\');
    cur.bump();
    while let Some(c) = cur.bump() {
        if c == '\'' {
            break;
        }
    }
}

/// After a `'`: a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> Tok {
    match cur.peek() {
        Some('\\') => {
            lex_char_body(cur);
            Tok::Char
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char; `'a` / `'static` are lifetimes.
            let mut name = String::new();
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                name.push(c);
                cur.bump();
            }
            if cur.eat_if('\'') {
                Tok::Char
            } else {
                Tok::Lifetime(name)
            }
        }
        Some(_) => {
            lex_char_body(cur);
            Tok::Char
        }
        None => Tok::Char,
    }
}

/// Scans a numeric literal: digits, `_`, hex/suffix letters, and a float
/// dot only when followed by a digit (so `0..5` and `1.max()` lex
/// correctly).
fn lex_number(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            cur.bump();
        } else if c == '.' {
            match cur.peek2() {
                Some(d) if d.is_ascii_digit() => {
                    cur.bump();
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_stream_with_lines() {
        let toks = lex("let x = a.unwrap();\nlet y = 2;");
        assert_eq!(toks[0].tok, Tok::Ident("let".into()));
        assert_eq!(toks[0].line, 1);
        let last = toks.last().unwrap();
        assert_eq!(last.tok, Tok::Punct(';'));
        assert_eq!(last.line, 2);
    }

    #[test]
    fn string_embedded_unwrap_lookalikes_are_not_idents() {
        // None of these may surface `unwrap` as an identifier token.
        for src in [
            r#"let s = "calls .unwrap( here";"#,
            r##"let s = r#"raw .unwrap( and "quoted" too"#;"##,
            r#"let s = b".unwrap(";"#,
            r##"let s = br#".unwrap("#;"##,
            "// comment mentions .unwrap( only",
            "/* block mentions .unwrap( only */",
        ] {
            assert!(
                !idents(src).iter().any(|i| i == "unwrap"),
                "false ident in {src:?}"
            );
        }
        // …while a real call does.
        assert!(idents("x.unwrap()").iter().any(|i| i == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r##"has "# inside"## ; x"###);
        assert!(toks.contains(&Tok::Str));
        assert!(toks.contains(&Tok::Ident("x".into())), "lexer resynced");
        // Unterminated raw string must not panic or loop.
        let toks = kinds(r##"let s = r#"never closed"##);
        assert!(toks.contains(&Tok::Str));
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.tok, Tok::BlockComment(_)))
                .count(),
            1
        );
        assert_eq!(idents("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds("let c = 'a'; fn f<'a>(x: &'a str) {} let q = '\\''; let n = '\\n';");
        assert_eq!(
            toks.iter().filter(|t| **t == Tok::Char).count(),
            3,
            "'a', '\\'' and '\\n' are chars"
        );
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, Tok::Lifetime(n) if n == "a"))
                .count(),
            2,
            "<'a> and &'a are lifetimes"
        );
        assert!(kinds("b'x'").contains(&Tok::Char));
        assert!(matches!(
            kinds("'static").first(),
            Some(Tok::Lifetime(n)) if n == "static"
        ));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = kinds("0..5");
        assert_eq!(
            toks,
            vec![Tok::Number, Tok::Punct('.'), Tok::Punct('.'), Tok::Number]
        );
        let toks = kinds("1.5f64 + 1.max(2) + 0xFFu8");
        assert_eq!(
            toks.iter().filter(|t| **t == Tok::Number).count(),
            4,
            "1.5f64, 1, 2, 0xFFu8"
        );
        assert!(idents("1.max(2)").contains(&"max".to_string()));
    }

    #[test]
    fn line_numbers_across_literals() {
        let src = "let a = \"two\nlines\";\nb";
        let toks = lex(src);
        let b = toks.last().unwrap();
        assert_eq!(b.tok, Tok::Ident("b".into()));
        assert_eq!(b.line, 3);
    }

    #[test]
    fn comment_text_is_preserved_for_pragmas() {
        let toks = lex("// s4d-lint: allow(panic) — provable\nx");
        assert!(matches!(
            &toks[0].tok,
            Tok::LineComment(t) if t.contains("s4d-lint: allow(panic)")
        ));
    }
}
