//! # s4d-lint — workspace-aware static analysis for S4D-Cache
//!
//! A self-contained (dependency-free) source analyzer enforcing the
//! invariant families the middleware's correctness arguments rest on.
//! Since PR 5 the analysis is **interprocedural**: a shallow item parser
//! ([`items`]) extracts function definitions and their ordered events
//! from the lexed stream, a conservative name-resolved call graph
//! ([`callgraph`]) links them workspace-wide, and per-function effect
//! summaries ([`summary`]) propagate along the edges — so the protocol
//! rules see through helper functions instead of stopping at each
//! function's own tokens.
//!
//! | rule family | ids | why |
//! |-------------|-----|-----|
//! | determinism | `determinism`, `ordered-iter` | the crash-matrix harness and replay proptests compare byte-for-byte |
//! | panic-freedom | `panic`, `panic-path` | the middleware sits on every I/O path; `panic` flags sites lexically, `panic-path` reports the transitive panic surface of the public API with witness call chains |
//! | lock discipline | `lock-graph`, `lock-across-io` | deadlock cycles in the computed lock-acquisition graph and device-latency lock holds are availability bugs — held-lock sets propagate through callees |
//! | durability protocol | `durability` | DESIGN.md §9 write ordering keeps crashes recoverable — checked along call paths via effect summaries |
//! | concurrency readiness | `shard-affinity`, `async-ready`, `hot-alloc` | ROADMAP items 2/4/5: shard mutations must be router-dominated ([`alias`]), blocking-under-lock on the service surface and hot-path allocations are ratcheted before real concurrency lands |
//! | file budget | `file-budget` | a module past 800 non-test lines means a missed component seam (DESIGN.md §12) |
//!
//! Plus `pragma` for allow-pragma hygiene. Run with:
//!
//! ```text
//! cargo run -p s4d-lint -- --workspace                # human-readable
//! cargo run -p s4d-lint -- --workspace --format=json  # one JSON object per finding
//! ```
//!
//! Suppress a finding only with a justified pragma:
//!
//! ```text
//! // s4d-lint: allow(panic) — index is the loop bound, < len by construction
//! ```
//!
//! See `DESIGN.md` §10 for the full rule catalogue and the
//! conservative-resolution caveats (mirrored in [`config`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod callgraph;
pub mod cfg;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod source;
pub mod summary;

pub use diag::{Diagnostic, Severity};
pub use engine::{lint_files, lint_paths, lint_workspace, Report};
pub use source::SourceFile;
pub use summary::Analysis;
