//! # s4d-lint — workspace-aware static analysis for S4D-Cache
//!
//! A self-contained (dependency-free) source analyzer enforcing the four
//! invariant families the middleware's correctness arguments rest on:
//!
//! | rule family | ids | why |
//! |-------------|-----|-----|
//! | determinism | `determinism`, `ordered-iter` | the crash-matrix harness and replay proptests compare byte-for-byte |
//! | panic-freedom | `panic` | the middleware sits on every I/O path; a panic is an availability bug |
//! | lock discipline | `lock-order`, `lock-across-io` | cycles and device-latency lock holds are availability bugs |
//! | durability protocol | `durability` | DESIGN.md §9 write ordering keeps crashes recoverable |
//! | file budget | `file-budget` | a module past 800 non-test lines means a missed component seam (DESIGN.md §12) |
//!
//! Plus `pragma` for allow-pragma hygiene. Run with:
//!
//! ```text
//! cargo run -p s4d-lint -- --workspace
//! ```
//!
//! Suppress a finding only with a justified pragma:
//!
//! ```text
//! // s4d-lint: allow(panic) — index is the loop bound, < len by construction
//! ```
//!
//! See `DESIGN.md` §10 for the full rule catalogue and the declared
//! lock-order table (mirrored in [`config`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod source;

pub use diag::{Diagnostic, Severity};
pub use engine::{lint_file, lint_paths, lint_workspace, Report};
pub use source::SourceFile;
