//! Source-file model: lexed tokens plus the structure rules need —
//! workspace-relative path, owning crate, file role (library / test /
//! example), `#[cfg(test)]` spans, and a function index.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, Token};

/// The role a file plays in the workspace; several rules only apply to
/// library code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` of a crate — library code.
    Lib,
    /// `tests/**` — integration tests.
    TestDir,
    /// `examples/**`.
    Example,
    /// `benches/**`.
    Bench,
}

impl FileKind {
    /// True for test, example, and bench files — code that may panic
    /// freely.
    pub fn is_test_like(self) -> bool {
        !matches!(self, FileKind::Lib)
    }
}

/// One function's extent in the code-token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Code-token range of the body (inside the braces, exclusive of
    /// both). Empty for bodyless declarations.
    pub body: std::ops::Range<usize>,
}

/// A lexed, classified source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute (or as-given) path, for diagnostics.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes, for scoping tables.
    pub rel: String,
    /// Short crate name (`core`, `pfs`, …) for `crates/<name>/…` files;
    /// the facade crate's `src/` maps to `s4d`.
    pub crate_name: String,
    /// File role.
    pub kind: FileKind,
    /// Token stream with comments removed — what rules pattern-match on.
    pub code: Vec<Token>,
    /// Comment tokens only (pragma parsing).
    pub comments: Vec<Token>,
    /// 1-based line spans covered by `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(u32, u32)>,
    /// Indexed functions, in source order. Nested functions appear both
    /// standalone and inside their parent's body range.
    pub fns: Vec<FnSpan>,
    /// Lines that contain at least one code token (pragma reach).
    pub code_lines: Vec<u32>,
    /// Line of the last token in the file (pragma reach at EOF).
    pub last_line: u32,
}

/// Derives `rel`, `crate_name`, and [`FileKind`] from a path relative to
/// the workspace root.
fn classify(rel: &str) -> (String, FileKind) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, tail) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        (
            parts.get(1).copied().unwrap_or_default().to_string(),
            &parts[2..],
        )
    } else {
        ("s4d".to_string(), &parts[..])
    };
    let kind = match tail.first().copied() {
        Some("tests") => FileKind::TestDir,
        Some("examples") => FileKind::Example,
        Some("benches") => FileKind::Bench,
        _ => FileKind::Lib,
    };
    (crate_name, kind)
}

impl SourceFile {
    /// Lexes and indexes `src`. `rel` is the workspace-relative path (used
    /// for scoping); `path` is what diagnostics print.
    pub fn parse(path: PathBuf, rel: String, src: &str) -> SourceFile {
        let tokens = lex(src);
        let mut code = Vec::new();
        let mut comments = Vec::new();
        for t in tokens {
            match t.tok {
                Tok::LineComment(_) | Tok::BlockComment(_) => comments.push(t),
                _ => code.push(t),
            }
        }
        let (crate_name, kind) = classify(&rel);
        let test_spans = find_test_spans(&code);
        let fns = index_fns(&code);
        let mut code_lines: Vec<u32> = code.iter().map(|t| t.line).collect();
        code_lines.dedup();
        let last_line = code
            .last()
            .map(|t| t.line)
            .max(comments.last().map(|t| t.line))
            .unwrap_or(1);
        SourceFile {
            path,
            rel,
            crate_name,
            kind,
            code,
            comments,
            test_spans,
            fns,
            code_lines,
            last_line,
        }
    }

    /// True if `line` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test_span(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// The identifier text of code token `i`, if it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.code.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    /// True if code token `i` is exactly the punctuation char `c`.
    pub fn punct_is(&self, i: usize, c: char) -> bool {
        matches!(self.code.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    /// Line of code token `i` (or the file's last line when out of range).
    pub fn line_of(&self, i: usize) -> u32 {
        self.code.get(i).map(|t| t.line).unwrap_or(self.last_line)
    }

    /// True when the token sequence starting at `i` is a call of `name`:
    /// `name (` — optionally as a method (`. name (`) or plain.
    pub fn is_call(&self, i: usize, name: &str) -> bool {
        self.ident(i) == Some(name) && self.punct_is(i + 1, '(')
    }
}

/// Finds the matching `}` for the `{` at code index `open`. Returns the
/// index one past the end on unbalanced input (graceful degradation).
pub fn match_brace(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = code.get(i) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// Collects the line spans of items annotated with a test attribute:
/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` — any attribute whose
/// identifier set contains `test` and not `not`.
fn find_test_spans(code: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(matches!(code.get(i).map(|t| &t.tok), Some(Tok::Punct('#')))
            && matches!(code.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))))
        {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Find the attribute's closing bracket.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut idents: Vec<&str> = Vec::new();
        while let Some(t) = code.get(j) {
            match &t.tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s) => idents.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = idents.contains(&"test") && !idents.contains(&"not");
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then take the next braced body.
        let mut k = j + 1;
        while matches!(code.get(k).map(|t| &t.tok), Some(Tok::Punct('#')))
            && matches!(code.get(k + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let mut d = 0usize;
            while let Some(t) = code.get(k) {
                match t.tok {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => {
                        d = d.saturating_sub(1);
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        while let Some(t) = code.get(k) {
            if matches!(t.tok, Tok::Punct('{')) {
                break;
            }
            if matches!(t.tok, Tok::Punct(';')) {
                // Bodyless item (e.g. `mod tests;`): span is just the item.
                break;
            }
            k += 1;
        }
        let end = if matches!(code.get(k).map(|t| &t.tok), Some(Tok::Punct('{'))) {
            match_brace(code, k)
        } else {
            k
        };
        let start_line = code.get(attr_start).map(|t| t.line).unwrap_or(1);
        let end_line = code
            .get(end)
            .or_else(|| code.last())
            .map(|t| t.line)
            .unwrap_or(start_line);
        spans.push((start_line, end_line));
        i = end + 1;
    }
    spans
}

/// Indexes every `fn name … { body }` in the stream.
fn index_fns(code: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let is_fn = matches!(code.get(i).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "fn");
        if !is_fn {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(name)) = code.get(i + 1).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        // Scan to the body's `{` or a bodyless `;`.
        let mut j = i + 2;
        while let Some(t) = code.get(j) {
            if matches!(t.tok, Tok::Punct('{') | Tok::Punct(';')) {
                break;
            }
            j += 1;
        }
        if matches!(code.get(j).map(|t| &t.tok), Some(Tok::Punct('{'))) {
            let close = match_brace(code, j);
            fns.push(FnSpan {
                name: name.clone(),
                body: j + 1..close,
            });
        }
        i = j + 1;
    }
    fns
}

/// Reads and parses one file from disk.
pub fn load(root: &Path, rel: &str) -> Result<SourceFile, String> {
    let path = root.join(rel);
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(SourceFile::parse(path, rel.to_string(), &src))
}
