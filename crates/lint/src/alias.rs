//! Shard-state alias layer: routing **provenance** for every shard-owned
//! state access inside one function.
//!
//! The sharded metadata plane (DESIGN.md §15) owns its DMT/CDT/space
//! state per shard, and the only sanctioned way to pick a shard is the
//! `ShardRouter` dispatch (`shard_of(file, offset)` / `segments(…)`).
//! Under per-shard tasks (ROADMAP items 4–5) an access that reaches shard
//! state *without* passing through the router is a data race waiting to
//! happen: two tasks agree on ownership only because they agree on the
//! dispatch. This layer classifies, per function, every expression that
//! selects shard state — accessor indices (`shard_mut(idx)`), bare
//! receivers destructured from shard iterators, and the first argument of
//! the plane's index-taking methods — into a [`Provenance`]:
//!
//! * `Routed` — a router dispatch is visible in the expression itself or
//!   in a dominating binding initializer;
//! * `Static` — a literal index, or the always-present `shard0` (the
//!   single-shard fast path; shard 0 exists at every count);
//! * `Param` — the index is a function parameter: routed **by contract**
//!   (callers are checked at their call sites instead);
//! * `Carried` — the value was destructured from a `for` pattern or a
//!   tuple/struct pattern (an all-shards iterator step, or a collection
//!   whose elements were built with routed shards): routed by
//!   construction, trusted at the destructuring site;
//! * `Flow` — a local rebound along the way: at least one assignment is
//!   routed, so whether the access is safe is a *path* question the
//!   `shard-affinity` rule answers with a must-dataflow;
//! * `Unrouted` — no dispatch anywhere in sight.
//!
//! **Degradation direction:** unlike the call graph (which degrades
//! toward fewer edges), this analysis degrades toward **flagging** — an
//! index expression it cannot prove routed is reported. A race detector
//! that shrugs at complex expressions would miss exactly the clever code
//! most likely to be wrong; the escape hatch is a justified
//! `allow(shard-affinity)` pragma with its witness, counted by the
//! pragma ratchet.

use std::ops::Range;

use crate::cfg::Cfg;
use crate::config;
use crate::items::FnItem;
use crate::lexer::Tok;
use crate::source::SourceFile;

/// How a shard-selecting expression relates to the router dispatch.
#[derive(Debug, Clone)]
pub enum Provenance {
    /// Dispatch visible in the expression (or `.shard` field of a routed
    /// segment).
    Routed,
    /// Literal index or the always-present `self.shard0`.
    Static,
    /// A function parameter — routed by contract.
    Param,
    /// Destructured from a `for`/tuple pattern — routed by construction.
    Carried,
    /// A local with assignment history; `events` are `(token, routed)`
    /// rebindings in source order, for the rule's must-dataflow.
    Flow {
        /// The local's name.
        ident: String,
        /// `(anchor token, initializer contains a dispatch)` per binding
        /// or assignment, in source order.
        events: Vec<(usize, bool)>,
    },
    /// No dispatch anywhere on the way to this access.
    Unrouted,
}

/// One shard-state access with its provenance.
#[derive(Debug)]
pub struct Access {
    /// Code-token index anchoring the access.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Rendered access shape for the diagnostic message.
    pub what: String,
    /// How the shard was selected.
    pub prov: Provenance,
}

/// Collects every shard-state access in `f`'s body with its provenance:
/// accessor-indexed component mutations, bare-receiver component
/// mutations, and plane-indexed calls.
pub fn shard_accesses(file: &SourceFile, f: &FnItem, cfg: &Cfg) -> Vec<Access> {
    let ctx = Ctx {
        file,
        f,
        cfg,
        params: param_names(file, f),
    };
    let mut out = Vec::new();
    let mut i = f.body.start;
    'walk: while i < f.body.end {
        for n in &f.nested {
            if n.contains(&i) {
                i = n.end;
                continue 'walk;
            }
        }
        accessor_access(&ctx, i, &mut out);
        receiver_access(&ctx, i, &mut out);
        plane_indexed_access(&ctx, i, &mut out);
        i += 1;
    }
    out
}

struct Ctx<'a> {
    file: &'a SourceFile,
    f: &'a FnItem,
    cfg: &'a Cfg,
    params: Vec<String>,
}

/// `….shard_mut(IDX).dmt.insert(…)` / `….shard(IDX).space = …`: the
/// accessor's index argument must be routed.
fn accessor_access(ctx: &Ctx, i: usize, out: &mut Vec<Access>) {
    let file = ctx.file;
    let Some(name) = file.ident(i) else { return };
    if !config::SHARD_ACCESSOR_FNS.contains(&name)
        || !file.punct_is(i.wrapping_sub(1), '.')
        || !file.punct_is(i + 1, '(')
    {
        return;
    }
    let Some(close) = match_paren(file, i + 1) else {
        return;
    };
    if !file.punct_is(close + 1, '.') {
        return;
    }
    let Some(comp) = file.ident(close + 2) else {
        return;
    };
    if !config::SHARD_COMPONENT_RECEIVERS.contains(&comp) {
        return;
    }
    let Some(mutation) = mutation_after(file, close + 2) else {
        return;
    };
    out.push(Access {
        tok: i,
        line: file.line_of(i),
        what: format!("`{name}(…).{comp}{mutation}`"),
        prov: classify_index(ctx, i + 2..close),
    });
}

/// `RECV.dmt.insert(…)` / `RECV.space = …` where `RECV` is a bare local,
/// `self.shard0`, or an unrecognized chain: the receiver itself must be a
/// routed shard value.
fn receiver_access(ctx: &Ctx, i: usize, out: &mut Vec<Access>) {
    let file = ctx.file;
    let Some(comp) = file.ident(i) else { return };
    if !config::SHARD_COMPONENT_RECEIVERS.contains(&comp) || !file.punct_is(i.wrapping_sub(1), '.')
    {
        return;
    }
    let Some(mutation) = mutation_after(file, i) else {
        return;
    };
    let base = i.wrapping_sub(2);
    // `….shard_mut(…).dmt` is the accessor shape, anchored there instead.
    if file.punct_is(base, ')') {
        if let Some(open) = match_paren_back(file, base) {
            if let Some(m) = open.checked_sub(1).and_then(|k| file.ident(k)) {
                if config::SHARD_ACCESSOR_FNS.contains(&m) {
                    return; // handled by `accessor_access`
                }
            }
        }
        out.push(Access {
            tok: i,
            line: file.line_of(i),
            what: format!("`(…).{comp}{mutation}`"),
            prov: Provenance::Unrouted,
        });
        return;
    }
    let Some(recv) = file.ident(base) else { return };
    let prov = if recv == "self" {
        // `self.dmt.insert(…)` — raw pre-shard plane internals.
        Provenance::Unrouted
    } else if recv == "shard0"
        && file.punct_is(base.wrapping_sub(1), '.')
        && file.ident(base.wrapping_sub(2)) == Some("self")
    {
        Provenance::Static
    } else if file.punct_is(base.wrapping_sub(1), '.') {
        // Some other chain (`x.y.dmt`) — not a recognized shard value.
        Provenance::Unrouted
    } else {
        classify_ident(ctx, recv)
    };
    out.push(Access {
        tok: i,
        line: file.line_of(i),
        what: format!(
            "`{recv_or}{comp}{mutation}`",
            recv_or = render_recv(file, base)
        ),
        prov,
    });
}

/// `plane.alloc(IDX, …)` / `self.plane.release(IDX, …)`: the first
/// argument goes straight to per-shard state, so it must be routed.
fn plane_indexed_access(ctx: &Ctx, i: usize, out: &mut Vec<Access>) {
    let file = ctx.file;
    let Some(m) = file.ident(i) else { return };
    if !config::PLANE_INDEXED_FNS.contains(&m)
        || !file.punct_is(i.wrapping_sub(1), '.')
        || file.ident(i.wrapping_sub(2)) != Some(config::PLANE_RECEIVER)
        || !file.punct_is(i + 1, '(')
    {
        return;
    }
    let Some(close) = match_paren(file, i + 1) else {
        return;
    };
    // First argument: up to the first comma at paren depth 0.
    let mut end = close;
    let mut depth = 0i32;
    for k in i + 2..close {
        match file.code.get(k).map(|t| &t.tok) {
            Some(Tok::Punct('(' | '[' | '{')) => depth += 1,
            Some(Tok::Punct(')' | ']' | '}')) => depth -= 1,
            Some(Tok::Punct(',')) if depth == 0 => {
                end = k;
                break;
            }
            _ => {}
        }
    }
    if i + 2 >= end {
        return; // zero-argument call — not an indexed use
    }
    out.push(Access {
        tok: i,
        line: file.line_of(i),
        what: format!("`plane.{m}(…)` shard index"),
        prov: classify_index(ctx, i + 2..end),
    });
}

/// Renders the receiver prefix for the message (`shard.` or `self.shard0.`).
fn render_recv(file: &SourceFile, base: usize) -> String {
    match file.ident(base) {
        Some(r) if file.punct_is(base.wrapping_sub(1), '.') => format!("self.{r}."),
        Some(r) => format!("{r}."),
        None => String::new(),
    }
}

/// The mutation suffix after a component token, if the access mutates:
/// `.mutator(…)` or an `=` assignment (not `==`).
fn mutation_after(file: &SourceFile, comp: usize) -> Option<String> {
    if file.punct_is(comp + 1, '.') {
        let m = file.ident(comp + 2)?;
        if config::SHARD_MUTATOR_FNS.contains(&m) && file.punct_is(comp + 3, '(') {
            return Some(format!(".{m}(…)"));
        }
        return None;
    }
    if file.punct_is(comp + 1, '=') && !file.punct_is(comp + 2, '=') {
        return Some(" = …".to_string());
    }
    None
}

/// Classifies an index-expression token span.
fn classify_index(ctx: &Ctx, span: Range<usize>) -> Provenance {
    let file = ctx.file;
    if span_has_dispatch(file, span.clone()) {
        return Provenance::Routed;
    }
    // `seg.shard` — the routed-segment field (excluding `.shard(…)`).
    for k in span.clone() {
        if file.punct_is(k, '.') && file.ident(k + 1) == Some("shard") && !file.punct_is(k + 2, '(')
        {
            return Provenance::Routed;
        }
    }
    if span.len() == 1 {
        match file.code.get(span.start).map(|t| &t.tok) {
            Some(Tok::Number) => return Provenance::Static,
            Some(Tok::Ident(w)) => return classify_ident(ctx, w.clone().as_str()),
            _ => {}
        }
    }
    Provenance::Unrouted
}

/// Classifies a bare local: parameter, pattern-destructured, or rebound
/// (the `Flow` case the rule resolves with a must-dataflow).
fn classify_ident(ctx: &Ctx, name: &str) -> Provenance {
    if ctx.params.iter().any(|p| p == name) {
        return Provenance::Param;
    }
    let mut events: Vec<(usize, bool)> = Vec::new();
    for p in &ctx.cfg.pats {
        let idents: Vec<&str> = p
            .span
            .clone()
            .filter_map(|k| ctx.file.ident(k))
            .filter(|w| !matches!(*w, "mut" | "ref" | "Some" | "Ok" | "Err" | "None"))
            .collect();
        if !idents.contains(&name) {
            continue;
        }
        if idents.len() >= 2 {
            // Tuple/struct destructuring: the element's provenance was
            // fixed where the collection was built — trusted here.
            return Provenance::Carried;
        }
        events.push((p.init.start, span_has_dispatch(ctx.file, p.init.clone())));
    }
    events.extend(assignments(ctx, name));
    events.sort_unstable_by_key(|&(t, _)| t);
    if events.is_empty() {
        return Provenance::Unrouted;
    }
    Provenance::Flow {
        ident: name.to_string(),
        events,
    }
}

/// Raw `name = RHS;` reassignments of `name` in the body (excluding
/// `let` bindings — those come through the CFG patterns — and `==`/`=>`).
fn assignments(ctx: &Ctx, name: &str) -> Vec<(usize, bool)> {
    let file = ctx.file;
    let mut out = Vec::new();
    let mut j = ctx.f.body.start;
    'walk: while j < ctx.f.body.end {
        for n in &ctx.f.nested {
            if n.contains(&j) {
                j = n.end;
                continue 'walk;
            }
        }
        if file.ident(j) == Some(name)
            && file.punct_is(j + 1, '=')
            && !file.punct_is(j + 2, '=')
            && !file.punct_is(j + 2, '>')
            && file.ident(j.wrapping_sub(1)) != Some("let")
            && !file.punct_is(j.wrapping_sub(1), '.')
        {
            let mut end = j + 2;
            let mut depth = 0i32;
            while end < ctx.f.body.end {
                match file.code.get(end).map(|t| &t.tok) {
                    Some(Tok::Punct('(' | '[' | '{')) => depth += 1,
                    Some(Tok::Punct(')' | ']' | '}')) => depth -= 1,
                    Some(Tok::Punct(';')) if depth == 0 => break,
                    None => break,
                    _ => {}
                }
                if depth < 0 {
                    break;
                }
                end += 1;
            }
            out.push((j, span_has_dispatch(file, j + 2..end)));
        }
        j += 1;
    }
    out
}

/// True when a token span contains router-dispatch evidence: a dispatch
/// call, an all-shards iterator, a shard accessor, a shard-count sweep,
/// or the routed `.shard` segment field.
fn span_has_dispatch(file: &SourceFile, span: Range<usize>) -> bool {
    for k in span {
        if let Some(w) = file.ident(k) {
            if config::ROUTER_DISPATCH_FNS.contains(&w)
                || config::SHARD_ITER_FNS.contains(&w)
                || config::SHARD_ACCESSOR_FNS.contains(&w)
                || config::SHARD_SWEEP_FNS.contains(&w)
            {
                return true;
            }
            if w == "shard" && file.punct_is(k.wrapping_sub(1), '.') && !file.punct_is(k + 1, '(') {
                return true;
            }
        }
    }
    false
}

/// The function's parameter names, recovered by scanning the signature
/// between the `fn` keyword and the body brace.
fn param_names(file: &SourceFile, f: &FnItem) -> Vec<String> {
    // Find the `fn` keyword introducing this body.
    let mut fn_tok = None;
    let mut k = f.body.start;
    while k > 0 {
        k -= 1;
        if file.ident(k) == Some("fn") && file.ident(k + 1) == Some(f.name.as_str()) {
            fn_tok = Some(k);
            break;
        }
    }
    let Some(fn_tok) = fn_tok else {
        return Vec::new();
    };
    // Parameters: idents directly followed by `:` at paren depth 1.
    let mut out = Vec::new();
    let mut depth = 0i32;
    for j in fn_tok..f.body.start {
        match file.code.get(j).map(|t| &t.tok) {
            Some(Tok::Punct('(')) => depth += 1,
            Some(Tok::Punct(')')) => depth -= 1,
            Some(Tok::Ident(w)) if depth == 1 && file.punct_is(j + 1, ':') => {
                out.push(w.clone());
            }
            _ => {}
        }
    }
    out
}

/// Matching `)` for the `(` at `open`.
fn match_paren(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in open..file.code.len() {
        match file.code.get(k).map(|t| &t.tok) {
            Some(Tok::Punct('(')) => depth += 1,
            Some(Tok::Punct(')')) => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Matching `(` for the `)` at `close`.
fn match_paren_back(file: &SourceFile, close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close + 1;
    while k > 0 {
        k -= 1;
        match file.code.get(k).map(|t| &t.tok) {
            Some(Tok::Punct(')')) => depth += 1,
            Some(Tok::Punct('(')) => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}
