//! Item parser: function definitions, call expressions, lock
//! acquisitions, panic sites, and const-initializer spans, extracted from
//! the lexed token stream.
//!
//! This is the layer between the lexer and the interprocedural rules: it
//! turns each file's flat token stream into a list of [`FnItem`]s, each
//! carrying the ordered [`Event`]s its body performs. The call-graph
//! builder ([`crate::callgraph`]) resolves `Event::Call` names to other
//! [`FnItem`]s workspace-wide, and the effect summaries
//! ([`crate::summary`]) propagate along the resulting edges.
//!
//! Parsing is deliberately shallow: no expression trees, no types, no
//! generics. Function bodies are brace-matched token ranges; calls are
//! `name (` sequences (with macro bangs and `fn` definitions excluded);
//! nested function bodies are carved out of their parent's event list so
//! an inner `fn` never contributes events at its definition site.

use std::ops::Range;

use crate::config;
use crate::lexer::Tok;
use crate::source::{match_brace, SourceFile};

/// One call-shaped or effect-shaped occurrence inside a function body,
/// in source order.
#[derive(Debug, Clone)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Code-token index of the event's anchor token.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
}

/// The kinds of event the rules consume.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A call expression `name(…)`, `.name(…)`, or `path::name(…)`.
    Call {
        /// Final path segment of the callee.
        name: String,
        /// True for `.name(…)` method syntax.
        method: bool,
    },
    /// A zero-argument `.lock()`/`.read()`/`.write()` on a named field or
    /// binding — a lock acquisition.
    Acquire {
        /// The receiver field/binding the guard came from.
        lock: String,
        /// Token range the guard may be held over (statement end, or the
        /// body end for `let`-bound guards).
        extent: Range<usize>,
    },
    /// An occurrence of the `FlushIntent` record constructor identifier.
    Intent,
    /// A panicking construct (`.unwrap()`, `panic!`, indexing, …).
    Panic {
        /// Human-readable description of the construct.
        what: &'static str,
    },
}

/// One parsed function definition.
#[derive(Debug)]
pub struct FnItem {
    /// The function's bare name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True for unrestricted `pub fn` (not `pub(crate)` etc.) — the
    /// public-API surface panic reachability starts from.
    pub is_pub: bool,
    /// Code-token range of the body (exclusive of both braces).
    pub body: Range<usize>,
    /// True when the body sits inside a `#[cfg(test)]`/`#[test]` span.
    pub in_test: bool,
    /// Direct events of the body, in source order, with nested function
    /// bodies excluded.
    pub events: Vec<Event>,
    /// Token spans of inner `fn` items carved out of this body — the
    /// event extractor skipped them, and the CFG builder
    /// ([`crate::cfg`]) must skip the same ranges.
    pub nested: Vec<Range<usize>>,
}

/// Everything the interprocedural layer needs from one file.
#[derive(Debug)]
pub struct ItemIndex {
    /// Parsed functions in source order.
    pub fns: Vec<FnItem>,
    /// Token ranges of `const`/`static` initializer expressions. Code in
    /// these ranges is evaluated at build time: a panic there is a
    /// compile error, not a runtime availability bug, so the panic rules
    /// skip it.
    pub const_spans: Vec<Range<usize>>,
}

impl ItemIndex {
    /// True when code token `i` falls inside a const/static initializer.
    pub fn in_const_init(&self, i: usize) -> bool {
        self.const_spans.iter().any(|r| r.contains(&i))
    }
}

/// Keywords that can precede `(` without forming a call.
fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "fn"
            | "let"
            | "in"
            | "loop"
            | "move"
            | "else"
            | "as"
            | "impl"
            | "dyn"
            | "where"
            | "box"
            | "yield"
            | "await"
    )
}

/// Parses one file into its [`ItemIndex`].
pub fn index(file: &SourceFile) -> ItemIndex {
    let spans = fn_spans(file);
    let const_spans = const_init_spans(file);
    let mut fns = Vec::with_capacity(spans.len());
    for (k, s) in spans.iter().enumerate() {
        // Carve out every *other* function body nested inside this one so
        // an inner `fn` contributes events only to itself.
        let nested: Vec<Range<usize>> = spans
            .iter()
            .enumerate()
            .filter(|&(j, n)| j != k && n.body.start >= s.body.start && n.body.end <= s.body.end)
            .map(|(_, n)| n.sig_start..n.body.end + 1)
            .collect();
        let events = extract_events(file, s.body.clone(), &nested, &const_spans);
        fns.push(FnItem {
            name: s.name.clone(),
            line: file.line_of(s.sig_start),
            is_pub: s.is_pub,
            body: s.body.clone(),
            in_test: file.in_test_span(file.line_of(s.sig_start)),
            events,
            nested,
        });
    }
    ItemIndex { fns, const_spans }
}

struct RawSpan {
    name: String,
    sig_start: usize,
    body: Range<usize>,
    is_pub: bool,
}

/// Scans the stream for `fn name … { body }` items, recording visibility.
fn fn_spans(file: &SourceFile) -> Vec<RawSpan> {
    let code = &file.code;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if file.ident(i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = file.ident(i + 1).map(str::to_string) else {
            i += 1;
            continue;
        };
        // Visibility: step back over qualifiers (`const`, `unsafe`,
        // `async`, `extern "C"`) to the token that could be `pub`. A
        // restricted `pub(crate)` leaves a `)` there instead.
        let mut q = i;
        while q > 0 {
            match code.get(q - 1).map(|t| &t.tok) {
                Some(Tok::Ident(w)) if matches!(w.as_str(), "const" | "unsafe" | "async") => q -= 1,
                Some(Tok::Str) => q -= 1, // the "C" of `extern "C"`
                Some(Tok::Ident(w)) if w == "extern" => q -= 1,
                _ => break,
            }
        }
        let is_pub =
            q > 0 && matches!(code.get(q - 1).map(|t| &t.tok), Some(Tok::Ident(w)) if w == "pub");
        // Scan to the body `{` or a bodyless `;` (trait/extern decls).
        let mut j = i + 2;
        while j < code.len() && !file.punct_is(j, '{') && !file.punct_is(j, ';') {
            j += 1;
        }
        if file.punct_is(j, '{') {
            let close = match_brace(code, j);
            out.push(RawSpan {
                name,
                sig_start: i,
                body: j + 1..close,
                is_pub,
            });
        }
        i = j + 1;
    }
    out
}

/// Token ranges of `const NAME … = <init> ;` and `static NAME … = <init> ;`
/// initializer expressions (`const fn` is a function, not a constant, and
/// `const N: usize` generic parameters carry no initializer).
fn const_init_spans(file: &SourceFile) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < file.code.len() {
        if !matches!(file.ident(i), Some("const" | "static")) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if file.ident(j) == Some("mut") {
            j += 1;
        }
        if file.ident(j).is_none() || file.ident(j) == Some("fn") {
            i = j + 1;
            continue;
        }
        // Scan the type position for the `=` at bracket depth 0. Angle
        // brackets count here (`Foo<T>` is a bracket pair in type
        // position); a `,`, `;`, or a closing bracket at depth 0 means a
        // const generic parameter or bodyless declaration — no span.
        j += 1;
        let mut depth = 0i32;
        let mut eq = None;
        while j < file.code.len() {
            match file.code.get(j).map(|t| &t.tok) {
                Some(Tok::Punct('{' | '(' | '[' | '<')) => depth += 1,
                Some(Tok::Punct('}' | ')' | ']' | '>')) => depth -= 1,
                Some(Tok::Punct('=')) if depth == 0 => {
                    eq = Some(j);
                    break;
                }
                Some(Tok::Punct(',' | ';')) if depth == 0 => break,
                None => break,
                _ => {}
            }
            if depth < 0 {
                break;
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i = j + 1;
            continue;
        };
        // The initializer runs to the `;` at brace/paren/bracket depth 0
        // (angles are shift operators in expression position).
        let mut k = eq + 1;
        let mut depth = 0i32;
        while k < file.code.len() {
            match file.code.get(k).map(|t| &t.tok) {
                Some(Tok::Punct('{' | '(' | '[')) => depth += 1,
                Some(Tok::Punct('}' | ')' | ']')) => depth -= 1,
                Some(Tok::Punct(';')) if depth == 0 => break,
                None => break,
                _ => {}
            }
            k += 1;
        }
        out.push(eq + 1..k);
        i = k + 1;
    }
    out
}

/// Extracts the ordered direct events of one body range, skipping nested
/// function bodies and const-initializer spans.
fn extract_events(
    file: &SourceFile,
    body: Range<usize>,
    nested: &[Range<usize>],
    const_spans: &[Range<usize>],
) -> Vec<Event> {
    let mut out = Vec::new();
    let mut i = body.start;
    'walk: while i < body.end {
        for n in nested {
            if n.contains(&i) {
                i = n.end;
                continue 'walk;
            }
        }
        if const_spans.iter().any(|r| r.contains(&i)) {
            i += 1;
            continue;
        }
        let line = file.line_of(i);
        // Panic sites (before call detection: `panic!(` is not a call).
        if let Some(what) = panic_site(file, i) {
            out.push(Event {
                kind: EventKind::Panic { what },
                tok: i,
                line,
            });
        }
        // Lock acquisitions: `<recv> . {lock|read|write} ( )`.
        if matches!(file.ident(i), Some("lock" | "read" | "write"))
            && file.punct_is(i.wrapping_sub(1), '.')
            && file.punct_is(i + 1, '(')
            && file.punct_is(i + 2, ')')
        {
            if let Some(recv) = i.checked_sub(2).and_then(|r| file.ident(r)) {
                if recv != "self" {
                    out.push(Event {
                        kind: EventKind::Acquire {
                            lock: recv.to_string(),
                            extent: i..guard_extent_end(file, &body, i),
                        },
                        tok: i,
                        line,
                    });
                    i += 3;
                    continue;
                }
            }
        }
        // Intent-record constructor occurrences.
        if file.ident(i) == Some(config::INTENT_RECORD) {
            out.push(Event {
                kind: EventKind::Intent,
                tok: i,
                line,
            });
        }
        // Call expressions: `name (` that is not a definition, macro, or
        // keyword-parenthesis.
        if let Some(name) = file.ident(i) {
            if file.punct_is(i + 1, '(')
                && !is_keyword(name)
                && file.ident(i.wrapping_sub(1)) != Some("fn")
            {
                out.push(Event {
                    kind: EventKind::Call {
                        name: name.to_string(),
                        method: file.punct_is(i.wrapping_sub(1), '.'),
                    },
                    tok: i,
                    line,
                });
            }
        }
        i += 1;
    }
    out
}

/// Where a guard acquired at token `i` may be held until: the end of its
/// statement, or the end of the body for `let`-bound guards
/// (conservative — justify early drops with a pragma).
fn guard_extent_end(file: &SourceFile, body: &Range<usize>, i: usize) -> usize {
    // `let`-bound: scan back to the statement start.
    let mut j = i;
    let mut bound = false;
    while j > body.start {
        j -= 1;
        if file.punct_is(j, ';') || file.punct_is(j, '{') {
            break;
        }
        if file.ident(j) == Some("let") {
            bound = true;
            break;
        }
    }
    if bound {
        return body.end;
    }
    let mut j = i;
    while j < body.end && !file.punct_is(j, ';') {
        j += 1;
    }
    j
}

/// Classifies token `i` as a panicking construct, if it is one. The
/// method/macro checks anchor on the *name* token; the indexing check on
/// the `[`.
pub fn panic_site(file: &SourceFile, i: usize) -> Option<&'static str> {
    // `.unwrap()` / `.expect(…)`.
    if matches!(file.ident(i), Some("unwrap" | "expect"))
        && file.punct_is(i.wrapping_sub(1), '.')
        && file.punct_is(i + 1, '(')
    {
        return Some(if file.ident(i) == Some("unwrap") {
            "`.unwrap()`"
        } else {
            "`.expect(…)`"
        });
    }
    // Panic macros.
    if file.punct_is(i + 1, '!') {
        match file.ident(i) {
            Some("panic") => return Some("`panic!`"),
            Some("unreachable") => return Some("`unreachable!`"),
            Some("todo") => return Some("`todo!`"),
            Some("unimplemented") => return Some("`unimplemented!`"),
            _ => {}
        }
    }
    // Postfix `[` — slice/array indexing.
    if file.punct_is(i, '[') && i > 0 {
        let postfix = match file.code.get(i - 1).map(|t| &t.tok) {
            Some(Tok::Ident(w)) => !indexing_keyword(w),
            Some(Tok::Number | Tok::Str | Tok::Punct(')' | ']' | '?')) => true,
            _ => false,
        };
        if postfix {
            return Some("slice/array indexing");
        }
    }
    None
}

/// Reserved words that can directly precede `[` in non-indexing positions.
fn indexing_keyword(w: &str) -> bool {
    matches!(
        w,
        "let"
            | "in"
            | "return"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "const"
            | "static"
            | "as"
            | "yield"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(src: &str) -> (SourceFile, ItemIndex) {
        let f = SourceFile::parse(
            PathBuf::from("crates/core/src/x.rs"),
            "crates/core/src/x.rs".into(),
            src,
        );
        let idx = index(&f);
        (f, idx)
    }

    fn call_names(f: &FnItem) -> Vec<&str> {
        f.events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Call { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fns_calls_and_visibility() {
        let (_, idx) = parse(
            "pub fn outer() { helper(1); x.method(); }\n\
             pub(crate) fn restricted() {}\n\
             fn private() { Self::assoc(2); }\n",
        );
        assert_eq!(idx.fns.len(), 3);
        assert!(idx.fns[0].is_pub);
        assert!(!idx.fns[1].is_pub, "pub(crate) is not public API");
        assert!(!idx.fns[2].is_pub);
        assert_eq!(call_names(&idx.fns[0]), vec!["helper", "method"]);
        assert_eq!(call_names(&idx.fns[2]), vec!["assoc"]);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (_, idx) = parse("fn f() { if (a) { vec![1]; println!(\"x\"); g(); } }");
        assert_eq!(call_names(&idx.fns[0]), vec!["g"]);
    }

    #[test]
    fn nested_fn_events_stay_with_the_inner_fn() {
        let (_, idx) = parse("fn outer() { fn inner() { danger(); } safe(); }");
        let outer = idx.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = idx.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(call_names(outer), vec!["safe"]);
        assert_eq!(call_names(inner), vec!["danger"]);
    }

    #[test]
    fn acquisitions_with_extents() {
        let (_, idx) = parse(
            "fn f(s: &S) { let g = s.records.lock(); use_it(&g); }\n\
             fn h(s: &S) { s.records.lock().clear(); other(); }",
        );
        let f = &idx.fns[0];
        let acq: Vec<_> = f
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Acquire { lock, extent } => Some((lock.clone(), extent.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(acq.len(), 1);
        assert_eq!(acq[0].0, "records");
        assert_eq!(acq[0].1.end, f.body.end, "let-bound guard held to body end");
        let h = &idx.fns[1];
        let acq_h: Vec<_> = h
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Acquire { extent, .. } => Some(extent.clone()),
                _ => None,
            })
            .collect();
        assert!(
            acq_h[0].end < h.body.end,
            "statement-scoped guard ends before the body does"
        );
    }

    #[test]
    fn const_initializers_are_carved_out() {
        let (_, idx) = parse(
            "const T: [u32; 4] = { let mut t = [0; 4]; t[0] = 1; t };\n\
             fn f(xs: &[u32]) -> u32 { xs[0] }",
        );
        assert_eq!(idx.const_spans.len(), 1);
        // The indexing inside the const block is inside the span…
        let f = &idx.fns[0];
        let panics: Vec<_> = f
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Panic { .. }))
            .collect();
        // …and the runtime indexing in `f` is still a panic event.
        assert_eq!(panics.len(), 1);
    }

    #[test]
    fn panic_sites_detected() {
        let (_, idx) = parse("fn f(x: Option<u32>) -> u32 { x.unwrap(); panic!(\"no\"); 0 }");
        let what: Vec<_> = idx.fns[0]
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Panic { what } => Some(what),
                _ => None,
            })
            .collect();
        assert_eq!(what, vec!["`.unwrap()`", "`panic!`"]);
    }

    #[test]
    fn intent_occurrences_are_events() {
        let (_, idx) = parse("fn f() { push(FlushIntent { a: 1 }); }");
        assert!(idx.fns[0]
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Intent)));
    }
}
