//! Conservative, name-resolved workspace call graph.
//!
//! Nodes are the non-test library functions of every linted file
//! ([`crate::items::FnItem`]s with [`FileKind::Lib`] role outside
//! `#[cfg(test)]` spans). Edges come from `Event::Call` names resolved by
//! **bare final segment**: a call `helper(…)`, `self.helper(…)`, or
//! `path::helper(…)` gains an edge to *every* workspace function named
//! `helper`. That over-approximates trait dispatch (all impls of a
//! method are linked) and under-approximates nothing the workspace
//! defines — with two documented exceptions that keep the graph useful:
//!
//! * names on the [`crate::config::CALL_NAME_STOPLIST`] (std-prelude
//!   shadows such as `new`, `len`, `push`) never resolve — they would
//!   connect unrelated components through the std shadow; and
//! * names with [`crate::config::CALL_RESOLUTION_CAP`] or more workspace
//!   definitions are treated as unresolvable — past that point the
//!   "edges" are noise, not information.
//!
//! Both caveats degrade toward *fewer* edges, so the analyses built on
//! the graph (effect propagation, panic reachability) may miss paths
//! routed through ubiquitous names but never invent impossible ones.
//! DESIGN.md §10 records the trade-off.

use std::collections::BTreeMap;

use crate::config;
use crate::items::{EventKind, ItemIndex};
use crate::source::{FileKind, SourceFile};

/// Identifies one function: `(file index, fn index within the file)`
/// flattened to a single graph id.
pub type FnId = usize;

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// The callee.
    pub callee: FnId,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph plus the node table to interpret it.
#[derive(Debug)]
pub struct CallGraph {
    /// `(file index, fn index)` for every node, in deterministic
    /// (file-order, source-order) sequence.
    pub nodes: Vec<(usize, usize)>,
    /// Resolved outgoing edges per node, in call-site order.
    pub edges: Vec<Vec<Edge>>,
    /// Reverse edges: for each node, the `(caller, call-site line)`
    /// pairs that reach it.
    pub callers: Vec<Vec<(FnId, u32)>>,
    /// Resolution table: bare name → node ids, for names that resolve.
    by_name: BTreeMap<String, Vec<FnId>>,
}

impl CallGraph {
    /// Builds the graph over the parsed workspace. `files[k]` must
    /// correspond to `items[k]`.
    pub fn build(files: &[SourceFile], items: &[ItemIndex]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, idx) in items.iter().enumerate() {
            if files[fi].kind != FileKind::Lib {
                continue;
            }
            for (ni, f) in idx.fns.iter().enumerate() {
                if !f.in_test {
                    nodes.push((fi, ni));
                }
            }
        }
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (id, &(fi, ni)) in nodes.iter().enumerate() {
            by_name
                .entry(items[fi].fns[ni].name.clone())
                .or_default()
                .push(id);
        }
        by_name.retain(|name, ids| {
            ids.len() < config::CALL_RESOLUTION_CAP
                && !config::CALL_NAME_STOPLIST.contains(&name.as_str())
        });
        let mut edges = vec![Vec::new(); nodes.len()];
        let mut callers = vec![Vec::new(); nodes.len()];
        for (id, &(fi, ni)) in nodes.iter().enumerate() {
            for ev in &items[fi].fns[ni].events {
                let EventKind::Call { name, .. } = &ev.kind else {
                    continue;
                };
                let Some(targets) = by_name.get(name) else {
                    continue;
                };
                for &t in targets {
                    if t == id {
                        continue; // self-recursion adds no information
                    }
                    edges[id].push(Edge {
                        callee: t,
                        line: ev.line,
                    });
                    callers[t].push((id, ev.line));
                }
            }
        }
        CallGraph {
            nodes,
            edges,
            callers,
            by_name,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node ids a bare name resolves to (empty for stoplisted,
    /// over-ambiguous, or unknown names).
    pub fn resolve(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Breadth-first reachability from `roots` (deduplicated, in order).
    /// Returns, for every node, `Some(parent)` when reached — parents
    /// reconstruct a shortest call chain — with roots marked as
    /// `Some(ROOT_PARENT)`. Deterministic: ties resolve in node order.
    pub fn reach(&self, roots: &[FnId]) -> Vec<Option<(FnId, u32)>> {
        let mut parent: Vec<Option<(FnId, u32)>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some((ROOT_PARENT, 0));
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for e in &self.edges[n] {
                if parent[e.callee].is_none() {
                    parent[e.callee] = Some((n, e.line));
                    queue.push_back(e.callee);
                }
            }
        }
        parent
    }
}

/// Sentinel parent id for BFS roots.
pub const ROOT_PARENT: FnId = usize::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use std::path::PathBuf;

    fn ws(sources: &[(&str, &str)]) -> (Vec<SourceFile>, Vec<ItemIndex>) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(PathBuf::from(rel), rel.to_string(), src))
            .collect();
        let idx = files.iter().map(items::index).collect();
        (files, idx)
    }

    fn node_named(g: &CallGraph, items: &[ItemIndex], name: &str) -> FnId {
        g.nodes
            .iter()
            .position(|&(fi, ni)| items[fi].fns[ni].name == name)
            .unwrap()
    }

    #[test]
    fn cross_file_edges_resolve_by_name() {
        let (files, idx) = ws(&[
            ("crates/core/src/a.rs", "pub fn caller() { helper_x(); }"),
            (
                "crates/sim/src/b.rs",
                "pub fn helper_x() { leaf_y(); }\nfn leaf_y() {}",
            ),
        ]);
        let g = CallGraph::build(&files, &idx);
        let caller = node_named(&g, &idx, "caller");
        let helper = node_named(&g, &idx, "helper_x");
        let leaf = node_named(&g, &idx, "leaf_y");
        assert_eq!(g.edges[caller].len(), 1);
        assert_eq!(g.edges[caller][0].callee, helper);
        let reach = g.reach(&[caller]);
        assert!(reach[leaf].is_some(), "leaf reachable through two hops");
        assert_eq!(reach[leaf].unwrap().0, helper);
    }

    #[test]
    fn stoplisted_and_ambiguous_names_do_not_resolve() {
        let (files, idx) = ws(&[
            (
                "crates/core/src/a.rs",
                "pub fn caller(v: &mut Vec<u32>) { v.push(1); dup(); }",
            ),
            ("crates/core/src/b.rs", "pub fn push() {}\nfn dup() {}"),
            ("crates/pfs/src/c.rs", "fn dup() {}"),
            ("crates/sim/src/d.rs", "fn dup() {}"),
            ("crates/sim/src/e.rs", "fn dup() {}"),
        ]);
        let g = CallGraph::build(&files, &idx);
        let caller = node_named(&g, &idx, "caller");
        assert!(
            g.edges[caller].is_empty(),
            "`push` is stoplisted and `dup` (4 definitions) is over the cap: {:?}",
            g.edges[caller]
        );
    }

    #[test]
    fn test_span_fns_are_not_nodes() {
        let (files, idx) = ws(&[(
            "crates/core/src/a.rs",
            "pub fn lib_fn() {}\n#[cfg(test)]\nmod tests { fn helper_t() { super::lib_fn(); } }",
        )]);
        let g = CallGraph::build(&files, &idx);
        assert_eq!(g.len(), 1, "only the lib fn is a node");
    }
}
