//! Rule scoping tables — which crates, files, and symbols each rule
//! family covers. This is the single place the workspace's invariants are
//! spelled out; DESIGN.md §10 is the prose twin of this file.

/// Every rule id the engine knows. An allow-pragma naming anything else
/// is itself a violation (a typo must never suppress).
pub const RULES: &[&str] = &[
    "determinism",
    "ordered-iter",
    "panic",
    "panic-path",
    "lock-graph",
    "lock-across-io",
    "durability",
    "typestate",
    "file-budget",
    "unbounded-retry",
    // Alias: `allow(retry)` suppresses `unbounded-retry` (see pragma.rs).
    "retry",
    "shard-discipline",
    "shard-affinity",
    "async-ready",
    "hot-alloc",
    "pragma",
];

/// Crates whose behavior must be bit-for-bit deterministic: the simulator
/// and everything on the simulated I/O path. Wall-clock time, OS
/// randomness, and OS threads here would silently invalidate the
/// crash-matrix torture harness and replay-equivalence proptests.
/// `chaos` is included because its whole value proposition is
/// seed-reproducible runs: the same seed must replay byte-identically,
/// so ambient entropy or wall-clock reads there are bugs (the one
/// seeded RNG carries a justified allow at its seeding site).
pub const DETERMINISM_CRATES: &[&str] = &["sim", "core", "pfs", "mpiio", "chaos"];

/// Crates whose *library* code must be panic-free: the middleware sits on
/// every I/O path, so a panic is an availability bug (ECI-Cache/LBICA
/// treat cache-server failure as first-order). `lint` is included for the
/// macro/`unwrap` checks so the tool holds itself to the bar it enforces.
/// `chaos` is included because the harness must report a violation, not
/// die: an engine panic inside a scheduled run is itself converted to a
/// finding (`run_caught`), which only works if the harness around the
/// catch is panic-free.
pub const PANIC_CRATES: &[&str] = &["core", "pfs", "mpiio", "lint", "chaos"];

/// Crates additionally checked for panicking slice/array indexing.
/// Narrower than [`PANIC_CRATES`]: the middleware crates only, per the
/// availability argument above.
pub const INDEX_CRATES: &[&str] = &["core", "pfs", "mpiio"];

/// Files that serialize journal, checkpoint, or report state. Iterating a
/// `HashMap`/`HashSet` while producing those byte streams makes the
/// output order nondeterministic — exactly the bug class that breaks
/// byte-for-byte crash-matrix comparison.
pub const SERIALIZATION_FILES: &[&str] = &[
    "crates/core/src/durability/journal.rs",
    "crates/mpiio/src/report.rs",
    "crates/pfs/src/faults.rs",
    "crates/chaos/src/report.rs",
];

/// Function-name fragments that mark a serialization path in the
/// determinism crates even outside [`SERIALIZATION_FILES`].
pub const SERIALIZATION_FN_PATTERNS: &[&str] =
    &["journal", "checkpoint", "serialize", "snapshot", "report"];

/// Calls that perform (simulated) device I/O or journal appends. Holding
/// any lock across one of these stalls every thread contending for the
/// lock for a device-latency bound — flagged by `lock-across-io`.
pub const DEVICE_IO_FNS: &[&str] = &[
    "append_journal_sync",
    "apply_bytes",
    "read_bytes",
    "discard",
    "submit",
];

/// The synchronous journal-append primitive of the durability protocol.
pub const JOURNAL_SYNC_FN: &str = "append_journal_sync";

/// The batched (group-commit) journal planner.
pub const JOURNAL_BATCH_FN: &str = "journal_op";

/// The data-phase op constructor; must never follow the journal op in a
/// plan-building function (data before metadata).
pub const DATA_OP_FN: &str = "data_op";

/// The crash-fuse charge call every durable effect must pass through so
/// the torture matrix can crash inside it.
pub const FUSE_FN: &str = "fuse_consume";

/// Durable-effect calls that must be fuse-gated in files participating in
/// the durability protocol.
pub const DURABLE_EFFECT_FNS: &[&str] = &["apply_bytes", "discard"];

/// Journal record constructors whose durability ordering is checked.
pub const INTENT_RECORD: &str = "FlushIntent";

/// Call names the call-graph builder never resolves: std-prelude shadows
/// so ubiquitous that a bare-name edge would connect unrelated components
/// through the standard library's vocabulary, not through real calls.
/// Dropping them loses at most real same-named workspace helpers — the
/// conservative direction (fewer edges, never an impossible path); see
/// `callgraph` and DESIGN.md §10.
pub const CALL_NAME_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "next",
    "drain",
    "take",
    "extend",
    "retain",
    "from",
    "into",
    "to_string",
    "as_str",
    "as_ref",
    "as_mut",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "min",
    "max",
    "sum",
    "write",
    "read",
    "lock",
    "flush",
    "name",
    "map",
    "filter",
    "collect",
    "find",
    "position",
    "sort",
    "split",
    "join",
    "first",
    "last",
];

/// A bare call name with this many (or more) workspace definitions is
/// treated as unresolvable: past this point the edges are trait-dispatch
/// noise, not information. Like the stoplist, this degrades toward fewer
/// edges.
pub const CALL_RESOLUTION_CAP: usize = 4;

/// Crates whose unrestricted `pub fn`s are the roots of the `panic-path`
/// reachability analysis: the middleware's public API surface (what the
/// MPI-IO runner and library consumers actually call).
pub const PANIC_PATH_ROOT_CRATES: &[&str] = &["core", "mpiio"];

/// Crates whose retry/hedge loops the `unbounded-retry` rule audits:
/// the runner (replans, hedges, deadline timers) and the middleware
/// (retry directives, backoff) — the gray-failure escalation machinery,
/// every stage of which must be visibly bounded.
pub const RETRY_CRATES: &[&str] = &["core", "mpiio"];

/// Call-name fragments that mark a call as retry/hedge dispatch
/// (matched case-insensitively as substrings of the callee name).
pub const RETRY_CALL_PATTERNS: &[&str] = &["retry", "hedge", "replan", "resubmit", "redrive"];

/// Identifier fragments accepted as evidence that a retry loop is
/// bounded: an iteration cap, an attempt counter, or a budget/deadline
/// check somewhere in the enclosing function or the retry helper.
pub const RETRY_BOUND_PATTERNS: &[&str] = &["max", "attempt", "budget", "cap", "limit", "deadline"];

/// Files allowed to touch the raw metadata components (`Dmt`,
/// `SpaceManager`, `Cdt`) directly: the shard plane and router that own
/// them, the component implementations themselves, and the
/// replay/recovery paths that rebuild a `Dmt` before it is adopted into
/// a plane. Everywhere else in `core`, DMT/space/CDT mutations must go
/// through the plane's routed API (`shard-discipline`) — a direct
/// component mutation bypasses shard routing and silently breaks the
/// shard-count-invariance guarantee.
pub const SHARD_OWNER_FILES: &[&str] = &[
    "crates/core/src/shard/mod.rs",
    "crates/core/src/shard/router.rs",
    "crates/core/src/shard/plane.rs",
    "crates/core/src/dmt/mod.rs",
    "crates/core/src/dmt/view.rs",
    "crates/core/src/space.rs",
    "crates/core/src/cdt.rs",
    "crates/core/src/durability/replay.rs",
    "crates/core/src/durability/recovery.rs",
];

/// Receiver identifiers that denote a raw metadata component (a field or
/// local named after the component) for the `shard-discipline` rule.
pub const SHARD_COMPONENT_RECEIVERS: &[&str] = &["dmt", "space", "cdt"];

/// Component methods that mutate metadata or space state. A call
/// `dmt.insert(…)` / `space.release(…)` / `cdt.set_c_flag(…)` outside
/// [`SHARD_OWNER_FILES`] is a `shard-discipline` finding.
pub const SHARD_MUTATOR_FNS: &[&str] = &[
    "insert",
    "remove",
    "mark_dirty",
    "mark_clean",
    "mark_clean_if",
    "seal",
    "seal_if",
    "unseal",
    "force_clean",
    "touch_range",
    "apply_seal",
    "clear_dirty_checksums",
    "take_pending_journal",
    "evict_clean_lru_excluding",
    "alloc",
    "release",
    "rebuild",
    "set_c_flag",
    "clear_c_flag",
];

/// Router dispatch calls: an index expression containing one of these is
/// **routed** — it came out of the `ShardRouter` that defines shard
/// ownership (`shard_of(file, offset)`, or the `segments(…)` iterator
/// whose items carry a `.shard` field). The `shard-affinity` alias
/// analysis accepts shard-state access only through such provenance.
pub const ROUTER_DISPATCH_FNS: &[&str] = &["shard_of", "segments"];

/// The plane's internal shard accessors: `shard(idx)` / `shard_mut(idx)`
/// select one shard's state by index, so the *index* argument must carry
/// routed provenance.
pub const SHARD_ACCESSOR_FNS: &[&str] = &["shard", "shard_mut"];

/// All-shards iterators: a binding destructured from one of these visits
/// every shard uniformly — routed by construction (each iteration step
/// owns exactly the shard it holds).
pub const SHARD_ITER_FNS: &[&str] = &["shards", "shards_mut"];

/// Identifier fragments accepted in an index-binding initializer as
/// evidence of a uniform all-shards sweep (`for shard in
/// 0..plane.shard_count()`).
pub const SHARD_SWEEP_FNS: &[&str] = &["shard_count"];

/// `MetadataPlane` methods taking a shard index as their **first**
/// argument. A call `plane.alloc(idx, …)` hands `idx` straight to the
/// per-shard state, so the caller-side index expression must be routed.
pub const PLANE_INDEXED_FNS: &[&str] = &[
    "alloc",
    "release",
    "fits",
    "shard_available",
    "evict_clean_lru_excluding",
    "take_shard_pending",
];

/// The receiver identifier that marks a plane-indexed call site
/// (`self.plane.alloc(…)`, `plane.release(…)`). Inside the plane itself
/// the receiver is `self` and the accessor checks apply instead.
pub const PLANE_RECEIVER: &str = "plane";

/// Calls that block the calling thread on (simulated or real) device
/// latency: device I/O, fsync-class persistence barriers, and the
/// synchronous journal append. The `async-ready` rule reports any of
/// these reachable while a lock may be held in a function on the future
/// service entry surface — the classic async-runtime pitfall (a blocked
/// executor thread stalls every task scheduled on it).
pub const BLOCKING_FNS: &[&str] = &[
    "append_journal_sync",
    "apply_bytes",
    "read_bytes",
    "discard",
    "submit",
    "sync_all",
    "sync_data",
    "fsync",
];

/// Crates whose unrestricted `pub fn`s form the future service entry
/// surface (`async-ready` roots): the same public API the tokio front
/// end (ROADMAP item 5) will call from executor threads.
pub const SERVICE_SURFACE_CRATES: &[&str] = &["core", "mpiio"];

/// Hot-path modules under the allocation lint (`hot-alloc`): the
/// identify→redirect→admit pipeline, the shard plane, the group-commit
/// queue, and the runner's exec/drain stages — the code ROADMAP item 2
/// commits to making allocation-free. Matched as a path prefix for
/// directories and exactly for files.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/pipeline/",
    "crates/core/src/shard/",
    "crates/core/src/durability/group.rs",
    "crates/mpiio/src/runner/exec.rs",
    "crates/mpiio/src/runner/drain.rs",
];

/// True when a workspace-relative path lies in the hot-path set.
pub fn is_hot_path(rel: &str) -> bool {
    HOT_PATH_FILES.iter().any(|p| {
        if p.ends_with('/') {
            rel.starts_with(p)
        } else {
            rel == *p
        }
    })
}

/// Maximum non-test code lines per library module (`file-budget`).
/// `#[cfg(test)]` / `#[test]` spans and files under `tests/`, `examples/`,
/// or `benches/` do not count: the budget exists to keep *components*
/// reviewable, and the component-architecture refactor (DESIGN.md §12)
/// is what it guards — a module growing past this line count is a sign
/// a seam was missed.
pub const FILE_BUDGET_MAX_LINES: usize = 800;
