//! Per-function control-flow graphs, built over the same shallow token
//! walk the item parser uses — no expression trees, no types.
//!
//! Each [`crate::items::FnItem`] body becomes a graph of [`Block`]s:
//! straight-line runs of tokens split at `if`/`else` chains, `match`
//! arms, loops (`loop`/`while`/`for`, with back-edges), `let … else`
//! divergence, the `?` operator, and `return`/`break`/`continue` early
//! exits. The function's ordered [`crate::items::Event`]s are attached to
//! the block executing them, so the dataflow layer ([`crate::dataflow`])
//! can run must/may analyses over real paths instead of lexical order.
//!
//! The builder is deliberately conservative in the same direction as the
//! rest of the pipeline: anything it does not recognize is treated as
//! straight-line code in the current block (more paths merged, never an
//! impossible split), and unreachable blocks (after `return`, `break`,
//! `continue`) start from the meet identity so dead code can neither
//! establish nor destroy facts.
//!
//! Beyond blocks and edges the builder records the *binding structure*
//! the typestate rule needs: every `let` / `if let` / `while let` /
//! `for` pattern and every `match` arm pattern becomes a [`PatBind`]
//! with its pattern span and its initializer/scrutinee span, and
//! `matches!(…)` second arguments are recorded as pattern-position
//! spans. Tokens inside pattern spans are *deconstruction*, not
//! construction — the rules use [`Cfg::in_pattern`] to tell the two
//! apart.

use std::ops::Range;

use crate::items::FnItem;
use crate::source::{match_brace, SourceFile};

/// Index of a block within its function's [`Cfg`].
pub type BlockId = usize;

/// Sentinel in the token→block map for tokens the walk skipped (nested
/// `fn` bodies).
const UNMAPPED: u32 = u32::MAX;

/// One basic block: a straight-line run of tokens with its attached
/// events and successor edges.
#[derive(Debug)]
pub struct Block {
    /// What split created the block — for path-witness rendering
    /// (`"entry"`, `"then"`, `"else"`, `"arm"`, `"loop"`, `"join"`, …).
    pub label: &'static str,
    /// 1-based line of the block's first attached token (the function's
    /// own line until a token attaches).
    pub line: u32,
    /// Indices into the function's event list, in execution order.
    pub events: Vec<usize>,
    /// Successor block ids.
    pub succs: Vec<BlockId>,
}

/// One binding pattern with its right-hand side: a `let`/`if let`/
/// `while let`/`for` pattern, or a `match` arm pattern (whose `init` is
/// the shared scrutinee span).
#[derive(Debug)]
pub struct PatBind {
    /// Code-token range of the pattern itself.
    pub span: Range<usize>,
    /// Code-token range of the initializer / scrutinee / iterated
    /// expression the pattern destructures.
    pub init: Range<usize>,
}

/// The control-flow graph of one function body.
#[derive(Debug)]
pub struct Cfg {
    /// The blocks; `blocks[entry]` is where execution starts.
    pub blocks: Vec<Block>,
    /// Entry block id.
    pub entry: BlockId,
    /// The single synthetic exit block (every `return`, `?`-propagation,
    /// and body fallthrough edges here).
    pub exit: BlockId,
    /// Code-token range of the body this graph covers.
    pub body: Range<usize>,
    /// Block executing each event (parallel to the function's events).
    pub ev_block: Vec<BlockId>,
    /// Binding patterns (let / if-let / while-let / for / match arms).
    pub pats: Vec<PatBind>,
    /// Pattern-position spans from `matches!(…)` second arguments.
    pub macro_pats: Vec<Range<usize>>,
    /// Body-relative token → block map (`UNMAPPED` for skipped tokens).
    tok_block: Vec<u32>,
}

impl Cfg {
    /// Builds the CFG for one function. `nested` is the carve-out list of
    /// inner `fn` spans (the same ranges the event extractor skips).
    pub fn build(file: &SourceFile, f: &FnItem, nested: &[Range<usize>]) -> Cfg {
        Builder::new(file, f, nested).run()
    }

    /// The block a body token executes in, if the walk mapped it.
    pub fn block_of_tok(&self, tok: usize) -> Option<BlockId> {
        if !self.body.contains(&tok) {
            return None;
        }
        match self.tok_block[tok - self.body.start] {
            UNMAPPED => None,
            b => Some(b as BlockId),
        }
    }

    /// True when `tok` sits in pattern (deconstruction) position: inside
    /// a binding pattern or a `matches!` pattern argument.
    pub fn in_pattern(&self, tok: usize) -> bool {
        self.pats.iter().any(|p| p.span.contains(&tok))
            || self.macro_pats.iter().any(|r| r.contains(&tok))
    }

    /// Predecessor lists (derived from the successor edges).
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }
        preds
    }

    /// Blocks reachable from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// True when some path leads from `from` to `to` (following edges;
    /// `from == to` counts only if `from` lies on a cycle — same-block
    /// ordering is the caller's job, it has the event positions).
    pub fn reaches(&self, from: BlockId, to: BlockId) -> bool {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack: Vec<BlockId> = self.blocks[from].succs.clone();
        while let Some(b) = stack.pop() {
            if b == to {
                return true;
            }
            if !seen[b] {
                seen[b] = true;
                stack.extend(self.blocks[b].succs.iter().copied());
            }
        }
        false
    }

    /// Shortest path `from → … → to` through blocks for which `ok` holds
    /// (the endpoints are exempt from the filter), rendered as block ids.
    /// Used to materialize a violating path as a witness.
    pub fn path_via<F: Fn(BlockId) -> bool>(
        &self,
        from: BlockId,
        to: BlockId,
        ok: F,
    ) -> Option<Vec<BlockId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut parent = vec![usize::MAX; self.blocks.len()];
        let mut queue = std::collections::VecDeque::new();
        parent[from] = from;
        queue.push_back(from);
        while let Some(b) = queue.pop_front() {
            for &s in &self.blocks[b].succs {
                if parent[s] != usize::MAX {
                    continue;
                }
                if s != to && !ok(s) {
                    continue;
                }
                parent[s] = b;
                if s == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = parent[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(s);
            }
        }
        None
    }
}

/// One loop context on the builder's stack.
struct LoopCtx {
    /// `continue` target (the loop-head block).
    head: BlockId,
    /// `break` target (the block after the loop).
    after: BlockId,
    /// Loop label, if the loop was written `'name: loop { … }`.
    label: Option<String>,
}

struct Builder<'a> {
    file: &'a SourceFile,
    f: &'a FnItem,
    nested: &'a [Range<usize>],
    blocks: Vec<Block>,
    exit: BlockId,
    cur: BlockId,
    loops: Vec<LoopCtx>,
    next_ev: usize,
    ev_block: Vec<BlockId>,
    pats: Vec<PatBind>,
    macro_pats: Vec<Range<usize>>,
    tok_block: Vec<u32>,
    /// Label waiting to be claimed by the next loop keyword.
    pending_label: Option<String>,
}

impl<'a> Builder<'a> {
    fn new(file: &'a SourceFile, f: &'a FnItem, nested: &'a [Range<usize>]) -> Builder<'a> {
        let blocks = vec![
            Block {
                label: "entry",
                line: f.line,
                events: Vec::new(),
                succs: Vec::new(),
            },
            Block {
                label: "exit",
                line: f.line,
                events: Vec::new(),
                succs: Vec::new(),
            },
        ];
        Builder {
            file,
            f,
            nested,
            blocks,
            exit: 1,
            cur: 0,
            loops: Vec::new(),
            next_ev: 0,
            ev_block: vec![0; f.events.len()],
            pats: Vec::new(),
            macro_pats: Vec::new(),
            tok_block: vec![UNMAPPED; f.body.len()],
            pending_label: None,
        }
    }

    fn run(mut self) -> Cfg {
        self.walk(self.f.body.clone());
        let cur = self.cur;
        self.edge(cur, self.exit);
        Cfg {
            blocks: self.blocks,
            entry: 0,
            exit: self.exit,
            body: self.f.body.clone(),
            ev_block: self.ev_block,
            pats: self.pats,
            macro_pats: self.macro_pats,
            tok_block: self.tok_block,
        }
    }

    fn new_block(&mut self, label: &'static str) -> BlockId {
        self.blocks.push(Block {
            label,
            line: 0,
            events: Vec::new(),
            succs: Vec::new(),
        });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Attaches token `i` (and any events anchored on it) to the current
    /// block.
    fn touch(&mut self, i: usize) {
        if self.f.body.contains(&i) {
            self.tok_block[i - self.f.body.start] = self.cur as u32;
        }
        let line = self.file.line_of(i);
        if self.blocks[self.cur].line == 0 {
            self.blocks[self.cur].line = line;
        }
        while self.next_ev < self.f.events.len() && self.f.events[self.next_ev].tok <= i {
            if self.f.events[self.next_ev].tok == i {
                self.ev_block[self.next_ev] = self.cur;
                let ev = self.next_ev;
                self.blocks[self.cur].events.push(ev);
            }
            self.next_ev += 1;
        }
    }

    /// True when token `i` starts a nested-`fn` carve-out; returns its end.
    fn nested_end(&self, i: usize) -> Option<usize> {
        self.nested.iter().find(|n| n.contains(&i)).map(|n| n.end)
    }

    /// Scans forward from `i` for the first `{` at paren/bracket depth 0
    /// (the body brace of an `if`/`while`/`for`/`match` header).
    fn body_brace(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            if self.file.punct_is(j, '(') || self.file.punct_is(j, '[') {
                depth += 1;
            } else if self.file.punct_is(j, ')') || self.file.punct_is(j, ']') {
                depth -= 1;
            } else if self.file.punct_is(j, '{') && depth <= 0 {
                return j;
            }
            j += 1;
        }
        end
    }

    /// Scans forward for the first `;` at full depth 0 (statement end).
    fn stmt_end(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            if self.file.punct_is(j, '(')
                || self.file.punct_is(j, '[')
                || self.file.punct_is(j, '{')
            {
                depth += 1;
            } else if self.file.punct_is(j, ')')
                || self.file.punct_is(j, ']')
                || self.file.punct_is(j, '}')
            {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            } else if (self.file.punct_is(j, ';') || self.file.punct_is(j, ',')) && depth == 0 {
                return j;
            }
            j += 1;
        }
        end
    }

    /// Records the binding pattern of a `let` (including `if let` /
    /// `while let`) starting at the `let` keyword. Returns the `=` token
    /// index, if the statement has an initializer before `limit`.
    fn record_let_pat(&mut self, let_tok: usize, limit: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = let_tok + 1;
        let mut colon = None;
        while j < limit {
            if self.file.punct_is(j, '(')
                || self.file.punct_is(j, '[')
                || self.file.punct_is(j, '{')
            {
                depth += 1;
            } else if self.file.punct_is(j, ')')
                || self.file.punct_is(j, ']')
                || self.file.punct_is(j, '}')
            {
                depth -= 1;
            } else if depth == 0 && self.file.punct_is(j, ':') && colon.is_none() {
                // Type annotation: the pattern ends here. `::` paths
                // inside patterns are two `:` tokens — skip pairs.
                if self.file.punct_is(j + 1, ':') {
                    j += 2;
                    continue;
                }
                colon = Some(j);
            } else if depth == 0 && self.file.punct_is(j, '=') && !self.file.punct_is(j + 1, '=') {
                let span_end = colon.unwrap_or(j);
                let init_end = self.stmt_end(j + 1, limit);
                self.pats.push(PatBind {
                    span: let_tok + 1..span_end,
                    init: j + 1..init_end,
                });
                return Some(j);
            } else if depth == 0 && self.file.punct_is(j, ';') {
                return None;
            }
            j += 1;
        }
        None
    }

    /// The main walk: processes `range` token by token, splitting blocks
    /// at control flow, leaving `self.cur` at the fall-through block.
    fn walk(&mut self, range: Range<usize>) {
        let mut i = range.start;
        while i < range.end {
            if let Some(end) = self.nested_end(i) {
                i = end;
                continue;
            }
            match self.file.ident(i) {
                Some("if") => i = self.handle_if(i, range.end),
                Some("match") => i = self.handle_match(i, range.end),
                Some("loop") => i = self.handle_loop(i, range.end),
                Some("while") => i = self.handle_while(i, range.end),
                Some("for") if self.file.punct_is(i.wrapping_sub(1), '<') => {
                    // `for<'a>` higher-ranked bound, not a loop.
                    self.touch(i);
                    i += 1;
                }
                Some("for") => i = self.handle_for(i, range.end),
                Some("return") => i = self.handle_return(i, range.end),
                Some("break") => i = self.handle_jump(i, range.end, false),
                Some("continue") => i = self.handle_jump(i, range.end, true),
                Some("let") => {
                    self.touch(i);
                    self.record_let_pat(i, self.stmt_end(i + 1, range.end));
                    i += 1;
                }
                Some("else") => {
                    // A bare `else` (the if-handler consumes its own):
                    // `let … else { diverge }`.
                    i = self.handle_let_else(i, range.end);
                }
                Some("matches") if self.file.punct_is(i + 1, '!') => {
                    i = self.handle_matches_macro(i, range.end);
                }
                _ => {
                    if self.file.punct_is(i, '?') && self.file.ident(i + 1) != Some("Sized") {
                        self.touch(i);
                        let next = self.new_block("after-try");
                        let cur = self.cur;
                        self.edge(cur, self.exit);
                        self.edge(cur, next);
                        self.cur = next;
                        i += 1;
                        continue;
                    }
                    // A lifetime immediately before `:` labels the next
                    // loop (`'outer: loop { … }`).
                    if let Some(crate::lexer::Tok::Lifetime(name)) =
                        self.file.code.get(i).map(|t| &t.tok)
                    {
                        if self.file.punct_is(i + 1, ':') {
                            self.pending_label = Some(name.clone());
                        }
                    }
                    self.touch(i);
                    i += 1;
                }
            }
        }
    }

    /// `if cond { … } [else if … ] [else { … }]`. Returns the resume
    /// index past the whole chain.
    fn handle_if(&mut self, i: usize, end: usize) -> usize {
        self.touch(i);
        let brace = self.body_brace(i + 1, end);
        if self.file.ident(i + 1) == Some("let") {
            self.record_let_pat(i + 1, brace);
        }
        // Condition tokens evaluate in the current block.
        self.walk(i + 1..brace);
        if brace >= end {
            return end;
        }
        let head = self.cur;
        let close = match_brace(&self.file.code, brace);
        let then = self.new_block("then");
        self.edge(head, then);
        self.cur = then;
        self.touch(brace);
        self.walk(brace + 1..close.min(end));
        let then_end = self.cur;

        // `else` / `else if` chain.
        if close + 1 < end && self.file.ident(close + 1) == Some("else") {
            if self.file.ident(close + 2) == Some("if") {
                let cond = self.new_block("else");
                self.edge(head, cond);
                self.cur = cond;
                let resume = self.handle_if(close + 2, end);
                let chain_end = self.cur;
                let join = self.new_block("join");
                self.edge(then_end, join);
                self.edge(chain_end, join);
                self.cur = join;
                return resume;
            }
            let eb = self.body_brace(close + 2, end);
            if eb < end {
                let eclose = match_brace(&self.file.code, eb);
                let els = self.new_block("else");
                self.edge(head, els);
                self.cur = els;
                self.touch(eb);
                self.walk(eb + 1..eclose.min(end));
                let else_end = self.cur;
                let join = self.new_block("join");
                self.edge(then_end, join);
                self.edge(else_end, join);
                self.cur = join;
                return eclose + 1;
            }
        }
        let join = self.new_block("join");
        self.edge(head, join);
        self.edge(then_end, join);
        self.cur = join;
        close + 1
    }

    /// `match scrutinee { pat => body, … }` — every arm branches from the
    /// head; no head→join edge (Rust matches are exhaustive).
    fn handle_match(&mut self, i: usize, end: usize) -> usize {
        self.touch(i);
        let brace = self.body_brace(i + 1, end);
        let scrutinee = i + 1..brace;
        self.walk(scrutinee.clone());
        if brace >= end {
            return end;
        }
        let head = self.cur;
        self.touch(brace);
        let close = match_brace(&self.file.code, brace);
        let join = self.new_block("join");
        let mut j = brace + 1;
        let mut any_arm = false;
        while j < close {
            // Pattern runs to `=>` (lexed `=` `>`) at depth 0; an `if`
            // guard splits it.
            let mut depth = 0i32;
            let pat_start = j;
            let mut guard = None;
            let mut arrow = None;
            while j < close {
                if self.file.punct_is(j, '(')
                    || self.file.punct_is(j, '[')
                    || self.file.punct_is(j, '{')
                {
                    depth += 1;
                } else if self.file.punct_is(j, ')')
                    || self.file.punct_is(j, ']')
                    || self.file.punct_is(j, '}')
                {
                    depth -= 1;
                } else if depth == 0 && self.file.punct_is(j, '=') && self.file.punct_is(j + 1, '>')
                {
                    arrow = Some(j);
                    break;
                } else if depth == 0 && self.file.ident(j) == Some("if") && guard.is_none() {
                    guard = Some(j);
                }
                j += 1;
            }
            let Some(arrow) = arrow else { break };
            let pat_end = guard.unwrap_or(arrow);
            self.pats.push(PatBind {
                span: pat_start..pat_end,
                init: scrutinee.clone(),
            });
            let arm = self.new_block("arm");
            self.edge(head, arm);
            self.cur = arm;
            any_arm = true;
            // Pattern tokens map to the arm block (deconstruction happens
            // there); guard tokens evaluate there too.
            self.walk(pat_start..arrow);
            // Arm body: a brace block runs to its matching `}` (the
            // trailing comma is optional there); an expression arm runs
            // to `,` at depth 0 or the match close.
            let body_end = if self.file.punct_is(arrow + 2, '{') {
                match_brace(&self.file.code, arrow + 2).min(close)
            } else {
                self.stmt_end(arrow + 2, close)
            };
            self.walk(arrow + 2..body_end);
            let arm_end = self.cur;
            self.edge(arm_end, join);
            j = body_end + 1;
            if self.file.punct_is(j, ',') {
                j += 1;
            }
        }
        if !any_arm {
            self.edge(head, join);
        }
        self.cur = join;
        close + 1
    }

    fn claim_label(&mut self) -> Option<String> {
        self.pending_label.take()
    }

    /// `loop { … }` — exits only via `break`.
    fn handle_loop(&mut self, i: usize, end: usize) -> usize {
        self.touch(i);
        let label = self.claim_label();
        let brace = self.body_brace(i + 1, end);
        if brace >= end {
            return end;
        }
        let close = match_brace(&self.file.code, brace);
        let cur = self.cur;
        let head = self.new_block("loop");
        let after = self.new_block("after-loop");
        self.edge(cur, head);
        self.loops.push(LoopCtx { head, after, label });
        self.cur = head;
        self.touch(brace);
        self.walk(brace + 1..close.min(end));
        let tail = self.cur;
        self.edge(tail, head);
        self.loops.pop();
        self.cur = after;
        close + 1
    }

    /// `while cond { … }` / `while let pat = expr { … }` — the condition
    /// re-evaluates in the head each iteration; false exits to `after`.
    fn handle_while(&mut self, i: usize, end: usize) -> usize {
        self.touch(i);
        let label = self.claim_label();
        let brace = self.body_brace(i + 1, end);
        if brace >= end {
            return end;
        }
        let close = match_brace(&self.file.code, brace);
        let cur = self.cur;
        let head = self.new_block("loop");
        self.edge(cur, head);
        self.cur = head;
        if self.file.ident(i + 1) == Some("let") {
            self.record_let_pat(i + 1, brace);
        }
        self.walk(i + 1..brace);
        let head_end = self.cur; // `?` in the condition may have split it
        let after = self.new_block("after-loop");
        let body = self.new_block("then");
        self.edge(head_end, after);
        self.edge(head_end, body);
        self.loops.push(LoopCtx { head, after, label });
        self.cur = body;
        self.touch(brace);
        self.walk(brace + 1..close.min(end));
        let tail = self.cur;
        self.edge(tail, head);
        self.loops.pop();
        self.cur = after;
        close + 1
    }

    /// `for pat in iter { … }` — the iterator expression evaluates once
    /// before the head; zero iterations exit head→after directly.
    fn handle_for(&mut self, i: usize, end: usize) -> usize {
        self.touch(i);
        let label = self.claim_label();
        let brace = self.body_brace(i + 1, end);
        if brace >= end {
            return end;
        }
        // Split `pat in iter` at the `in` keyword at depth 0.
        let mut depth = 0i32;
        let mut in_pos = None;
        let mut j = i + 1;
        while j < brace {
            if self.file.punct_is(j, '(')
                || self.file.punct_is(j, '[')
                || self.file.punct_is(j, '{')
            {
                depth += 1;
            } else if self.file.punct_is(j, ')')
                || self.file.punct_is(j, ']')
                || self.file.punct_is(j, '}')
            {
                depth -= 1;
            } else if depth == 0 && self.file.ident(j) == Some("in") {
                in_pos = Some(j);
                break;
            }
            j += 1;
        }
        let in_pos = in_pos.unwrap_or(i);
        self.pats.push(PatBind {
            span: i + 1..in_pos,
            init: in_pos + 1..brace,
        });
        let close = match_brace(&self.file.code, brace);
        // Pattern and iterator tokens evaluate before the loop begins.
        self.walk(i + 1..brace);
        let cur = self.cur;
        let head = self.new_block("loop");
        let after = self.new_block("after-loop");
        let body = self.new_block("then");
        self.edge(cur, head);
        self.edge(head, after);
        self.edge(head, body);
        self.loops.push(LoopCtx { head, after, label });
        self.cur = body;
        self.touch(brace);
        self.walk(brace + 1..close.min(end));
        let tail = self.cur;
        self.edge(tail, head);
        self.loops.pop();
        self.cur = after;
        close + 1
    }

    /// `return [expr] ;` — the value expression evaluates first, then the
    /// edge to exit; what follows starts a fresh unreachable block.
    fn handle_return(&mut self, i: usize, end: usize) -> usize {
        self.touch(i);
        let stop = self.stmt_end(i + 1, end);
        self.walk(i + 1..stop);
        let cur = self.cur;
        self.edge(cur, self.exit);
        self.cur = self.new_block("dead");
        stop
    }

    /// `break ['label] [expr]` / `continue ['label]`.
    fn handle_jump(&mut self, i: usize, end: usize, is_continue: bool) -> usize {
        self.touch(i);
        let label = match self.file.code.get(i + 1).map(|t| &t.tok) {
            Some(crate::lexer::Tok::Lifetime(name)) => Some(name.clone()),
            _ => None,
        };
        let stop = self.stmt_end(i + 1, end);
        self.walk(i + 1..stop);
        let target = self
            .loops
            .iter()
            .rev()
            .find(|l| label.is_none() || l.label == label)
            .map(|l| if is_continue { l.head } else { l.after });
        let cur = self.cur;
        if let Some(t) = target {
            self.edge(cur, t);
            self.cur = self.new_block("dead");
        }
        // `break 'label` of a labeled *block* has no loop context: leave
        // control linear (conservative merge).
        stop
    }

    /// `let … else { diverging }` — the happy path skips the else block;
    /// the else block must diverge, so it does not rejoin.
    fn handle_let_else(&mut self, i: usize, end: usize) -> usize {
        self.touch(i);
        let brace = if self.file.punct_is(i + 1, '{') {
            i + 1
        } else {
            self.body_brace(i + 1, end)
        };
        if brace >= end {
            return end;
        }
        let close = match_brace(&self.file.code, brace);
        let head = self.cur;
        let els = self.new_block("else");
        self.edge(head, els);
        self.cur = els;
        self.touch(brace);
        self.walk(brace + 1..close.min(end));
        let els_end = self.cur;
        let cont = self.new_block("join");
        self.edge(head, cont);
        // A well-formed let-else body diverges (return/break/panic), so
        // `els_end` is usually a dead block; the edge is harmless then.
        self.edge(els_end, cont);
        self.cur = cont;
        close + 1
    }

    /// `matches!(expr, pattern)` — the second argument is pattern
    /// position, recorded so it never reads as a construction.
    fn handle_matches_macro(&mut self, i: usize, end: usize) -> usize {
        self.touch(i);
        if !self.file.punct_is(i + 2, '(') {
            return i + 1;
        }
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut comma = None;
        while j < end {
            if self.file.punct_is(j, '(')
                || self.file.punct_is(j, '[')
                || self.file.punct_is(j, '{')
            {
                depth += 1;
            } else if self.file.punct_is(j, ')')
                || self.file.punct_is(j, ']')
                || self.file.punct_is(j, '}')
            {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 && self.file.punct_is(j, ',') && comma.is_none() {
                comma = Some(j);
            }
            j += 1;
        }
        if let Some(c) = comma {
            self.macro_pats.push(c + 1..j);
        }
        // The macro's tokens still walk normally (the scrutinee may carry
        // events); only the pattern span is recorded.
        i + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use std::path::PathBuf;

    fn cfg_of(src: &str, name: &str) -> (SourceFile, Cfg, Vec<crate::items::Event>) {
        let f = SourceFile::parse(
            PathBuf::from("crates/core/src/x.rs"),
            "crates/core/src/x.rs".into(),
            src,
        );
        let idx = items::index(&f);
        let fi = idx.fns.iter().position(|i| i.name == name).unwrap();
        let item = &idx.fns[fi];
        let cfg = Cfg::build(&f, item, &item.nested);
        let events = item.events.clone();
        (f, cfg, events)
    }

    fn block_calling(cfg: &Cfg, events: &[crate::items::Event], callee: &str) -> BlockId {
        let ev = events
            .iter()
            .position(
                |e| matches!(&e.kind, crate::items::EventKind::Call { name, .. } if name == callee),
            )
            .unwrap();
        cfg.ev_block[ev]
    }

    #[test]
    fn straight_line_is_one_block_plus_exit() {
        let (_, cfg, events) = cfg_of("fn f() { a(); b(); }", "f");
        let ba = block_calling(&cfg, &events, "a");
        let bb = block_calling(&cfg, &events, "b");
        assert_eq!(ba, bb, "straight-line calls share a block");
        assert!(cfg.blocks[ba].succs.contains(&cfg.exit));
    }

    #[test]
    fn if_else_branches_and_rejoins() {
        let (_, cfg, events) = cfg_of("fn f() { if c() { t(); } else { e(); } j(); }", "f");
        let bt = block_calling(&cfg, &events, "t");
        let be = block_calling(&cfg, &events, "e");
        let bj = block_calling(&cfg, &events, "j");
        let bc = block_calling(&cfg, &events, "c");
        assert_ne!(bt, be);
        assert!(cfg.blocks[bc].succs.contains(&bt));
        assert!(cfg.blocks[bc].succs.contains(&be));
        assert!(cfg.reaches(bt, bj) && cfg.reaches(be, bj));
    }

    #[test]
    fn if_without_else_keeps_the_skip_edge() {
        let (_, cfg, events) = cfg_of("fn f() { if c() { t(); } j(); }", "f");
        let bc = block_calling(&cfg, &events, "c");
        let bj = block_calling(&cfg, &events, "j");
        let bt = block_calling(&cfg, &events, "t");
        assert!(cfg.blocks[bc].succs.contains(&bj), "skip edge");
        assert!(cfg.reaches(bt, bj));
    }

    #[test]
    fn match_arms_do_not_fall_through_the_head() {
        let (_, cfg, events) = cfg_of("fn f(x: u8) { match s() { 1 => a(), _ => b() } j(); }", "f");
        let bs = block_calling(&cfg, &events, "s");
        let ba = block_calling(&cfg, &events, "a");
        let bb = block_calling(&cfg, &events, "b");
        let bj = block_calling(&cfg, &events, "j");
        assert_ne!(ba, bb);
        assert!(cfg.blocks[bs].succs.contains(&ba));
        assert!(cfg.blocks[bs].succs.contains(&bb));
        assert!(
            !cfg.blocks[bs].succs.contains(&bj),
            "matches are exhaustive: no head→join edge"
        );
        assert!(cfg.reaches(ba, bj) && cfg.reaches(bb, bj));
    }

    #[test]
    fn loops_have_back_edges_and_for_has_a_zero_iteration_path() {
        let (_, cfg, events) = cfg_of("fn f(v: &[u8]) { for x in v.items() { a(); } j(); }", "f");
        let ba = block_calling(&cfg, &events, "a");
        let bj = block_calling(&cfg, &events, "j");
        assert!(cfg.reaches(ba, ba), "loop body reaches itself (back-edge)");
        let bi = block_calling(&cfg, &events, "items");
        assert!(
            cfg.path_via(bi, bj, |b| b != ba).is_some(),
            "zero-iteration path skips the body"
        );
    }

    #[test]
    fn return_cuts_the_path_and_question_mark_splits() {
        let (_, cfg, events) = cfg_of(
            "fn f() -> Option<()> { if c() { return None; } a()?; b(); Some(()) }",
            "f",
        );
        let bc = block_calling(&cfg, &events, "c");
        let ba = block_calling(&cfg, &events, "a");
        let bb = block_calling(&cfg, &events, "b");
        assert!(cfg.reaches(bc, cfg.exit));
        assert_ne!(ba, bb, "`?` splits the block");
        assert!(cfg.blocks[ba].succs.contains(&cfg.exit), "`?` may return");
        assert!(cfg.reaches(ba, bb));
    }

    #[test]
    fn break_exits_the_loop() {
        let (_, cfg, events) = cfg_of("fn f() { loop { if c() { break; } a(); } j(); }", "f");
        let bj = block_calling(&cfg, &events, "j");
        let bc = block_calling(&cfg, &events, "c");
        assert!(cfg.reaches(bc, bj), "break reaches the after-loop block");
        let (_, cfg2, events2) = cfg_of("fn g() { loop { a(); } }", "g");
        let ba = block_calling(&cfg2, &events2, "a");
        assert!(
            !cfg2.reaches(ba, cfg2.exit),
            "a loop without break never reaches exit"
        );
    }

    #[test]
    fn let_else_diverges_without_rejoining() {
        let (_, cfg, events) = cfg_of(
            "fn f() { let Some(x) = a() else { e(); return; }; b(); }",
            "f",
        );
        let be = block_calling(&cfg, &events, "e");
        let bb = block_calling(&cfg, &events, "b");
        assert!(cfg.reaches(be, cfg.exit));
        let reach = cfg.reachable();
        assert!(reach[bb], "happy path continues past the let-else");
    }

    #[test]
    fn patterns_are_recorded_and_flagged() {
        let (_, cfg, _) = cfg_of(
            "fn f(p: P) { let q = P::Make { a: 1 }; match p { P::Make { a } => use_it(a), _ => {} } }",
            "f",
        );
        assert!(cfg.pats.len() >= 3, "let + two arms: {:?}", cfg.pats);
        // The arm's `P::Make` is pattern position; the let-initializer's
        // `P::Make` is not.
        let (f2, cfg2, _) = cfg_of(
            "fn g(p: P) { if matches!(p, P::Make { .. }) { h(); } }",
            "g",
        );
        let make_toks: Vec<usize> = (0..f2.code.len())
            .filter(|&i| f2.ident(i) == Some("Make"))
            .collect();
        assert!(make_toks.iter().any(|&t| cfg2.in_pattern(t)));
    }

    #[test]
    fn while_let_condition_reevaluates_in_the_head() {
        let (_, cfg, events) = cfg_of(
            "fn f(it: I) { while let Some(x) = it.step() { a(); } }",
            "f",
        );
        let bs = block_calling(&cfg, &events, "step");
        let ba = block_calling(&cfg, &events, "a");
        assert!(cfg.reaches(ba, bs), "back-edge re-runs the condition");
        assert!(cfg.reaches(bs, cfg.exit));
    }
}
