//! `s4d-lint` CLI. Exit codes: 0 clean, 1 violations, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use s4d_lint::engine;

const USAGE: &str = "\
s4d-lint — static analysis for the S4D-Cache workspace

USAGE:
    s4d-lint --workspace            lint the whole workspace (from its root)
    s4d-lint <path>…                lint specific files or directories
    s4d-lint --format=json          one JSON object per finding on stdout
                                    (summary goes to stderr)
    s4d-lint --list-rules           print the rule catalogue

EXIT CODES:
    0  clean (warnings allowed)
    1  at least one error-severity finding
    2  usage or I/O error

A finding is suppressed only by a justified pragma on or just above its
line:  // s4d-lint: allow(<rule>) — <justification>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for r in s4d_lint::config::RULES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }
    let mut json = false;
    let mut unknown = Vec::new();
    for a in args.iter().filter(|a| a.starts_with("--")) {
        match a.as_str() {
            "--workspace" => {}
            "--format=json" => json = true,
            "--format=human" => json = false,
            _ => unknown.push(a),
        }
    }
    if !unknown.is_empty() {
        eprintln!("unknown option {:?}\n\n{USAGE}", unknown.first());
        return ExitCode::from(2);
    }
    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let paths: Vec<PathBuf> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .collect();
    let result = if paths.is_empty() {
        engine::lint_workspace(&root)
    } else {
        let mut files = Vec::new();
        for p in &paths {
            if p.is_dir() {
                collect(p, &mut files);
            } else {
                files.push(p.clone());
            }
        }
        engine::lint_paths(&root, &files)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("s4d-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let summary = format!(
        "s4d-lint: {} files, {} errors, {} warnings, {} suppressed by pragma",
        report.files,
        report.errors(),
        report.warnings(),
        report.suppressed
    );
    if json {
        // Machine output stays parseable: diagnostics on stdout (one JSON
        // object per line), the human summary on stderr.
        for d in &report.diagnostics {
            println!("{}", d.to_json());
        }
        eprintln!("{summary}");
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!("{summary}");
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn collect(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
