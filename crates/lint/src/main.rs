//! `s4d-lint` CLI. Exit codes: 0 clean, 1 violations, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use s4d_lint::engine;

const USAGE: &str = "\
s4d-lint — static analysis for the S4D-Cache workspace

USAGE:
    s4d-lint --workspace            lint the whole workspace (from its root)
    s4d-lint <path>…                lint specific files or directories
    s4d-lint --format=json          one JSON object per finding on stdout
                                    (summary goes to stderr)
    s4d-lint --list-rules           print the rule catalogue
    s4d-lint --bench[=PATH]         also write analysis cost counters as
                                    JSON (default: BENCH_lint.json)
    s4d-lint --check-budget         also enforce crates/lint/pragma_budget.toml
                                    (pragma-site and pinned-warning ceilings)
                                    and crates/lint/alloc_budget.toml (per-file
                                    hot-path allocation ceilings)

EXIT CODES:
    0  clean (warnings allowed)
    1  at least one error-severity finding
    2  usage or I/O error

A finding is suppressed only by a justified pragma on or just above its
line:  // s4d-lint: allow(<rule>) — <justification>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for r in s4d_lint::config::RULES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }
    let mut json = false;
    let mut bench: Option<PathBuf> = None;
    let mut check_budget = false;
    let mut unknown = Vec::new();
    for a in args.iter().filter(|a| a.starts_with("--")) {
        match a.as_str() {
            "--workspace" => {}
            "--format=json" => json = true,
            "--format=human" => json = false,
            "--bench" => bench = Some(PathBuf::from("BENCH_lint.json")),
            "--check-budget" => check_budget = true,
            other => {
                if let Some(p) = other.strip_prefix("--bench=") {
                    bench = Some(PathBuf::from(p));
                } else {
                    unknown.push(a);
                }
            }
        }
    }
    if !unknown.is_empty() {
        eprintln!("unknown option {:?}\n\n{USAGE}", unknown.first());
        return ExitCode::from(2);
    }
    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let paths: Vec<PathBuf> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .collect();
    let started = std::time::Instant::now();
    let result = if paths.is_empty() {
        engine::lint_workspace(&root)
    } else {
        let mut files = Vec::new();
        for p in &paths {
            if p.is_dir() {
                collect(p, &mut files);
            } else {
                files.push(p.clone());
            }
        }
        engine::lint_paths(&root, &files)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("s4d-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let summary = format!(
        "s4d-lint: {} files, {} errors, {} warnings, {} suppressed by pragma",
        report.files,
        report.errors(),
        report.warnings(),
        report.suppressed
    );
    if json {
        // Machine output stays parseable: diagnostics on stdout (one JSON
        // object per line), the human summary on stderr.
        for d in &report.diagnostics {
            println!("{}", d.to_json());
        }
        eprintln!("{summary}");
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!("{summary}");
    }
    if let Some(path) = bench {
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        // Keys sorted, wall time last: everything before it is
        // deterministic, so diffs of two runs touch exactly one line.
        let body = format!(
            "{{\n  \"alias_facts\": {},\n  \"blocks\": {},\n  \"cycle_checks\": {},\n  \
             \"dataflow_iterations\": {},\n  \"diagnostics\": {},\n  \"edges\": {},\n  \
             \"files\": {},\n  \"functions\": {},\n  \"lock_graph_edges\": {},\n  \
             \"lock_graph_nodes\": {},\n  \"summary_passes\": {},\n  \"suppressed\": {},\n  \
             \"wall_ms\": {wall_ms:.3}\n}}\n",
            report.stats.alias_facts.get(),
            report.stats.blocks,
            report.stats.cycle_checks.get(),
            report.stats.dataflow_iterations.get(),
            report.diagnostics.len(),
            report.stats.edges,
            report.files,
            report.stats.functions,
            report.stats.lock_graph_edges.get(),
            report.stats.lock_graph_nodes.get(),
            report.stats.summary_passes,
            report.suppressed,
        );
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("s4d-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("s4d-lint: bench counters written to {}", path.display());
    }
    if check_budget {
        match budget_gate(&root, &report) {
            Ok(msg) => eprintln!("{msg}"),
            Err(e) => {
                eprintln!("s4d-lint: budget gate FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
        match alloc_gate(&root, &report) {
            Ok(msg) => eprintln!("{msg}"),
            Err(e) => {
                eprintln!("s4d-lint: alloc budget gate FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Enforces `crates/lint/pragma_budget.toml`: the number of pragma sites
/// and pinned warnings may only ratchet down. The file is a flat
/// `key = value` list (hand-parsed — the workspace is dependency-free).
fn budget_gate(root: &std::path::Path, report: &engine::Report) -> Result<String, String> {
    let path = root.join("crates/lint/pragma_budget.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut allow_pragmas: Option<usize> = None;
    let mut pinned_warnings: Option<usize> = None;
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("bad value for `{}` in {}", key.trim(), path.display()))?;
        match key.trim() {
            "allow_pragmas" => allow_pragmas = Some(value),
            "pinned_warnings" => pinned_warnings = Some(value),
            other => return Err(format!("unknown key `{other}` in {}", path.display())),
        }
    }
    let allow = allow_pragmas.ok_or("pragma_budget.toml is missing `allow_pragmas`")?;
    let pinned = pinned_warnings.ok_or("pragma_budget.toml is missing `pinned_warnings`")?;
    if report.pragmas > allow {
        return Err(format!(
            "{} pragma sites exceed the budget of {allow} — remove a pragma (make the \
             code provably safe) or, with review, raise the ceiling in {}",
            report.pragmas,
            path.display()
        ));
    }
    // `hot-alloc` warnings are governed by their own census
    // (alloc_budget.toml); the pinned ceiling covers everything else.
    let pinned_actual = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == s4d_lint::Severity::Warning && d.rule != "hot-alloc")
        .count();
    if pinned_actual > pinned {
        return Err(format!(
            "{pinned_actual} warnings exceed the pinned ceiling of {pinned} — fix the new \
             warning or, with review, raise the ceiling in {}",
            path.display()
        ));
    }
    Ok(format!(
        "s4d-lint: budget gate OK ({}/{allow} pragma sites, {pinned_actual}/{pinned} warnings)",
        report.pragmas,
    ))
}

/// Enforces `crates/lint/alloc_budget.toml`: per-file ceilings on
/// `hot-alloc` findings, plus a `total`. The census may only ratchet
/// down — a hot file above its recorded count fails the gate, and a hot
/// file not in the census at all has a ceiling of zero.
fn alloc_gate(root: &std::path::Path, report: &engine::Report) -> Result<String, String> {
    let path = root.join("crates/lint/alloc_budget.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut total: Option<usize> = None;
    let mut per_file: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("bad value for `{key}` in {}", path.display()))?;
        if key == "total" {
            total = Some(value);
        } else {
            per_file.insert(key.to_string(), value);
        }
    }
    let total = total.ok_or("alloc_budget.toml is missing `total`")?;
    let mut actual: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for d in &report.diagnostics {
        if d.rule != "hot-alloc" {
            continue;
        }
        let rel = d
            .path
            .strip_prefix(root)
            .unwrap_or(&d.path)
            .to_string_lossy()
            .replace('\\', "/");
        *actual.entry(rel).or_insert(0) += 1;
    }
    let actual_total: usize = actual.values().sum();
    for (rel, &n) in &actual {
        let ceiling = per_file.get(rel).copied().unwrap_or(0);
        if n > ceiling {
            return Err(format!(
                "{rel} has {n} hot-path allocation sites, ceiling {ceiling} — remove the \
                 new allocation (reuse a buffer) or, with review, raise its line in {}",
                path.display()
            ));
        }
    }
    if actual_total > total {
        return Err(format!(
            "{actual_total} hot-path allocation sites exceed the total budget of {total} \
             — the census in {} only ratchets down",
            path.display()
        ));
    }
    Ok(format!(
        "s4d-lint: alloc budget gate OK ({actual_total}/{total} hot-path allocation sites)"
    ))
}

fn collect(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
