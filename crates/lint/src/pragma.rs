//! Allow-pragma parsing.
//!
//! A diagnostic is suppressed by an in-source pragma of the form
//!
//! ```text
//! // s4d-lint: allow(rule-id) — justification text
//! ```
//!
//! The justification is **required**: an allow without one is itself a
//! `pragma` violation, as is an allow naming a rule that does not exist —
//! a misspelled rule must never silently suppress anything. Several rules
//! may be allowed at once: `allow(panic, durability) — …`. The separator
//! before the justification is an em-dash `—`, a double hyphen `--`, or
//! a colon `:`.
//!
//! Reach: a pragma on the same line as code covers that line; a pragma on
//! a line of its own covers the next line that contains code (so it can
//! sit above the statement it justifies, including above a short comment
//! block).

use crate::source::SourceFile;

/// One parsed `s4d-lint:` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule ids this pragma allows.
    pub rules: Vec<String>,
    /// Line the pragma comment starts on.
    pub line: u32,
    /// The line range `[from, to]` the pragma covers.
    pub covers: (u32, u32),
    /// Whether a non-empty justification followed the rule list.
    pub justified: bool,
    /// Whether the pragma parsed structurally (`allow(…)` present).
    pub well_formed: bool,
    /// Set by the engine when some diagnostic was actually suppressed.
    pub used: std::cell::Cell<bool>,
}

/// Extracts every pragma from a file's comments.
pub fn pragmas(file: &SourceFile) -> Vec<Pragma> {
    use crate::lexer::Tok;
    let mut out = Vec::new();
    for c in &file.comments {
        let text = match &c.tok {
            Tok::LineComment(t) | Tok::BlockComment(t) => t,
            _ => continue,
        };
        // Doc comments (`///…` lexes as a line comment whose text starts
        // with `/`; `//!` with `!`; `/**`/`/*!` likewise) never carry
        // pragmas — they may *describe* the pragma format.
        if text.starts_with('/') || text.starts_with('!') || text.starts_with('*') {
            continue;
        }
        let Some(at) = text.find("s4d-lint:") else {
            continue;
        };
        let body = text
            .get(at + "s4d-lint:".len()..)
            .unwrap_or_default()
            .trim_start();
        out.push(parse_body(file, body, c.line));
    }
    out
}

fn parse_body(file: &SourceFile, body: &str, line: u32) -> Pragma {
    let mut p = Pragma {
        rules: Vec::new(),
        line,
        covers: cover_range(file, line),
        justified: false,
        well_formed: false,
        used: std::cell::Cell::new(false),
    };
    let Some(rest) = body.strip_prefix("allow") else {
        return p;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return p;
    };
    let Some(close) = rest.find(')') else {
        return p;
    };
    let list = rest.get(..close).unwrap_or_default();
    p.rules = list
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    p.well_formed = !p.rules.is_empty();
    let tail = rest.get(close + 1..).unwrap_or_default().trim_start();
    let justification = ["—", "--", ":"]
        .iter()
        .find_map(|sep| tail.strip_prefix(sep))
        .unwrap_or_default()
        .trim();
    p.justified = !justification.is_empty();
    p
}

/// Computes the lines a pragma at `line` covers: its own line, and — when
/// no code shares that line — every line up to and including the next
/// line that contains code.
fn cover_range(file: &SourceFile, line: u32) -> (u32, u32) {
    if file.code_lines.binary_search(&line).is_ok() {
        return (line, line);
    }
    let next_code = file
        .code_lines
        .iter()
        .find(|&&l| l > line)
        .copied()
        .unwrap_or(file.last_line);
    (line, next_code)
}

impl Pragma {
    /// True when this pragma suppresses `rule` on `line`.
    ///
    /// `allow(panic)` also suppresses `panic-path` on the lines it
    /// covers: the reachability finding anchors at the panic *site*, so
    /// the pragma that justifies the site justifies its reachability —
    /// one justification, both rules, and the pragma stays load-bearing.
    /// `allow(retry)` is the short alias for `unbounded-retry`.
    pub fn suppresses(&self, rule: &str, line: u32) -> bool {
        self.well_formed
            && self.justified
            && self.covers.0 <= line
            && line <= self.covers.1
            && self.rules.iter().any(|r| {
                r == rule
                    || (r == "panic" && rule == "panic-path")
                    || (r == "retry" && rule == "unbounded-retry")
            })
    }
}
