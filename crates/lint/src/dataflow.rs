//! A small worklist dataflow framework over [`crate::cfg::Cfg`]s.
//!
//! Analyses are round-robin fixpoint iterations over block facts:
//!
//! * **forward** — a block's in-fact is the *meet* of its predecessors'
//!   out-facts; the transfer function folds the block's events into the
//!   out-fact. Must-analyses use intersection-like meets ("on every
//!   path"); may-analyses use union-like meets ("on some path").
//! * **backward** — the mirror image over successors, answering "what
//!   will (or may) happen after this block".
//!
//! The meet's identity element (`top`) seeds every block except the
//! boundary one, so unreachable blocks can neither establish nor destroy
//! facts: a must-fact survives a join with dead code, exactly as it
//! survives a join with no code. Facts must be drawn from finite
//! lattices and transfers must be monotone — every analysis here is, so
//! the iteration terminates; a hard cap guards pathological inputs
//! anyway. Iteration counts are reported for the `--bench` cost
//! tracking.

use crate::cfg::{BlockId, Cfg};

/// Result of running one analysis: the per-block *entry* facts (for
/// forward analyses) or *exit* facts (for backward analyses), plus the
/// out-facts on the other side, and the iteration count.
pub struct Solution<F> {
    /// Fact at the block's analysis entry (block start for forward,
    /// block end for backward).
    pub entry: Vec<F>,
    /// Fact at the block's analysis exit (after the transfer).
    pub exit: Vec<F>,
    /// Worklist passes until fixpoint.
    pub iterations: usize,
}

/// Runs a forward analysis. `boundary` seeds the entry block, `top` is
/// the meet identity, `meet` combines predecessor out-facts, and
/// `transfer(block, fact)` produces the block's out-fact from its
/// in-fact.
pub fn forward<F, M, T>(cfg: &Cfg, boundary: F, top: F, meet: M, transfer: T) -> Solution<F>
where
    F: Clone + PartialEq,
    M: Fn(&F, &F) -> F,
    T: Fn(BlockId, &F) -> F,
{
    let preds = cfg.preds();
    solve(
        cfg,
        cfg.entry,
        |b| preds[b].clone(),
        boundary,
        top,
        meet,
        transfer,
    )
}

/// Runs a backward analysis: `boundary` seeds the exit block and facts
/// flow against the edges.
pub fn backward<F, M, T>(cfg: &Cfg, boundary: F, top: F, meet: M, transfer: T) -> Solution<F>
where
    F: Clone + PartialEq,
    M: Fn(&F, &F) -> F,
    T: Fn(BlockId, &F) -> F,
{
    solve(
        cfg,
        cfg.exit,
        |b| cfg.blocks[b].succs.clone(),
        boundary,
        top,
        meet,
        transfer,
    )
}

/// Hard cap on worklist passes — far above any real fixpoint depth (the
/// facts are monotone over finite lattices), present so a pathological
/// input degrades to an imprecise answer instead of a hang.
const MAX_PASSES: usize = 64;

fn solve<F, S, M, T>(
    cfg: &Cfg,
    start: BlockId,
    sources: S,
    boundary: F,
    top: F,
    meet: M,
    transfer: T,
) -> Solution<F>
where
    F: Clone + PartialEq,
    S: Fn(BlockId) -> Vec<BlockId>,
    M: Fn(&F, &F) -> F,
    T: Fn(BlockId, &F) -> F,
{
    let n = cfg.blocks.len();
    let sources: Vec<Vec<BlockId>> = (0..n).map(&sources).collect();
    let mut entry: Vec<F> = vec![top.clone(); n];
    let mut exit: Vec<F> = (0..n).map(|b| transfer(b, &top)).collect();
    entry[start] = boundary;
    exit[start] = transfer(start, &entry[start]);
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut changed = false;
        // Round-robin pass in block order; block ids are roughly
        // topological for forward edges, so forward analyses converge in
        // a handful of passes and back-edges add one more.
        for b in 0..n {
            let mut inc = if b == start {
                entry[start].clone()
            } else {
                top.clone()
            };
            for &s in &sources[b] {
                inc = meet(&inc, &exit[s]);
            }
            let out = transfer(b, &inc);
            if inc != entry[b] || out != exit[b] {
                entry[b] = inc;
                exit[b] = out;
                changed = true;
            }
        }
        if !changed || iterations >= MAX_PASSES {
            break;
        }
    }
    Solution {
        entry,
        exit,
        iterations,
    }
}

/// A must-style boolean meet: the fact holds only if it holds on every
/// incoming edge (`top = true` — the vacuous truth of no paths).
pub fn must_meet(a: &bool, b: &bool) -> bool {
    *a && *b
}

/// A may-style boolean meet: the fact holds if it holds on any incoming
/// edge (`top = false`).
pub fn may_meet(a: &bool, b: &bool) -> bool {
    *a || *b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::items::{self, EventKind};
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn analyzed(src: &str, name: &str) -> (SourceFile, Cfg, Vec<crate::items::Event>) {
        let f = SourceFile::parse(
            PathBuf::from("crates/core/src/x.rs"),
            "crates/core/src/x.rs".into(),
            src,
        );
        let idx = items::index(&f);
        let k = idx.fns.iter().position(|i| i.name == name).unwrap();
        let item = &idx.fns[k];
        let cfg = Cfg::build(&f, item, &item.nested);
        let events = item.events.clone();
        (f, cfg, events)
    }

    /// "Has `mark()` been called on every path?" as a forward must-fact.
    fn must_marked(cfg: &Cfg, events: &[crate::items::Event]) -> Solution<bool> {
        forward(cfg, false, true, must_meet, |b, f| {
            *f || cfg.blocks[b]
                .events
                .iter()
                .any(|&e| matches!(&events[e].kind, EventKind::Call { name, .. } if name == "mark"))
        })
    }

    #[test]
    fn must_fact_dies_at_a_partial_join_and_survives_a_full_one() {
        let (_, cfg, ev) = analyzed("fn f() { if c() { mark(); } use_it(); }", "f");
        let sol = must_marked(&cfg, &ev);
        let use_block = cfg.ev_block[ev
            .iter()
            .position(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "use_it"))
            .unwrap()];
        assert!(!sol.entry[use_block], "marked on only one branch");

        let (_, cfg2, ev2) = analyzed(
            "fn g() { if c() { mark(); } else { mark(); } use_it(); }",
            "g",
        );
        let sol2 = must_marked(&cfg2, &ev2);
        let use2 = cfg2.ev_block[ev2
            .iter()
            .position(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "use_it"))
            .unwrap()];
        assert!(sol2.entry[use2], "marked on both branches");
    }

    #[test]
    fn unreachable_code_does_not_destroy_must_facts() {
        // The dead block after `return` joins the exit without the mark —
        // but it is unreachable, so the must-fact must survive at exit.
        let (_, cfg, ev) = analyzed("fn f() { mark(); return; }", "f");
        let sol = must_marked(&cfg, &ev);
        assert!(sol.entry[cfg.exit], "dead fall-through is no path at all");
    }

    #[test]
    fn backward_may_sees_future_events() {
        // "May `mark()` still happen?" — true before the branch, false
        // in the branch that returns first.
        let (_, cfg, ev) = analyzed("fn f() { if c() { early(); return; } mark(); }", "f");
        let sol = backward(&cfg, false, false, may_meet, |b, f| {
            *f || cfg.blocks[b]
                .events
                .iter()
                .any(|&e| matches!(&ev[e].kind, EventKind::Call { name, .. } if name == "mark"))
        });
        let early = cfg.ev_block[ev
            .iter()
            .position(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "early"))
            .unwrap()];
        let cond = cfg.ev_block[ev
            .iter()
            .position(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "c"))
            .unwrap()];
        assert!(!sol.exit[early], "the early-return path never marks");
        assert!(sol.exit[cond], "some path from the condition marks");
    }

    #[test]
    fn loops_reach_fixpoint_with_bounded_iterations() {
        let (_, cfg, ev) = analyzed(
            "fn f() { for x in xs() { if c() { mark(); } } use_it(); }",
            "f",
        );
        let sol = must_marked(&cfg, &ev);
        let use_block = cfg.ev_block[ev
            .iter()
            .position(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "use_it"))
            .unwrap()];
        assert!(!sol.entry[use_block], "the zero-iteration path never marks");
        assert!(sol.iterations < 10, "small graph, small fixpoint");
    }
}
