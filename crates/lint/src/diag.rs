//! Diagnostics: rule id, location, message, fix hint, severity.

use std::path::PathBuf;

/// How severe a finding is. Errors fail the run; warnings are printed but
/// exit 0 (report-only mode, e.g. determinism findings in test dirs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Printed, does not affect the exit code.
    Warning,
    /// Fails the run.
    Error,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Rule id (what an allow-pragma must name to suppress it).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// Error or warning.
    pub severity: Severity,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{}:{}: {sev}[{}] {}\n    hint: {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message,
            self.hint
        )
    }
}
