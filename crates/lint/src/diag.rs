//! Diagnostics: rule id, location, message, fix hint, severity, and (for
//! interprocedural findings) the witness call chain.

use std::path::PathBuf;

/// How severe a finding is. Errors fail the run; warnings are printed but
/// exit 0 (report-only mode, e.g. determinism findings in test dirs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Printed, does not affect the exit code.
    Warning,
    /// Fails the run.
    Error,
}

impl Severity {
    /// The lowercase label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Rule id (what an allow-pragma must name to suppress it).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Witness call chain for interprocedural findings, outermost caller
    /// first, each step rendered as `file:line fn name`. Empty for
    /// single-function findings.
    pub chain: Vec<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}] {}",
            self.path.display(),
            self.line,
            self.severity.label(),
            self.rule,
            self.message,
        )?;
        for (k, step) in self.chain.iter().enumerate() {
            let label = if k == 0 { "via" } else { "   " };
            write!(f, "\n    {label}: {step}")?;
        }
        write!(f, "\n    hint: {}", self.hint)
    }
}

impl Diagnostic {
    /// Renders the finding as one JSON object (the `--format=json` line
    /// format): `file`, `line`, `rule`, `severity`, `message`, `hint`,
    /// and `chain` (array of rendered steps, present even when empty).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"file\":{}",
            json_str(&self.path.display().to_string())
        ));
        out.push_str(&format!(",\"line\":{}", self.line));
        out.push_str(&format!(",\"rule\":{}", json_str(self.rule)));
        out.push_str(&format!(
            ",\"severity\":{}",
            json_str(self.severity.label())
        ));
        out.push_str(&format!(",\"message\":{}", json_str(&self.message)));
        out.push_str(&format!(",\"hint\":{}", json_str(self.hint)));
        out.push_str(",\"chain\":[");
        for (k, step) in self.chain.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&json_str(step));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes `s` as a JSON string literal (the linter is dependency-free,
/// so the escaping is done by hand; control characters use `\u00XX`).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_includes_every_field() {
        let d = Diagnostic {
            path: PathBuf::from("crates/core/src/a.rs"),
            line: 7,
            rule: "durability",
            message: "a \"quoted\"\nmessage".to_string(),
            hint: "fix it",
            severity: Severity::Error,
            chain: vec!["crates/core/src/a.rs:7 fn top".to_string()],
        };
        let j = d.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"file\":\"crates/core/src/a.rs\""));
        assert!(j.contains("\"line\":7"));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\\\"quoted\\\"\\nmessage"));
        assert!(j.contains("\"chain\":[\"crates/core/src/a.rs:7 fn top\"]"));
    }

    #[test]
    fn display_renders_chain_steps() {
        let d = Diagnostic {
            path: PathBuf::from("a.rs"),
            line: 1,
            rule: "panic-path",
            message: "m".to_string(),
            hint: "h",
            severity: Severity::Warning,
            chain: vec!["a.rs:1 fn f".to_string(), "b.rs:2 fn g".to_string()],
        };
        let s = d.to_string();
        assert!(s.contains("via: a.rs:1 fn f"));
        assert!(s.contains("b.rs:2 fn g"));
        assert!(s.ends_with("hint: h"));
    }
}
