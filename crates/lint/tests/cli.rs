//! CLI contract tests: exit codes and the `--format=json` output.
//!
//! Exit codes are part of the tool's CI interface: 0 clean (warnings
//! allowed), 1 at least one error-severity finding, 2 usage or I/O
//! error. JSON mode emits one object per finding on stdout and keeps the
//! human summary on stderr, so the stdout stream stays machine-parseable.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_s4d-lint"))
}

/// A scratch directory holding one seeded-violation file laid out as a
/// `crates/<name>/src` tree, so crate scoping applies.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str, rel: &str, src: &str) -> Scratch {
        let root = std::env::temp_dir().join(format!("s4d-lint-cli-{tag}-{}", std::process::id()));
        let file = root.join(rel);
        std::fs::create_dir_all(file.parent().unwrap()).unwrap();
        std::fs::write(&file, src).unwrap();
        Scratch { root }
    }

    fn run(&self, args: &[&str]) -> Output {
        bin()
            .current_dir(&self.root)
            .args(args)
            .output()
            .expect("spawn s4d-lint")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn exit_zero_on_a_clean_tree() {
    let s = Scratch::new(
        "clean",
        "crates/core/src/ok.rs",
        "pub fn fine(x: u32) -> u32 { x + 1 }\n",
    );
    let out = s.run(&["--workspace"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn exit_one_on_an_error_finding() {
    let s = Scratch::new(
        "dirty",
        "crates/core/src/bad.rs",
        "pub fn bad(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let out = s.run(&["--workspace"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[panic]"), "{stdout}");
}

#[test]
fn exit_two_on_usage_and_io_errors() {
    let s = Scratch::new("usage", "crates/core/src/ok.rs", "pub fn fine() {}\n");
    let out = s.run(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2), "unknown option: {out:?}");
    let out = bin()
        .current_dir(std::env::temp_dir())
        .arg("no/such/file.rs")
        .output()
        .expect("spawn s4d-lint");
    assert_eq!(out.status.code(), Some(2), "unreadable path: {out:?}");
}

#[test]
fn json_format_emits_one_parseable_object_per_finding() {
    let s = Scratch::new(
        "json",
        "crates/core/src/bad.rs",
        "pub fn bad(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let out = s.run(&["--workspace", "--format=json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "at least one finding: {stdout}");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each stdout line is one JSON object: {line}"
        );
        for key in [
            "\"file\":",
            "\"line\":",
            "\"rule\":",
            "\"severity\":",
            "\"message\":",
            "\"hint\":",
            "\"chain\":",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
    // The human summary moves to stderr in JSON mode.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("s4d-lint:"), "summary on stderr: {stderr}");
    assert!(
        !stdout.lines().any(|l| l.starts_with("s4d-lint:")),
        "stdout stays pure JSON (no summary line)"
    );
}

#[test]
fn json_chain_is_populated_for_interprocedural_findings() {
    let root = std::env::temp_dir().join(format!("s4d-lint-cli-chain-{}", std::process::id()));
    let dir = root.join("crates/core/src");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("caller.rs"),
        "pub fn evict_then_log(c: &mut C, j: &mut J) {\n    drop_extent(c);\n    append_journal_sync(j, &[]);\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("helper.rs"),
        "pub fn drop_extent(c: &mut C) {\n    fuse_consume(CrashSite::Evict, 4096);\n    c.discard(1, 0, 4096);\n}\n",
    )
    .unwrap();
    let out = bin()
        .current_dir(&root)
        .args(["--workspace", "--format=json"])
        .output()
        .expect("spawn s4d-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let _ = std::fs::remove_dir_all(&root);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    let durability: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("\"rule\":\"durability\""))
        .collect();
    assert_eq!(durability.len(), 1, "{stdout}");
    assert!(
        durability[0].contains("\"chain\":[\"crates/core/src/caller.rs:"),
        "chain names the caller first: {}",
        durability[0]
    );
    assert!(
        durability[0].contains("helper.rs:"),
        "chain descends into the helper: {}",
        durability[0]
    );
}

#[test]
fn list_rules_includes_the_interprocedural_family() {
    let out = bin().arg("--list-rules").output().expect("spawn s4d-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "durability",
        "lock-graph",
        "lock-across-io",
        "panic",
        "panic-path",
        "shard-affinity",
        "async-ready",
        "hot-alloc",
    ] {
        assert!(
            stdout.lines().any(|l| l == rule),
            "missing {rule}: {stdout}"
        );
    }
}

#[test]
fn human_output_renders_the_witness_chain() {
    let s = Scratch::new(
        "chain-human",
        "crates/core/src/caller.rs",
        "pub fn evict_then_log(c: &mut C, j: &mut J) {\n    drop_extent(c);\n    append_journal_sync(j, &[]);\n}\n\
         pub fn drop_extent(c: &mut C) {\n    fuse_consume(CrashSite::Evict, 4096);\n    c.discard(1, 0, 4096);\n}\n",
    );
    let out = s.run(&["--workspace"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("via: "), "chain rendered: {stdout}");
    assert!(stdout.contains("fn drop_extent"), "{stdout}");
}

// Appease the unused-helper lint when individual tests are filtered out.
#[allow(dead_code)]
fn _keep(_: &Path) {}
