//! Flow-sensitivity fixture (violating half): the discard is hidden on
//! one `match` arm while the journal append only happens after the join.
//! A path through `Plan::Eager` reaches the discard with nothing
//! appended — the flow-sensitive must-analysis catches it and reports
//! that path; a lexical scanner that only sees "an append exists in this
//! function" would not.

pub fn evict_with_arm_hidden_discard(c: &mut Cache, j: &mut Journal) {
    fuse_consume(CrashSite::Evict, 4096);
    match plan() {
        Plan::Eager => {
            c.discard(1, 0, 4096);
        }
        Plan::Batch => {
            note_deferred();
        }
    }
    append_journal_sync(j, &[]);
}
