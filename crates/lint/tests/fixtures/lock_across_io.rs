//! Fixture: device I/O issued while a declared lock may be held.
//! Seeded violation — trips exactly `lock-across-io`.

/// Flushes every record while still holding the `records` guard.
pub fn flush_all(store: &Store) {
    let records = store.records.lock();
    for r in records.iter() {
        submit(r);
    }
}
