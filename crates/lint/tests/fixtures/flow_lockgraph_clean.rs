//! Lock-graph fixture (clean half): the two guards live on *sibling*
//! `match` arms, so neither is ever held while the other is acquired —
//! no `records -> wal` edge exists, and the one real edge
//! (`wal -> records` in the second function) forms no cycle. The old
//! lexical "rest of the body" extent would have fabricated the reverse
//! edge and reported a phantom deadlock; the CFG-grounded graph is
//! clean without a pragma.

pub fn tally_or_scan(s: &Server) {
    match s.mode {
        Mode::Count => {
            let rec_guard = s.records.lock();
            tally(&rec_guard);
        }
        Mode::Flush => {
            let wal_guard = s.wal.lock();
            scan(&wal_guard);
        }
    }
}

pub fn drain_then_tally(s: &Server) {
    let wal_guard = s.wal.lock();
    let rec_guard = s.records.lock();
    merge(&wal_guard, &rec_guard);
}
