//! Seeded cross-function violation — helper half of the panic pair.
//!
//! Panics on out-of-range input. This file is placed in the `sim`
//! crate, *outside* the panic-free crates, so the lexical `panic` rule
//! ignores it entirely — only reachability from a middleware public API
//! root makes the site a finding.

/// Returns the `k`-th weight. Panics when `k` is out of range.
pub fn weighted_pick(weights: &[u64], k: usize) -> u64 {
    weights[k]
}
