//! Seeded cross-function violation — helper half of the durability pair.
//!
//! Discards a cached extent without making the Remove record durable:
//! that obligation is left to the caller. Linted *alone* this file is
//! clean — it never references a journal primitive, so the per-file
//! durability rule (the pre-interprocedural analyzer) has no reason to
//! look at it. Only the effect summary (`exposed_discard`) carries the
//! obligation across the call edge.

/// Frees the bytes of one cached extent. The crash fuse is charged, so
/// the effect itself is gated — but nothing here appends the Remove.
pub fn drop_extent(cache: &mut CachedPfs) {
    fuse_consume(CrashSite::EvictDiscard, EXTENT_BYTES);
    cache.discard(FILE_A, 0, EXTENT_BYTES);
}
