//! Flow-sensitivity fixture (violating half): the staged `Pending`
//! action is handed to the scheduler on one `match` arm only — the
//! `Mode::Idle` path drops it, silently abandoning the plan's
//! obligations. The typestate must-analysis reports that path.

pub fn stage_with_leaky_arm(bg: &mut Background) {
    let act = Pending::Fetch {
        file: 1,
        offset: 0,
        len: 4096,
    };
    match bg.mode {
        Mode::Busy => {
            bg.register(act);
        }
        Mode::Idle => {
            note_idle(bg);
        }
    }
}
