//! Flow-sensitivity fixture (violating half): the guard is taken before
//! the `match` and the device I/O hides on one arm — that arm is
//! reachable from the acquisition, so the hold is real there and the
//! lint fires.

pub fn poll_with_io_under_guard(s: &Server) {
    let g = s.records.lock();
    match s.mode {
        Mode::Flush => {
            read_bytes(&g, 0, 4096);
        }
        Mode::Idle => {
            touch_stat(s);
        }
    }
}
