//! Seeded cross-function violation — helper half of the retry pair.
//!
//! Naked retry dispatch: fires one more retry of the op with no
//! attempt count or budget of its own. No loop here, so this file
//! alone is silent; the caller's loop is what makes it unbounded.

/// Pops the next failed op and fires one more retry of it.
pub fn drive_next(q: &mut Queue) {
    if let Some(op) = q.pop_failed() {
        fire_retry(op);
    }
}
