//! Flow-sensitivity fixture (clean half): every arm of the `match`
//! appends before the join, so the discard after the join is covered on
//! *every* path — the must-analysis joins to "appended" and the function
//! lints clean without any pragma. A per-arm or path-insensitive
//! analysis cannot establish this.

pub fn evict_with_per_arm_append(c: &mut Cache, j: &mut Journal) {
    fuse_consume(CrashSite::Evict, 4096);
    match plan() {
        Plan::Eager => {
            append_journal_sync(j, &[]);
        }
        Plan::Batch => {
            append_journal_sync(j, &[1]);
        }
    }
    c.discard(1, 0, 4096);
}
