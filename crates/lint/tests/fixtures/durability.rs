//! Fixture: a durable effect not gated by a crash-fuse charge.
//! Seeded violation — trips exactly `durability`.

/// Evicts an extent: journals the removal, then discards the bytes —
/// without charging the crash fuse first, so the torture matrix can
/// never crash inside the discard.
pub fn evict(cpfs: &mut Cpfs, file: FileId, off: u64, len: u64) {
    append_journal_sync(&[remove_record(file, off, len)]);
    cpfs.discard(file, off, len);
}
