//! Shard-discipline fixture (clean half): the same mutation routed
//! through the shard plane's API, plus a raw *read* — reads do not move
//! state between shards and are not findings. Must lint clean without a
//! pragma.

pub fn routed_insert(plane: &mut MetadataPlane, dmt: &Dmt, file: FileId) {
    // Reads on a raw component are fine; only mutations are disciplined.
    let _ = dmt.view(file, 0, 4096);
    // The routed path: the plane derives the owning shard from the d-key.
    plane.insert(file, 0, 4096, FileId(9), 0, true);
}
