//! Seeded cross-function violation — caller half of the lock pair.
//!
//! Holds the trace-record guard across a call into
//! `xfn_lock_helper.rs`, whose body performs device I/O. Neither file
//! shows both the acquisition and the I/O, so the per-file rule misses
//! the hold; the callee's `device_io` summary bit is what trips
//! `lock-across-io` here, with the witness chain pointing into the
//! helper.

/// Flushes the trace buffer — while still holding its guard.
pub fn flush_trace(tracer: &Tracer, dev: &mut Device) {
    let guard = tracer.records.lock();
    emit_records(&guard, dev);
}
