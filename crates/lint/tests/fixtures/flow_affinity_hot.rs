//! Shard-affinity fixture (violating half): the shard index starts as a
//! caller-chosen fallback and is router-derived only on one `match` arm.
//! On the other arm the stale fallback reaches `shard_mut(…)` — exactly
//! the cross-shard touch that becomes a data race under per-shard tasks.
//! The must-routed dataflow catches the unrouted path and names it.

pub fn reroute_seal(p: &mut MetadataPlane, file: FileId, off: u64, alt: usize) {
    let mut idx = alt;
    match off % 2 {
        0 => {
            idx = p.router.shard_of(file, off);
        }
        _ => {
            note_skip(p);
        }
    }
    p.shard_mut(idx).dmt.apply_seal(file, off);
}
