//! Seeded cross-function violation — helper half of the lock pair.
//!
//! Performs device I/O. No lock is visible in this file, so the per-file
//! lock rule (the pre-interprocedural analyzer) finds nothing here; the
//! `device_io` effect summary is what lets the caller's held guard see
//! this call.

/// Writes the collected records out through the device queue.
pub fn emit_records(records: &RecordBuf, dev: &mut Device) {
    submit(dev, records);
}
