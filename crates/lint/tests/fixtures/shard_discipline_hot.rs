//! Shard-discipline fixture (violating half): a pipeline helper mutates
//! the raw DMT directly instead of routing through the shard plane. The
//! insert lands in whatever `Dmt` the caller handed over — the owning
//! shard's router never sees it, so the mutation silently breaks the
//! shard-count-invariance guarantee (DESIGN.md §15).

pub fn sneak_insert_past_the_router(dmt: &mut Dmt, file: FileId) {
    // One raw mutator call: exactly one `shard-discipline` finding.
    dmt.insert(file, 0, 4096, FileId(9), 0, true);
}
