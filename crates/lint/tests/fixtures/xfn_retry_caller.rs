//! Seeded cross-function violation — caller half of the retry pair.
//!
//! A dispatch loop that re-drives failed work forever, with no
//! iteration cap, attempt counter, or budget check. The helper's name
//! says nothing about retrying, so this file alone is silent to the
//! `unbounded-retry` rule; only resolving the call and seeing the
//! helper's retry dispatch makes the loop a finding.

/// Drains the failed-op queue, re-driving entries until it is empty.
pub fn drain_failed(q: &mut Queue) {
    loop {
        if q.is_empty() {
            break;
        }
        drive_next(q);
    }
}
