//! Flow-sensitivity fixture (clean half): the guard lives on one `match`
//! arm and the device I/O on the *sibling* arm. The acquisition's block
//! never reaches the I/O's block, so the guard is provably not held
//! there — clean without a pragma. The pre-CFG extent rule ("rest of the
//! body") would have demanded one.

pub fn poll_with_sibling_arm_io(s: &Server) {
    match s.mode {
        Mode::Count => {
            let g = s.records.lock();
            tally(&g);
        }
        Mode::Flush => {
            read_bytes(s, 0, 4096);
        }
    }
}
