//! Group-commit ordering fixture (violating half): the batched
//! `journal_op` is planned on one `match` arm, then a `data_op` is
//! planned after the join. The path through `Mode::Batched` makes the
//! mapping record durable before its cache bytes exist — the
//! flow-sensitive data-before-metadata check catches the arm-hidden
//! ordering; a lexical scan of "journal_op appears after data_op in the
//! source" would not (source order here is journal first).

pub fn build_plan_with_late_data_phase(plan: &mut Plan) {
    match admit_mode() {
        Mode::Batched => {
            journal_op(plan, &[]);
        }
        Mode::Direct => {
            note_direct_admit();
        }
    }
    data_op(plan, 1, 0, 4096);
}
