//! Fixture: unordered map built and drained in a serialization path.
//! Seeded violation — trips exactly `ordered-iter`.

/// Emits counters in map-iteration order — nondeterministic bytes.
pub fn serialize_counters(items: &[(u32, u32)]) -> Vec<u32> {
    let mut map = std::collections::HashMap::new();
    for (k, v) in items {
        map.insert(*k, *v);
    }
    map.values().copied().collect()
}
