//! Flow-sensitivity fixture (clean half): every `match` arm consumes the
//! staged `Pending` action exactly once — one registers it, the other
//! chains it behind an in-flight tag. No path leaks it and no path can
//! see it twice (the arms are siblings), so the function lints clean
//! without a pragma.

pub fn stage_with_per_arm_consume(bg: &mut Background) {
    let act = Pending::Fetch {
        file: 1,
        offset: 0,
        len: 4096,
    };
    match bg.mode {
        Mode::Busy => {
            bg.register(act);
        }
        Mode::Idle => {
            bg.chain(7, act);
        }
    }
}
