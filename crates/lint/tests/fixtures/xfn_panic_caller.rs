//! Seeded cross-function violation — caller half of the panic pair.
//!
//! A public middleware API function (`core` crate) that calls straight
//! into the sim-crate helper's panicking body. This file contains no
//! panic site of its own, so the lexical `panic` rule passes it; the
//! `panic-path` reachability pass is what connects the public root to
//! the helper's indexing site and reports the full call chain.

/// Picks the eviction victim with the highest weight — via a helper
/// that panics on empty input.
pub fn pick_victim(weights: &[u64]) -> u64 {
    weighted_pick(weights, 0)
}
