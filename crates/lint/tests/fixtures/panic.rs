//! Fixture: `.unwrap()` in middleware library code.
//! Seeded violation — trips exactly `panic`.

/// First element, panicking on empty input.
pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}
