//! Fixture: wall-clock read in a deterministic crate.
//! Seeded violation — trips exactly `determinism`.

/// Timestamp helper that leaks host time into the simulation.
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
