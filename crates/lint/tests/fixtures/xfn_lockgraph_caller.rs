//! Seeded cross-function violation — caller half of the lock-graph pair.
//!
//! `flush_records` holds the `records` guard across a call into
//! `xfn_lockgraph_helper.rs`, whose `merge_wal` acquires `wal`; the
//! helper's `reindex` holds `wal` across a call back into this file's
//! `count_records`, which acquires `records`. Each file alone shows at
//! most one lock per hold, so the per-file view is silent; the computed
//! lock-acquisition graph sees both edges through the callee `acquires`
//! summaries and reports the `records -> wal -> records` cycle with the
//! per-edge witness chains.

/// Flushes the trace records — while still holding their guard.
pub fn flush_records(t: &Tracer) {
    let rec_guard = t.records.lock();
    merge_wal(t, &rec_guard);
}

/// Counts the records; called by the helper with the WAL guard held.
pub fn count_records(t: &Tracer, wal: &WalBuf) {
    let rec_guard = t.records.lock();
    count(&rec_guard, wal);
}
