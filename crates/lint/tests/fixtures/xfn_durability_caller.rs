//! Seeded cross-function violation — caller half of the durability pair.
//!
//! Evicts via the helper *before* appending the Remove records: the
//! discard lives in `xfn_durability_helper.rs`, the append lives here,
//! and each file is lexically clean on its own. Only the call-graph
//! analysis connects them — the helper's exposed discard precedes this
//! function's journal append on the expanded path, which is exactly the
//! ordering DESIGN.md §9 forbids (recovery would map freed space).

/// Evicts one extent, then logs the removal — the wrong way round.
pub fn evict_then_log(cache: &mut CachedPfs, journal: &mut Journal) {
    drop_extent(cache);
    append_journal_sync(journal, &[]);
}
