//! Seeded cross-function violation — helper half of the lock-graph pair.
//!
//! `merge_wal` acquires `wal` (called from the caller half with
//! `records` held: edge `records -> wal`); `reindex` holds `wal` across
//! a call into the caller half's `count_records`, which acquires
//! `records` (edge `wal -> records`). No single file shows a cycle.

/// Merges the WAL into the record buffer.
pub fn merge_wal(t: &Tracer, rec: &RecordBuf) {
    let wal_guard = t.wal.lock();
    blend(&wal_guard, rec);
}

/// Rebuilds the WAL index — while still holding the WAL guard.
pub fn reindex(t: &Tracer) {
    let wal_guard = t.wal.lock();
    count_records(t, &wal_guard);
}
