//! Shard-affinity fixture (clean half): every access is routed — the
//! index is router-derived *before* the branch (so it dominates the
//! mutation on every path), a parameter index is routed by contract, and
//! a destructured all-shards sweep is routed by construction. Clean
//! without a pragma.

pub fn reroute_seal_routed(p: &mut MetadataPlane, file: FileId, off: u64) {
    let idx = p.router.shard_of(file, off);
    match off % 2 {
        0 => {
            note_even(p);
        }
        _ => {
            note_odd(p);
        }
    }
    p.shard_mut(idx).dmt.apply_seal(file, off);
}

pub fn seal_on(p: &mut MetadataPlane, shard: usize, file: FileId, off: u64) {
    p.shard_mut(shard).dmt.apply_seal(file, off);
}

pub fn sweep_all(p: &mut MetadataPlane, file: FileId) {
    for (i, shard) in p.shards_mut().enumerate() {
        shard.dmt.remove(file, i as u64);
    }
}
