//! Fixture: a lock acquisition outside the declared lock-order table.
//! Seeded violation — trips exactly `lock-order`.

/// Holder of a lock the table does not declare.
pub struct Holder {
    /// An undeclared side lock.
    pub side_table: parking_lot::Mutex<u32>,
}

/// Reads through the undeclared lock.
pub fn peek(h: &Holder) -> u32 {
    let table = &h.side_table;
    *table.lock()
}
