//! Async-readiness fixture (violating half): a public middleware entry
//! point takes the record guard, then — on one `match` arm — issues an
//! `sync_all` with the guard still held. On the future tokio service
//! surface that stalls the executor thread *and* every task contending
//! on the lock. The arm is reachable from the acquisition, so hiding
//! the fsync on a branch does not help.

pub fn settle_and_sync(s: &mut Server) {
    let rec_guard = s.records.lock();
    match s.mode {
        Mode::Flush => {
            s.dev.sync_all();
        }
        Mode::Idle => {
            tally(&rec_guard);
        }
    }
}
