//! Hot-alloc fixture (violating half): a pipeline helper allocates a
//! fresh scratch vector on one `match` arm. In a hot module every such
//! site is a malloc in the latency-critical window — one `hot-alloc`
//! finding, counted against the census in alloc_budget.toml.

pub fn plan_segments(p: &mut Planner, req: &Request) {
    match req.kind {
        Kind::Large => {
            p.scratch = vec![0u8; 4096];
        }
        Kind::Small => {
            note_small(p, req);
        }
    }
}
