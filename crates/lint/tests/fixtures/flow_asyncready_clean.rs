//! Async-readiness fixture (clean half): the guard lives on one `match`
//! arm and the `sync_all` on the *sibling* arm — the acquisition's block
//! never reaches the fsync's block, so the lock is provably not held
//! across the blocking call. Clean without a pragma; a lexical
//! rest-of-body extent would have flagged it.

pub fn settle_or_sync(s: &mut Server) {
    match s.mode {
        Mode::Count => {
            let rec_guard = s.records.lock();
            tally(&rec_guard);
        }
        Mode::Flush => {
            s.dev.sync_all();
        }
    }
}
