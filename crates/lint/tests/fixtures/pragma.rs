//! Fixture: an allow pragma naming a rule that does not exist.
//! Seeded violation — trips exactly `pragma` (and suppresses nothing).

/// Halves a value, with a misspelled allow above the division.
pub fn half(x: u32) -> u32 {
    // s4d-lint: allow(panics) — misspelled rule id must be reported, not honored
    x / 2
}
