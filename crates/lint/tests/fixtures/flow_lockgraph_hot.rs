//! Lock-graph fixture (violating half): one function takes `wal` and —
//! on one `match` arm only — acquires `records` under it; another takes
//! them in the opposite order. The computed acquisition graph gets both
//! edges (`wal -> records` and `records -> wal`) and reports the cycle;
//! hiding one edge on a branch does not help, because the arm is
//! reachable from the acquisition.

pub fn drain_then_tally(s: &Server) {
    let wal_guard = s.wal.lock();
    match s.mode {
        Mode::Flush => {
            let rec_guard = s.records.lock();
            tally(&wal_guard, &rec_guard);
        }
        Mode::Idle => {
            touch_stat(s);
        }
    }
}

pub fn tally_then_drain(s: &Server) {
    let rec_guard = s.records.lock();
    let wal_guard = s.wal.lock();
    merge(&rec_guard, &wal_guard);
}
