//! Group-commit ordering fixture (clean half): every data phase is
//! planned before the `match`, and the batched `journal_op` is the final
//! phase on the arm that batches. No path plans data after the journal
//! op, so the function lints clean without a pragma — the group-commit
//! admission shape (data phases first, one coalesced journal write last)
//! is exactly this.

pub fn build_plan_with_final_journal_phase(plan: &mut Plan) {
    data_op(plan, 1, 0, 4096);
    match admit_mode() {
        Mode::Batched => {
            journal_op(plan, &[]);
        }
        Mode::Direct => {
            note_direct_admit();
        }
    }
}
