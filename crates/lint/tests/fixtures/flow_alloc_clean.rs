//! Hot-alloc fixture (clean half): the same shape reuses the buffer the
//! planner already owns — clear + extend, no allocation once the buffer
//! has reached its high-water capacity. Clean without a pragma; this is
//! the rewrite the rule's hint asks for (ROADMAP item 2).

pub fn plan_segments_reused(p: &mut Planner, req: &Request) {
    match req.kind {
        Kind::Large => {
            p.scratch.clear();
            p.scratch.extend_from_slice(&req.header);
        }
        Kind::Small => {
            note_small(p, req);
        }
    }
}
