//! Fixture self-tests: each seeded-violation fixture under
//! `tests/fixtures/` trips exactly its intended rule, pragmas suppress
//! only with a correct rule id and justification, and determinism
//! findings downgrade to warnings in test code.
//!
//! Fixtures are never compiled (cargo only builds top-level `tests/*.rs`)
//! and the workspace walk skips `fixtures/` directories, so the seeded
//! violations cannot leak into a real lint run. Each fixture is parsed
//! with a *forced* workspace-relative path so it lands in the crate scope
//! its rule targets.
//!
//! The `xfn_*` pairs exercise the interprocedural analyzer: each pair
//! splits one violation across two functions in two files. Linting
//! either file *alone* reproduces what the pre-interprocedural, per-file
//! analyzer could see — and must be silent; linting the pair as one
//! analysis scope must produce exactly the pair's rule, with a witness
//! call chain. Both directions are asserted.

use std::path::Path;

use s4d_lint::{engine, Severity, SourceFile};

/// Parses fixture sources as if they lived at their `rel` paths inside
/// the workspace, and lints them as one analysis scope.
fn lint_fixture_set(sources: &[(&str, &str)]) -> engine::Report {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(src, rel)| SourceFile::parse(Path::new(rel).to_path_buf(), rel.to_string(), src))
        .collect();
    engine::lint_files(&files)
}

/// Parses one fixture as if it lived at `rel` inside the workspace.
fn lint_fixture_src(src: &str, rel: &str) -> engine::Report {
    lint_fixture_set(&[(src, rel)])
}

fn fixture_source(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lint_fixture(name: &str, rel: &str) -> engine::Report {
    lint_fixture_src(&fixture_source(name), rel)
}

/// `(fixture file, forced rel path, rule that must fire)`. The rel path
/// places each fixture in the narrowest crate scope its rule targets, so
/// a finding from any *other* rule fails the exactness assertion.
const CASES: &[(&str, &str, &str)] = &[
    ("determinism.rs", "crates/sim/src/fixture.rs", "determinism"),
    (
        "ordered_iter.rs",
        "crates/sim/src/fixture.rs",
        "ordered-iter",
    ),
    ("panic.rs", "crates/pfs/src/fixture.rs", "panic"),
    (
        "lock_across_io.rs",
        "crates/sim/src/fixture.rs",
        "lock-across-io",
    ),
    ("durability.rs", "crates/core/src/fixture.rs", "durability"),
    ("pragma.rs", "crates/sim/src/fixture.rs", "pragma"),
];

#[test]
fn each_fixture_trips_exactly_its_rule() {
    for &(name, rel, rule) in CASES {
        let report = lint_fixture(name, rel);
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            vec![rule],
            "{name}: expected exactly one `{rule}` finding, got {:?}",
            report.diagnostics
        );
        assert_eq!(report.suppressed, 0, "{name}: nothing may be suppressed");
    }
}

/// The cross-function pairs: `(caller fixture, caller rel, helper
/// fixture, helper rel, rule that must fire on the pair, severity)`.
const XFN_CASES: &[(&str, &str, &str, &str, &str, Severity)] = &[
    (
        "xfn_durability_caller.rs",
        "crates/core/src/xfn_caller.rs",
        "xfn_durability_helper.rs",
        "crates/core/src/xfn_helper.rs",
        "durability",
        Severity::Error,
    ),
    (
        "xfn_lock_caller.rs",
        "crates/sim/src/xfn_caller.rs",
        "xfn_lock_helper.rs",
        "crates/sim/src/xfn_helper.rs",
        "lock-across-io",
        Severity::Error,
    ),
    (
        "xfn_panic_caller.rs",
        "crates/core/src/xfn_caller.rs",
        "xfn_panic_helper.rs",
        "crates/sim/src/xfn_helper.rs",
        "panic-path",
        Severity::Warning,
    ),
    (
        "xfn_retry_caller.rs",
        "crates/mpiio/src/xfn_caller.rs",
        "xfn_retry_helper.rs",
        "crates/mpiio/src/xfn_helper.rs",
        "unbounded-retry",
        Severity::Warning,
    ),
    (
        "xfn_lockgraph_caller.rs",
        "crates/sim/src/xfn_caller.rs",
        "xfn_lockgraph_helper.rs",
        "crates/sim/src/xfn_helper.rs",
        "lock-graph",
        Severity::Error,
    ),
];

/// Branch-sensitivity pairs, one per flow-sensitive rule family:
/// `(hot fixture, clean fixture, forced rel path, rule)`. The *hot* half
/// hides its violation on one `match` arm and must be caught; the
/// *clean* half has the correct branch-guarded ordering and must lint
/// clean **without a pragma** — the same shapes a path-insensitive
/// analysis either misses or over-flags.
const FLOW_CASES: &[(&str, &str, &str, &str)] = &[
    (
        "flow_durability_hot.rs",
        "flow_durability_clean.rs",
        "crates/core/src/fixture.rs",
        "durability",
    ),
    (
        "flow_locks_hot.rs",
        "flow_locks_clean.rs",
        "crates/sim/src/fixture.rs",
        "lock-across-io",
    ),
    (
        "flow_typestate_hot.rs",
        "flow_typestate_clean.rs",
        "crates/core/src/fixture.rs",
        "typestate",
    ),
    (
        "flow_group_commit_hot.rs",
        "flow_group_commit_clean.rs",
        "crates/core/src/fixture.rs",
        "durability",
    ),
    (
        "flow_affinity_hot.rs",
        "flow_affinity_clean.rs",
        "crates/core/src/shard/plane.rs",
        "shard-affinity",
    ),
    (
        "flow_lockgraph_hot.rs",
        "flow_lockgraph_clean.rs",
        "crates/sim/src/fixture.rs",
        "lock-graph",
    ),
    (
        "flow_asyncready_hot.rs",
        "flow_asyncready_clean.rs",
        "crates/mpiio/src/fixture.rs",
        "async-ready",
    ),
    (
        "flow_alloc_hot.rs",
        "flow_alloc_clean.rs",
        "crates/core/src/pipeline/fixture.rs",
        "hot-alloc",
    ),
];

#[test]
fn flow_hot_halves_are_caught_despite_the_branch() {
    for &(hot, _, rel, rule) in FLOW_CASES {
        let report = lint_fixture(hot, rel);
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            vec![rule],
            "{hot}: the arm-hidden violation must produce exactly one \
             `{rule}` finding, got {:?}",
            report.diagnostics
        );
        assert_eq!(report.suppressed, 0, "{hot}");
    }
}

#[test]
fn flow_clean_halves_need_no_pragma() {
    for &(_, clean, rel, rule) in FLOW_CASES {
        let report = lint_fixture(clean, rel);
        assert!(
            report.diagnostics.is_empty(),
            "{clean}: branch-guarded correct ordering must be clean \
             without a pragma (rule `{rule}`): {:?}",
            report.diagnostics
        );
        assert_eq!(report.suppressed, 0, "{clean}: nothing suppressed");
    }
}

#[test]
fn flow_violations_carry_a_block_path_witness() {
    // The durability, typestate, and affinity findings are *path* facts;
    // the diagnostic must name the violating path through the CFG so the
    // reader can follow it arm by arm.
    for &(hot, rel) in &[
        ("flow_durability_hot.rs", "crates/core/src/fixture.rs"),
        ("flow_typestate_hot.rs", "crates/core/src/fixture.rs"),
        ("flow_affinity_hot.rs", "crates/core/src/shard/plane.rs"),
    ] {
        let report = lint_fixture(hot, rel);
        assert_eq!(report.diagnostics.len(), 1, "{hot}");
        let d = &report.diagnostics[0];
        assert!(
            d.chain.iter().any(|c| c.contains("path through fn")),
            "{hot}: expected a block-path witness in the chain, got {:?}",
            d.chain
        );
    }
}

#[test]
fn xfn_halves_alone_are_invisible_to_per_file_analysis() {
    // Linting one file by itself is exactly the visibility the old
    // per-file lexical analyzer had: each half must come out clean.
    for &(caller, caller_rel, helper, helper_rel, rule, _) in XFN_CASES {
        for (name, rel) in [(caller, caller_rel), (helper, helper_rel)] {
            let report = lint_fixture(name, rel);
            assert!(
                report.diagnostics.is_empty(),
                "{name} alone must be silent (the violation spans two \
                 functions; rule `{rule}` needs the pair): {:?}",
                report.diagnostics
            );
        }
    }
}

#[test]
fn xfn_pairs_trip_exactly_their_rule_with_a_witness_chain() {
    for &(caller, caller_rel, helper, helper_rel, rule, severity) in XFN_CASES {
        let caller_src = fixture_source(caller);
        let helper_src = fixture_source(helper);
        let report = lint_fixture_set(&[
            (caller_src.as_str(), caller_rel),
            (helper_src.as_str(), helper_rel),
        ]);
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            vec![rule],
            "{caller}+{helper}: expected exactly one `{rule}` finding, got {:?}",
            report.diagnostics
        );
        let d = &report.diagnostics[0];
        assert_eq!(d.severity, severity, "{caller}+{helper}");
        assert!(
            d.chain.len() >= 2,
            "{caller}+{helper}: interprocedural finding must carry the \
             caller→helper witness chain, got {:?}",
            d.chain
        );
        assert_eq!(report.suppressed, 0, "{caller}+{helper}");
    }
}

#[test]
fn xfn_panic_site_pragma_suppresses_reachability_too() {
    // `allow(panic)` on the panic *site* must also suppress the
    // site-anchored `panic-path` finding — one justification covers the
    // construct and its reachability.
    let caller_src = fixture_source("xfn_panic_caller.rs");
    let helper_src = fixture_source("xfn_panic_helper.rs").replace(
        "    weights[k]",
        "    // s4d-lint: allow(panic) — fixture-local proof for the self-test\n    weights[k]",
    );
    let report = lint_fixture_set(&[
        (caller_src.as_str(), "crates/core/src/xfn_caller.rs"),
        (helper_src.as_str(), "crates/sim/src/xfn_helper.rs"),
    ]);
    assert!(
        report.diagnostics.is_empty(),
        "site pragma must cover reachability: {:?}",
        report.diagnostics
    );
    assert_eq!(report.suppressed, 1);
}

#[test]
fn retry_alias_pragma_suppresses_the_retry_pair() {
    // `allow(retry)` is the short alias for `unbounded-retry`; placed on
    // the loop the finding anchors at, it must suppress the pair's
    // cross-function finding.
    let caller_src = fixture_source("xfn_retry_caller.rs").replace(
        "    loop {",
        "    // s4d-lint: allow(retry) — fixture-local proof for the self-test\n    loop {",
    );
    let helper_src = fixture_source("xfn_retry_helper.rs");
    let report = lint_fixture_set(&[
        (caller_src.as_str(), "crates/mpiio/src/xfn_caller.rs"),
        (helper_src.as_str(), "crates/mpiio/src/xfn_helper.rs"),
    ]);
    assert!(
        report.diagnostics.is_empty(),
        "the `retry` alias must suppress `unbounded-retry`: {:?}",
        report.diagnostics
    );
    assert_eq!(report.suppressed, 1);
}

#[test]
fn bound_evidence_in_the_helper_clears_the_retry_pair() {
    // Giving the helper its own attempt bound is the sanctioned fix:
    // the same pair must then lint clean without any pragma.
    let caller_src = fixture_source("xfn_retry_caller.rs");
    let helper_src = fixture_source("xfn_retry_helper.rs").replace(
        "        fire_retry(op);",
        "        if op.attempts < MAX_ATTEMPTS {\n            fire_retry(op);\n        }",
    );
    let report = lint_fixture_set(&[
        (caller_src.as_str(), "crates/mpiio/src/xfn_caller.rs"),
        (helper_src.as_str(), "crates/mpiio/src/xfn_helper.rs"),
    ]);
    assert!(
        report.diagnostics.is_empty(),
        "an attempt cap in the helper must clear the loop: {:?}",
        report.diagnostics
    );
    assert_eq!(report.suppressed, 0);
}

#[test]
fn fixture_findings_are_errors_with_hints() {
    for &(name, rel, _) in CASES {
        let report = lint_fixture(name, rel);
        for d in &report.diagnostics {
            assert_eq!(d.severity, Severity::Error, "{name}");
            assert!(!d.hint.is_empty(), "{name}: every finding carries a hint");
            assert!(d.line > 0, "{name}: diagnostics are 1-based");
        }
    }
}

#[test]
fn justified_pragma_suppresses_the_panic_fixture() {
    let src = fixture_source("panic.rs").replace(
        "    xs.first().copied().unwrap()",
        "    // s4d-lint: allow(panic) — fixture-local proof for the self-test\n    \
         xs.first().copied().unwrap()",
    );
    let report = lint_fixture_src(&src, "crates/pfs/src/fixture.rs");
    assert!(
        report.diagnostics.is_empty(),
        "justified allow(panic) must suppress: {:?}",
        report.diagnostics
    );
    assert_eq!(report.suppressed, 1);
}

#[test]
fn wrong_rule_name_does_not_suppress() {
    let src = fixture_source("panic.rs").replace(
        "    xs.first().copied().unwrap()",
        "    // s4d-lint: allow(determinism) — names the wrong rule on purpose\n    \
         xs.first().copied().unwrap()",
    );
    let report = lint_fixture_src(&src, "crates/pfs/src/fixture.rs");
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    // The panic finding survives, and the allow is reported as unused.
    assert!(rules.contains(&"panic"), "finding must survive: {rules:?}");
    assert!(
        rules.contains(&"pragma"),
        "unused allow is reported: {rules:?}"
    );
    assert_eq!(report.suppressed, 0);
}

#[test]
fn unjustified_pragma_does_not_suppress() {
    let src = fixture_source("panic.rs").replace(
        "    xs.first().copied().unwrap()",
        "    // s4d-lint: allow(panic)\n    xs.first().copied().unwrap()",
    );
    let report = lint_fixture_src(&src, "crates/pfs/src/fixture.rs");
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"panic"), "finding must survive: {rules:?}");
    assert!(
        rules.contains(&"pragma"),
        "missing justification is reported: {rules:?}"
    );
    assert_eq!(report.suppressed, 0);
}

#[test]
fn determinism_is_report_only_in_test_code() {
    // Same violation, but the file sits in a tests/ directory: the
    // finding downgrades to a warning (satellite: report-only over test
    // dirs) — present, but not exit-code-affecting.
    let report = lint_fixture("determinism.rs", "crates/sim/tests/fixture.rs");
    assert_eq!(report.diagnostics.len(), 1);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, "determinism");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 1);
}

#[test]
fn shard_discipline_catches_raw_component_mutation() {
    let report = lint_fixture("shard_discipline_hot.rs", "crates/core/src/fixture.rs");
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(
        rules,
        vec!["shard-discipline"],
        "raw dmt.insert outside the owner files must produce exactly one \
         finding: {:?}",
        report.diagnostics
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("dmt.insert"), "message names the call");
}

#[test]
fn shard_discipline_clean_when_routed_through_the_plane() {
    let report = lint_fixture("shard_discipline_clean.rs", "crates/core/src/fixture.rs");
    assert!(
        report.diagnostics.is_empty(),
        "plane-routed mutations and raw reads must be clean: {:?}",
        report.diagnostics
    );
}

#[test]
fn shard_discipline_exempts_owners_tests_and_other_crates() {
    let src = fixture_source("shard_discipline_hot.rs");
    // The replay path legitimately rebuilds a raw Dmt before adoption.
    for rel in [
        "crates/core/src/durability/replay.rs",
        "crates/core/src/shard/plane.rs",
        "crates/core/tests/fixture.rs",
        "crates/pfs/src/fixture.rs",
    ] {
        let report = lint_fixture_src(&src, rel);
        let tripped: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "shard-discipline")
            .collect();
        assert!(
            tripped.is_empty(),
            "{rel}: owner files, test dirs, and other crates are exempt: {tripped:?}"
        );
    }
}

#[test]
fn shard_discipline_pragma_suppresses_with_justification() {
    let src = fixture_source("shard_discipline_hot.rs").replace(
        "    dmt.insert",
        "    // s4d-lint: allow(shard-discipline) — fixture-local proof for the self-test\n    \
         dmt.insert",
    );
    let report = lint_fixture_src(&src, "crates/core/src/fixture.rs");
    assert!(
        report.diagnostics.is_empty(),
        "justified allow(shard-discipline) must suppress: {:?}",
        report.diagnostics
    );
    assert_eq!(report.suppressed, 1);
}

/// `lines` trivial, rule-silent code lines — oversized-module input for
/// the file-budget cases (generated, not checked in: an 800-line fixture
/// file would be pure noise).
fn const_lines(lines: usize) -> String {
    let mut src = String::new();
    for i in 0..lines {
        src.push_str(&format!("pub const LINE_{i}: usize = {i};\n"));
    }
    src
}

#[test]
fn file_budget_trips_on_an_oversized_lib_module() {
    let src = const_lines(s4d_lint::config::FILE_BUDGET_MAX_LINES + 1);
    let report = lint_fixture_src(&src, "crates/core/src/fixture.rs");
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec!["file-budget"]);
    let d = &report.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(
        d.line as usize,
        s4d_lint::config::FILE_BUDGET_MAX_LINES + 1,
        "finding anchors at the first line past the budget"
    );
}

#[test]
fn file_budget_excludes_test_spans() {
    // 500 library lines plus 400 lines inside `#[cfg(test)]`: 900 total,
    // but only the 500 non-test lines count — under budget.
    let mut src = const_lines(500);
    src.push_str("#[cfg(test)]\nmod tests {\n");
    for i in 0..400 {
        src.push_str(&format!("    const T_{i}: usize = {i};\n"));
    }
    src.push_str("}\n");
    let report = lint_fixture_src(&src, "crates/core/src/fixture.rs");
    assert!(
        report.diagnostics.is_empty(),
        "test spans must not count: {:?}",
        report.diagnostics
    );
}

#[test]
fn file_budget_exempts_test_directories() {
    let src = const_lines(s4d_lint::config::FILE_BUDGET_MAX_LINES + 200);
    let report = lint_fixture_src(&src, "crates/core/tests/fixture.rs");
    assert!(
        report.diagnostics.is_empty(),
        "integration-test files have no budget: {:?}",
        report.diagnostics
    );
}

#[test]
fn fixtures_are_invisible_to_the_workspace_walk() {
    // The crate's own tests/ tree contains the seeded violations; the
    // directory walk must skip the fixtures dir entirely.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = engine::lint_workspace(root).expect("lint crate walks");
    let leaked: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.path.components().any(|c| c.as_os_str() == "fixtures"))
        .collect();
    assert!(
        leaked.is_empty(),
        "fixtures leaked into the walk: {leaked:?}"
    );
}
