//! # s4d-cost — the S4D-Cache data-access cost model
//!
//! A faithful implementation of the cost model of §III.B of the paper,
//! which predicts the access time of a parallel file request on the
//! HDD-backed DServers (`T_D`, Equations 1–6 and Table II) and on the
//! SSD-backed CServers (`T_C`, Equation 7), and from them the *benefit*
//! `B = T_D − T_C` (Equation 8) of serving the request from the cache.
//!
//! The model's inputs (Table I):
//!
//! | symbol | meaning | here |
//! |--------|---------|------|
//! | `M`    | number of HDD servers | [`CostParams::m`] |
//! | `N`    | number of SSD servers | [`CostParams::n`] |
//! | `str`  | stripe size | [`CostParams::stripe`] |
//! | `d`    | logical distance to the previous request | tracked by [`BenefitEvaluator`] |
//! | `f, r` | request offset and size | arguments |
//! | `R`    | average rotational delay | [`CostParams::rotation`] |
//! | `S`    | maximum seek time | [`CostParams::max_seek`] |
//! | `β_D`  | HDD per-byte cost | [`CostParams::beta_d`] |
//! | `β_C`  | SSD per-byte cost | [`CostParams::beta_c`] |
//! | `F`    | distance → seek time (offline-profiled) | [`s4d_storage::SeekProfile`] |
//!
//! ```
//! use s4d_cost::{BenefitEvaluator, CostParams};
//! use s4d_storage::presets;
//!
//! let params = CostParams::from_hardware(
//!     &presets::hdd_seagate_st3250(),
//!     &presets::ssd_ocz_revodrive_x2(),
//!     8, 4, 64 * 1024,
//! );
//! let mut eval = BenefitEvaluator::new(params);
//! // A small request far from the previous one: big positive benefit.
//! let b = eval.evaluate((0u64, 0u64), 500 * 1024 * 1024, 16 * 1024);
//! assert!(b.benefit_secs > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benefit;
mod model;
mod params;

pub use benefit::{Benefit, BenefitEvaluator};
pub use model::{
    involved_servers, max_startup_expectation, max_subrequest_exact, max_subrequest_table2,
    t_cservers, t_dservers, SmMode,
};
pub use params::CostParams;
