//! Equations 1–8 and Table II of the paper.

use serde::{Deserialize, Serialize};

use crate::params::CostParams;

/// Which `s_m` (maximum sub-request size) computation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SmMode {
    /// The closed form of the paper's Table II, taken literally. Slightly
    /// conservative at stripe-aligned request ends (where the paper's
    /// `E = ⌊(f+r)/str⌋` counts one extra stripe).
    #[default]
    Table2,
    /// Exact enumeration of the round-robin decomposition.
    Exact,
}

/// The paper's Equation 6: number of file servers a request involves.
///
/// `B = ⌊f/str⌋`, `E = ⌊(f+r)/str⌋`, `m = min(E − B + 1, servers)`.
/// Note the paper's `E` counts the stripe *containing* `f + r`, so a
/// request ending exactly on a stripe boundary counts one extra server —
/// we follow the paper.
///
/// # Panics
///
/// Panics if `stripe == 0` or `servers == 0`.
pub fn involved_servers(offset: u64, len: u64, stripe: u64, servers: usize) -> usize {
    assert!(stripe > 0 && servers > 0, "bad geometry");
    if len == 0 {
        return 0;
    }
    let b = offset / stripe;
    let e = (offset + len) / stripe;
    ((e - b + 1) as usize).min(servers)
}

/// The paper's Table II: closed-form maximum sub-request size `s_m`.
///
/// With `Δ = E − B`, `b = str − f mod str` (beginning fragment) and
/// `e = (f + r) mod str` (ending fragment):
///
/// | case | condition | `s_m` |
/// |------|-----------|-------|
/// | 1 | `Δ = 0` | `r` |
/// | 2 | `Δ > 0 ∧ Δ mod M = 0` | `max{b + e + (⌈Δ/M⌉−1)·str, ⌈Δ/M⌉·str}` |
/// | 3 | `Δ > 0 ∧ Δ mod M = 1` | `max{b + (⌈Δ/M⌉−1)·str, e + (⌈Δ/M⌉−1)·str}` |
/// | 4 | otherwise | `⌈Δ/M⌉·str` |
///
/// # Panics
///
/// Panics if `stripe == 0` or `servers == 0`.
pub fn max_subrequest_table2(offset: u64, len: u64, stripe: u64, servers: usize) -> u64 {
    assert!(stripe > 0 && servers > 0, "bad geometry");
    if len == 0 {
        return 0;
    }
    let m = servers as u64;
    let b_stripe = offset / stripe;
    let e_stripe = (offset + len) / stripe;
    let delta = e_stripe - b_stripe;
    if delta == 0 {
        return len;
    }
    let begin_frag = stripe - offset % stripe;
    let end_frag = (offset + len) % stripe;
    let rounds = delta.div_ceil(m);
    match delta % m {
        0 => (begin_frag + end_frag + (rounds - 1) * stripe).max(rounds * stripe),
        1 => (begin_frag + (rounds - 1) * stripe).max(end_frag + (rounds - 1) * stripe),
        _ => rounds * stripe,
    }
}

/// Exact maximum per-server sub-request size by enumerating the round-robin
/// decomposition.
///
/// # Panics
///
/// Panics if `stripe == 0` or `servers == 0`.
pub fn max_subrequest_exact(offset: u64, len: u64, stripe: u64, servers: usize) -> u64 {
    assert!(stripe > 0 && servers > 0, "bad geometry");
    if len == 0 {
        return 0;
    }
    let end = offset + len;
    let first = offset / stripe;
    let last = (end - 1) / stripe;
    let mut per_server = vec![0u64; servers];
    for k in first..=last {
        let lo = (k * stripe).max(offset);
        let hi = ((k + 1) * stripe).min(end);
        per_server[(k % servers as u64) as usize] += hi - lo;
    }
    per_server.into_iter().max().unwrap_or(0)
}

/// The paper's Equation 4: expectation of the maximum of `m` startup times
/// drawn uniformly from `[a, b]`: `a + m/(m+1) · (b − a)`.
///
/// # Panics
///
/// Panics if `m == 0` or `a > b`.
pub fn max_startup_expectation(m: usize, a: f64, b: f64) -> f64 {
    assert!(m > 0, "m must be positive");
    assert!(a <= b, "startup interval inverted: [{a}, {b}]");
    a + (m as f64 / (m as f64 + 1.0)) * (b - a)
}

/// The paper's Equations 1–6: predicted access time on the DServers.
///
/// Startup is the expected maximum over the `m` involved servers of a
/// uniform draw from `[F(d) + R, S + R]`; transfer is `s_m · β_D`.
pub fn t_dservers(params: &CostParams, distance: u64, offset: u64, len: u64, sm: SmMode) -> f64 {
    if len == 0 {
        return 0.0;
    }
    let m = involved_servers(offset, len, params.stripe, params.m);
    let a = params.seek_time_for_logical_distance(distance) + params.rotation;
    let b = params.max_seek + params.rotation;
    // F is capped at S, so a ≤ b always holds; clamp defensively anyway.
    let t_s = max_startup_expectation(m, a.min(b), b);
    let s_m = match sm {
        SmMode::Table2 => max_subrequest_table2(offset, len, params.stripe, params.m),
        SmMode::Exact => max_subrequest_exact(offset, len, params.stripe, params.m),
    };
    t_s + s_m as f64 * params.beta_d
}

/// The paper's Equation 7: predicted access time on the CServers.
///
/// SSDs are insensitive to spatial locality, so there is no startup term:
/// `T_C = S_n · β_C` where `S_n` is the maximum sub-request size when the
/// request is striped over the `N` CServers.
pub fn t_cservers(params: &CostParams, offset: u64, len: u64, sm: SmMode) -> f64 {
    if len == 0 {
        return 0.0;
    }
    let s_n = match sm {
        SmMode::Table2 => max_subrequest_table2(offset, len, params.stripe, params.n),
        SmMode::Exact => max_subrequest_exact(offset, len, params.stripe, params.n),
    };
    s_n as f64 * params.beta_c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use s4d_storage::presets;

    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;
    const STR: u64 = 64 * KIB;

    fn params() -> CostParams {
        CostParams::from_hardware(
            &presets::hdd_seagate_st3250(),
            &presets::ssd_ocz_revodrive_x2(),
            8,
            4,
            STR,
        )
        .with_network_bandwidth(117.0e6)
        // Request-level effective beta_C: 0.3 ms per-op overhead amortised
        // over 16 KiB, as the experiment harness profiles it.
        .with_cserver_op_overhead(300.0e-6, 16 * KIB)
    }

    #[test]
    fn involved_servers_eq6() {
        // Within one stripe.
        assert_eq!(involved_servers(0, 16 * KIB, STR, 8), 1);
        // Spans two stripes.
        assert_eq!(involved_servers(60 * KIB, 8 * KIB, STR, 8), 2);
        // Caps at M.
        assert_eq!(involved_servers(0, 100 * MIB, STR, 8), 8);
        // Zero length.
        assert_eq!(involved_servers(0, 0, STR, 8), 0);
        // Paper quirk: an exactly aligned request counts E's stripe.
        assert_eq!(involved_servers(0, STR, STR, 8), 2);
    }

    #[test]
    fn table2_case1_small_request() {
        assert_eq!(max_subrequest_table2(10 * KIB, 4 * KIB, STR, 8), 4 * KIB);
    }

    #[test]
    fn table2_case3_two_fragments() {
        // 32 KiB .. 160 KiB: Δ = 2 (B=0, E=2), Δ % 8 = 2 -> case 4.
        assert_eq!(max_subrequest_table2(32 * KIB, 128 * KIB, STR, 8), STR);
        // Δ % M == 1: f = 32 KiB, r = 96 KiB: B=0, E=2... Δ=2 again; pick
        // f = 32 KiB, r = 32 KiB + 64 KiB*0 + ... choose f=48K, r=80K:
        // B=0, E=2, Δ=2. For Δ%M==1 with M=8 need Δ=1 or 9:
        // f = 32 KiB, r = 48 KiB: B=0, E=1, Δ=1 -> case 3.
        let sm = max_subrequest_table2(32 * KIB, 48 * KIB, STR, 8);
        // b = 32 KiB, e = 16 KiB, rounds = 1: max{32 KiB, 16 KiB}.
        assert_eq!(sm, 32 * KIB);
        assert_eq!(max_subrequest_exact(32 * KIB, 48 * KIB, STR, 8), 32 * KIB);
    }

    #[test]
    fn table2_case2_full_rounds() {
        // Aligned 8-stripe request: Δ = 8, Δ % 8 == 0, b = str, e = 0.
        // max{str + 0 + 0, str} = str — each server one stripe.
        assert_eq!(max_subrequest_table2(0, 8 * STR, STR, 8), STR);
        assert_eq!(max_subrequest_exact(0, 8 * STR, STR, 8), STR);
    }

    #[test]
    fn table2_case4_middle() {
        // Δ = 4 (not 0 or 1 mod 8): s_m = ceil(4/8)*str = str.
        assert_eq!(max_subrequest_table2(0, 4 * STR + KIB, STR, 8), STR);
    }

    #[test]
    fn exact_matches_layout_semantics() {
        assert_eq!(max_subrequest_exact(0, 16 * STR, STR, 8), 2 * STR);
        assert_eq!(max_subrequest_exact(0, 16 * KIB, STR, 8), 16 * KIB);
    }

    #[test]
    fn startup_expectation_eq4() {
        // m = 1: midpoint.
        assert!((max_startup_expectation(1, 2.0, 4.0) - 3.0).abs() < 1e-12);
        // m -> large: approaches b.
        let big = max_startup_expectation(1000, 2.0, 4.0);
        assert!(big > 3.99 && big < 4.0);
        // Degenerate interval.
        assert_eq!(max_startup_expectation(5, 3.0, 3.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "startup interval inverted")]
    fn startup_rejects_inverted() {
        max_startup_expectation(1, 4.0, 2.0);
    }

    #[test]
    fn small_random_requests_prefer_cservers() {
        let p = params();
        let far = 512 * MIB;
        for r in [4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB] {
            let td = t_dservers(&p, far, 0, r, SmMode::Table2);
            let tc = t_cservers(&p, 0, r, SmMode::Table2);
            assert!(td > tc, "request {r}: T_D {td} should exceed T_C {tc}");
        }
    }

    #[test]
    fn large_requests_prefer_dservers() {
        let p = params();
        // 4 MiB requests (the paper's Fig. 6 crossover) must not benefit,
        // regardless of distance.
        for d in [0u64, 512 * MIB] {
            let td = t_dservers(&p, d, 0, 4 * MIB, SmMode::Table2);
            let tc = t_cservers(&p, 0, 4 * MIB, SmMode::Table2);
            assert!(
                tc >= td,
                "4 MiB @ d={d}: T_C {tc} should be at least T_D {td}"
            );
        }
    }

    #[test]
    fn crossover_lies_between_64kib_and_4mib() {
        let p = params();
        let d = 512 * MIB;
        let benefit =
            |r: u64| t_dservers(&p, d, 0, r, SmMode::Table2) - t_cservers(&p, 0, r, SmMode::Table2);
        assert!(benefit(64 * KIB) > 0.0);
        assert!(benefit(4 * MIB) <= 0.0);
        // Find the sign change; it must be monotone through the range.
        let mut crossed = false;
        let mut r = 64 * KIB;
        let mut prev = benefit(r);
        while r < 4 * MIB {
            r *= 2;
            let cur = benefit(r);
            if prev > 0.0 && cur <= 0.0 {
                crossed = true;
            }
            prev = cur;
        }
        assert!(crossed, "benefit must cross zero between 64 KiB and 4 MiB");
    }

    #[test]
    fn sequential_small_requests_still_benefit() {
        // Even at d = 0 the expected-maximum startup keeps T_D well above
        // T_C for small requests — the effect behind Table III where most
        // 16 KiB requests (sequential instances included) are redirected.
        let p = params();
        let td = t_dservers(&p, 0, 0, 16 * KIB, SmMode::Table2);
        let tc = t_cservers(&p, 0, 16 * KIB, SmMode::Table2);
        assert!(td > tc);
    }

    #[test]
    fn zero_length_costs_nothing() {
        let p = params();
        assert_eq!(t_dservers(&p, 0, 0, 0, SmMode::Table2), 0.0);
        assert_eq!(t_cservers(&p, 0, 0, SmMode::Exact), 0.0);
        assert_eq!(max_subrequest_table2(0, 0, STR, 8), 0);
        assert_eq!(max_subrequest_exact(5, 0, STR, 8), 0);
    }

    proptest! {
        /// Table II may over-estimate at aligned boundaries but must never
        /// under-estimate the exact maximum sub-request, and never by more
        /// than one stripe.
        #[test]
        fn prop_table2_bounds_exact(
            offset in 0u64..(1 << 22),
            len in 1u64..(1 << 23),
            servers in 1usize..10,
        ) {
            let t2 = max_subrequest_table2(offset, len, STR, servers);
            let exact = max_subrequest_exact(offset, len, STR, servers);
            prop_assert!(t2 + STR >= exact, "t2 {} far below exact {}", t2, exact);
            prop_assert!(t2 <= exact + STR, "t2 {} far above exact {}", t2, exact);
        }

        /// T_D grows (weakly) with distance; T_C is distance-free.
        #[test]
        fn prop_td_monotone_in_distance(
            d1 in 0u64..(1u64 << 34),
            d2 in 0u64..(1u64 << 34),
            len in 1u64..(1 << 22),
        ) {
            let p = params();
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            let a = t_dservers(&p, lo, 0, len, SmMode::Table2);
            let b = t_dservers(&p, hi, 0, len, SmMode::Table2);
            prop_assert!(a <= b + 1e-12);
        }

        /// Exact s_m times server count covers the request.
        #[test]
        fn prop_exact_sm_is_a_true_max(
            offset in 0u64..(1 << 20),
            len in 1u64..(1 << 21),
            servers in 1usize..9,
        ) {
            let sm = max_subrequest_exact(offset, len, STR, servers);
            prop_assert!(sm * servers as u64 >= len);
            prop_assert!(sm <= len);
        }
    }
}
