//! Per-stream benefit evaluation (the Data Identifier's arithmetic).

use std::collections::HashMap;
use std::hash::Hash;

use crate::model::{t_cservers, t_dservers, SmMode};
use crate::params::CostParams;

/// The outcome of evaluating one request against the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Benefit {
    /// Predicted DServer access time, seconds (Eq. 1).
    pub t_d_secs: f64,
    /// Predicted CServer access time, seconds (Eq. 7).
    pub t_c_secs: f64,
    /// `B = T_D − T_C` (Eq. 8); positive means the request is
    /// performance-critical.
    pub benefit_secs: f64,
    /// The logical distance `d` used for the seek estimate.
    pub distance: u64,
}

impl Benefit {
    /// True if the paper would classify the request as performance-critical
    /// (`B > 0`, §III.C).
    pub fn is_critical(&self) -> bool {
        self.benefit_secs > 0.0
    }
}

/// Evaluates request benefits while tracking, per stream key, the end
/// offset of the previous request — the source of the paper's logical
/// distance `d` (Table I).
///
/// The key is whatever identifies an I/O stream to the middleware; S4D-Cache
/// runs at the MPI-IO layer and keys by *(process rank, file)*, since that
/// is the granularity at which access patterns are coherent.
///
/// A stream's very first request has no predecessor; the evaluator
/// conservatively assumes a full-stroke distance (an unknown position is a
/// random position).
#[derive(Debug, Clone)]
pub struct BenefitEvaluator<K> {
    params: CostParams,
    sm_mode: SmMode,
    last_end: HashMap<K, u64>,
}

impl<K: Eq + Hash + Clone> BenefitEvaluator<K> {
    /// Creates an evaluator using the paper's Table II closed form.
    pub fn new(params: CostParams) -> Self {
        BenefitEvaluator {
            params,
            sm_mode: SmMode::Table2,
            last_end: HashMap::new(),
        }
    }

    /// Selects the `s_m` computation (ablation hook).
    pub fn with_sm_mode(mut self, mode: SmMode) -> Self {
        self.sm_mode = mode;
        self
    }

    /// The model parameters in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Number of streams currently tracked.
    pub fn tracked_streams(&self) -> usize {
        self.last_end.len()
    }

    /// Evaluates the benefit of a request at `offset` of `len` bytes on
    /// stream `key`, updating the stream's position.
    pub fn evaluate(&mut self, key: K, offset: u64, len: u64) -> Benefit {
        let distance = match self.last_end.get(&key) {
            Some(&end) => end.abs_diff(offset),
            // Unknown position: assume worst-case (full-stroke) distance.
            None => u64::MAX,
        };
        self.last_end.insert(key, offset + len);
        self.evaluate_at_distance(distance, offset, len)
    }

    /// Evaluates without touching stream state (used by tests and the
    /// overhead probe).
    pub fn evaluate_at_distance(&self, distance: u64, offset: u64, len: u64) -> Benefit {
        let t_d = t_dservers(&self.params, distance, offset, len, self.sm_mode);
        let t_c = t_cservers(&self.params, offset, len, self.sm_mode);
        Benefit {
            t_d_secs: t_d,
            t_c_secs: t_c,
            benefit_secs: t_d - t_c,
            distance,
        }
    }

    /// Forgets all stream positions (e.g. between benchmark phases).
    pub fn reset(&mut self) {
        self.last_end.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_storage::presets;

    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;

    fn evaluator() -> BenefitEvaluator<(u32, u64)> {
        let params = CostParams::from_hardware(
            &presets::hdd_seagate_st3250(),
            &presets::ssd_ocz_revodrive_x2(),
            8,
            4,
            64 * KIB,
        )
        .with_network_bandwidth(117.0e6)
        .with_cserver_op_overhead(300.0e-6, 16 * KIB);
        BenefitEvaluator::new(params)
    }

    #[test]
    fn sequential_stream_sees_zero_distance() {
        let mut e = evaluator();
        e.evaluate((0, 0), 0, 16 * KIB);
        let b = e.evaluate((0, 0), 16 * KIB, 16 * KIB);
        assert_eq!(b.distance, 0);
        let b = e.evaluate((0, 0), 32 * KIB, 16 * KIB);
        assert_eq!(b.distance, 0);
    }

    #[test]
    fn random_jump_measures_distance() {
        let mut e = evaluator();
        e.evaluate((0, 0), 0, 16 * KIB);
        let b = e.evaluate((0, 0), 100 * MIB, 16 * KIB);
        assert_eq!(b.distance, 100 * MIB - 16 * KIB);
        // Backward jumps count too.
        let b = e.evaluate((0, 0), 50 * MIB, 16 * KIB);
        assert_eq!(b.distance, 50 * MIB + 16 * KIB);
    }

    #[test]
    fn first_request_is_worst_case() {
        let mut e = evaluator();
        let b = e.evaluate((1, 1), 0, 16 * KIB);
        assert_eq!(b.distance, u64::MAX);
        assert!(b.is_critical());
    }

    #[test]
    fn streams_are_independent() {
        let mut e = evaluator();
        e.evaluate((0, 0), 0, 16 * KIB);
        e.evaluate((1, 0), 64 * MIB, 16 * KIB);
        // Process 0 continues sequentially despite process 1's activity.
        let b = e.evaluate((0, 0), 16 * KIB, 16 * KIB);
        assert_eq!(b.distance, 0);
        assert_eq!(e.tracked_streams(), 2);
        e.reset();
        assert_eq!(e.tracked_streams(), 0);
    }

    #[test]
    fn small_random_is_critical_large_is_not() {
        let e = evaluator();
        let small = e.evaluate_at_distance(512 * MIB, 0, 16 * KIB);
        assert!(small.is_critical());
        assert!(small.t_d_secs > small.t_c_secs);
        let large = e.evaluate_at_distance(512 * MIB, 0, 4 * MIB);
        assert!(!large.is_critical());
    }

    #[test]
    fn benefit_fields_are_consistent() {
        let e = evaluator();
        let b = e.evaluate_at_distance(MIB, 4 * KIB, 32 * KIB);
        assert!((b.benefit_secs - (b.t_d_secs - b.t_c_secs)).abs() < 1e-15);
        assert_eq!(b.distance, MIB);
    }

    #[test]
    fn sm_mode_is_configurable() {
        let e = evaluator().with_sm_mode(SmMode::Exact);
        // Aligned full-round request: exact and Table 2 agree here, just
        // exercise the path.
        let b = e.evaluate_at_distance(0, 0, 8 * 64 * KIB);
        assert!(b.t_d_secs > 0.0);
    }
}
