//! Cost-model parameters (the paper's Table I).

use s4d_storage::{HddConfig, IoKind, SeekProfile, SsdConfig};
use serde::{Deserialize, Serialize};

/// The parameters of the data-access cost model.
///
/// Construct with [`CostParams::from_hardware`] to derive every value from
/// the same device configurations the simulator runs — the analogue of the
/// paper profiling its own testbed — then optionally adjust with the
/// `with_*` setters (used by the ablation benches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// `M`: number of HDD file servers.
    pub m: usize,
    /// `N`: number of SSD file servers (`N < M` in the paper's deployments,
    /// though the model does not require it).
    pub n: usize,
    /// `str`: stripe size of both parallel file systems, bytes.
    pub stripe: u64,
    /// `R`: average rotational delay of the HDDs, seconds.
    pub rotation: f64,
    /// `S`: maximum (full-stroke) seek time of the HDDs, seconds.
    pub max_seek: f64,
    /// `β_D`: cost of accessing one byte on a DServer, seconds.
    pub beta_d: f64,
    /// `β_C`: cost of accessing one byte on a CServer, seconds.
    pub beta_c: f64,
    /// `F`: the offline-profiled seek curve of the HDDs.
    pub seek: SeekProfile,
}

impl CostParams {
    /// Derives parameters from device configurations.
    ///
    /// * `R` and `S` come from the HDD's spindle speed and seek curve;
    /// * `β_D` is the HDD's per-byte sequential cost;
    /// * `β_C` is the SSD's per-byte *write* cost — the paper uses a single
    ///   `β_C`, and writes are the cache-admission direction, so this is the
    ///   conservative choice (override with [`CostParams::with_beta_c`]);
    /// * `F` is the HDD's seek curve.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `n == 0`, or `stripe == 0`.
    pub fn from_hardware(
        hdd: &HddConfig,
        ssd: &SsdConfig,
        m: usize,
        n: usize,
        stripe: u64,
    ) -> Self {
        assert!(m > 0, "M must be positive");
        assert!(n > 0, "N must be positive");
        assert!(stripe > 0, "stripe must be positive");
        CostParams {
            m,
            n,
            stripe,
            rotation: hdd.avg_rotation_secs(),
            max_seek: hdd.max_seek_secs(),
            beta_d: hdd.beta_secs_per_byte(),
            beta_c: ssd.beta_secs_per_byte(IoKind::Write),
            seek: hdd.seek_profile().clone(),
        }
    }

    /// Folds a network bottleneck into both per-byte costs: transfers
    /// cannot run faster than the link, so `β ← max(β, 1/bandwidth)`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not positive and finite.
    pub fn with_network_bandwidth(mut self, bandwidth: f64) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be positive"
        );
        let beta_net = 1.0 / bandwidth;
        self.beta_d = self.beta_d.max(beta_net);
        self.beta_c = self.beta_c.max(beta_net);
        self
    }

    /// Folds a per-operation overhead (RPC + device latency) into `β_C`,
    /// amortised over a reference request length — the request-level
    /// *effective* per-byte cost an offline profiling of CServer accesses
    /// observes. The paper's model carries a single `β_C` constant, which
    /// only reproduces its own redirection decisions (small requests
    /// benefit, multi-megabyte requests do not) if that constant reflects
    /// request-level cost rather than raw streaming bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `per_op_secs` is negative/non-finite or
    /// `reference_len == 0`.
    pub fn with_cserver_op_overhead(mut self, per_op_secs: f64, reference_len: u64) -> Self {
        assert!(
            per_op_secs.is_finite() && per_op_secs >= 0.0,
            "per-op overhead must be non-negative"
        );
        assert!(reference_len > 0, "reference length must be positive");
        self.beta_c += per_op_secs / reference_len as f64;
        self
    }

    /// Overrides `β_C` (ablation hook).
    ///
    /// # Panics
    ///
    /// Panics if `beta_c` is not positive and finite.
    pub fn with_beta_c(mut self, beta_c: f64) -> Self {
        assert!(
            beta_c.is_finite() && beta_c > 0.0,
            "beta_c must be positive"
        );
        self.beta_c = beta_c;
        self
    }

    /// Overrides the CServer count (the Fig. 8 sweep).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_n(mut self, n: usize) -> Self {
        assert!(n > 0, "N must be positive");
        self.n = n;
        self
    }

    /// Converts a logical file-level distance to a per-server seek time:
    /// the file is spread over `M` servers, so logical distance `d` moves a
    /// server's head about `d / M` bytes.
    pub fn seek_time_for_logical_distance(&self, d: u64) -> f64 {
        self.seek.seek_secs(d / self.m as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_storage::presets;

    fn params() -> CostParams {
        CostParams::from_hardware(
            &presets::hdd_seagate_st3250(),
            &presets::ssd_ocz_revodrive_x2(),
            8,
            4,
            64 * 1024,
        )
    }

    #[test]
    fn derivation_matches_devices() {
        let p = params();
        let hdd = presets::hdd_seagate_st3250();
        let ssd = presets::ssd_ocz_revodrive_x2();
        assert_eq!(p.rotation, hdd.avg_rotation_secs());
        assert_eq!(p.max_seek, hdd.max_seek_secs());
        assert_eq!(p.beta_d, hdd.beta_secs_per_byte());
        assert_eq!(p.beta_c, ssd.beta_secs_per_byte(IoKind::Write));
        assert_eq!(p.m, 8);
        assert_eq!(p.n, 4);
    }

    #[test]
    fn network_caps_betas() {
        let p = params().with_network_bandwidth(50.0e6);
        assert!((p.beta_d - 2.0e-8).abs() < 1e-12);
        assert!(p.beta_c >= 2.0e-8);
        // A fast link changes nothing.
        let q = params().with_network_bandwidth(10.0e9);
        assert_eq!(q.beta_d, params().beta_d);
    }

    #[test]
    fn overrides() {
        let p = params().with_beta_c(5.5e-8).with_n(6);
        assert_eq!(p.beta_c, 5.5e-8);
        assert_eq!(p.n, 6);
    }

    #[test]
    fn logical_distance_scales_by_m() {
        let p = params();
        let d = 8 * 1024 * 1024 * 1024u64;
        assert_eq!(p.seek_time_for_logical_distance(d), p.seek.seek_secs(d / 8));
        assert_eq!(p.seek_time_for_logical_distance(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "M must be positive")]
    fn rejects_zero_m() {
        CostParams::from_hardware(
            &presets::hdd_seagate_st3250(),
            &presets::ssd_ocz_revodrive_x2(),
            0,
            4,
            64 * 1024,
        );
    }
}
