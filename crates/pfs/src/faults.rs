//! Scriptable server-level fault injection.
//!
//! [`s4d_storage::FaultyDevice`] degrades a *device* by operation number;
//! this module scripts whole-*server* failures on the simulation clock: a
//! hard crash that loses all stored data, a window of transient
//! (retryable) errors, slowdown windows (whole-server, per-op-class, and
//! probabilistic heavy tails), or a stall that parks operations in the
//! service slot without completing *or* erring. A [`FaultPlan`] is
//! installed on a [`FileServer`](crate::FileServer) and queried as
//! simulated time advances; the middleware above observes the resulting
//! [`IoFault`]s on completed sub-requests and reacts (retry, quarantine,
//! fall back to the other tier), while fail-slow modes are only visible
//! as latency — detecting those is the gray-failure layer's job
//! (deadlines, hedging, backpressure).

use s4d_sim::{SimRng, SimTime};
use s4d_storage::IoKind;
use serde::{Deserialize, Serialize};

/// Ceiling on any composed service-time multiplier. Overlapping slowdown
/// windows compose multiplicatively and then clamp into
/// `[1, MAX_SLOWDOWN]`, so a stack of degraded windows can never
/// overflow a service time into nonsense; a genuinely unbounded delay is
/// modeled by [`ServerFault::Stall`] instead.
pub const MAX_SLOWDOWN: f64 = 1e6;

/// The error a faulted server attaches to a completed sub-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoFault {
    /// The server is offline (crashed); its stored data is lost. Not
    /// retryable against the same server until it recovers.
    Offline,
    /// A transient I/O error (controller hiccup, dropped RPC). The
    /// operation had no effect and may be retried.
    Transient,
    /// The server's store is full (`ENOSPC`): the write had no effect.
    /// Not retryable against the same server until space frees; reads are
    /// unaffected.
    NoSpace,
    /// A media error (`EIO`): the addressed device range hit a bad
    /// sector. The operation had no effect, and retrying the same range
    /// against the same server fails the same way — the data there is
    /// gone (reads) or unwritable (writes).
    Media,
}

impl std::fmt::Display for IoFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFault::Offline => write!(f, "server offline"),
            IoFault::Transient => write!(f, "transient i/o error"),
            IoFault::NoSpace => write!(f, "no space on device"),
            IoFault::Media => write!(f, "media error"),
        }
    }
}

/// One scripted server fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerFault {
    /// The server hard-crashes at `at`, losing every stored byte, and
    /// comes back (empty) at `recover_at`. While down, every sub-request
    /// completes with [`IoFault::Offline`].
    Crash {
        /// Crash instant.
        at: SimTime,
        /// First instant the server is reachable again.
        recover_at: SimTime,
    },
    /// In `[from, until)` each sub-request fails with probability
    /// `error_rate`, completing with [`IoFault::Transient`] and no store
    /// effect.
    TransientErrors {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Per-operation failure probability in `(0, 1]`.
        error_rate: f64,
    },
    /// In `[from, until)` device service times are multiplied by `factor`
    /// (a degrading server). For op-count-keyed schedules, wrap the
    /// device in [`s4d_storage::FaultyDevice`] instead.
    Degraded {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Service-time multiplier (must be ≥ 1).
        factor: f64,
    },
    /// In `[from, until)` service times of one operation class are
    /// multiplied by `factor` — a server whose writes limp while reads
    /// stay healthy (firmware GC stalls, write-cache exhaustion), or the
    /// reverse. Composes with [`ServerFault::Degraded`] windows under the
    /// same multiply-then-clamp rule.
    ClassDegraded {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Which operation class limps.
        class: OpClass,
        /// Service-time multiplier (must be ≥ 1).
        factor: f64,
    },
    /// In `[from, until)` each operation independently draws a heavy
    /// latency tail with `probability`; a hit multiplies its service time
    /// by `factor`. Draws come from the server's own forked
    /// [`SimRng`](s4d_sim::SimRng) stream, so a given seed always tails
    /// the same ops.
    TailLatency {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Per-operation tail probability in `(0, 1]`.
        probability: f64,
        /// Service-time multiplier on a tail hit (must be ≥ 1).
        factor: f64,
    },
    /// In `[from, until)` the server's store is full: every write
    /// sub-request completes with [`IoFault::NoSpace`] and no store
    /// effect, while reads stay healthy. Models an SSD cache tier at
    /// capacity (ECI-Cache's steady-state regime) — the layer above must
    /// degrade (admit to OPFS, stall the journal) rather than fail.
    SpaceExhausted {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive; `SimTime::MAX` for "never frees").
        until: SimTime,
    },
    /// From `from` onward, a deterministic set of device sectors is bad:
    /// any sub-request touching one completes with [`IoFault::Media`] and
    /// no store effect. The bad-sector map is a pure function of
    /// `(seed, bad_ppm)` via
    /// [`s4d_storage::sector_is_bad`],
    /// so the same seed always corrupts the same ranges. Unlike
    /// [`ServerFault::Crash`], stored data outside bad sectors survives.
    MediaErrors {
        /// Onset instant (bad sectors exist from here on).
        from: SimTime,
        /// Seed of the deterministic bad-sector map.
        seed: u64,
        /// Bad-sector density in parts per million, in `(0, 1_000_000]`.
        bad_ppm: u32,
    },
    /// From `since`, operations that *start* do not complete: they park in
    /// the service slot (occupying it, backing up the queue) until
    /// `release`, or forever when `release` is `None`. A parked op is not
    /// an error — the server looks "up" while serving nothing, the
    /// canonical gray failure. An op already in service when the stall
    /// begins is unaffected.
    Stall {
        /// First instant at which newly started ops park.
        since: SimTime,
        /// Instant parked ops resume service, or `None` to park forever
        /// (the op can only be freed by [`FileServer::abandon`]).
        ///
        /// [`FileServer::abandon`]: crate::FileServer::abandon
        release: Option<SimTime>,
    },
}

/// The operation class a [`ServerFault::ClassDegraded`] window applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpClass {
    /// Read sub-requests.
    Read,
    /// Write sub-requests.
    Write,
}

impl OpClass {
    /// True if `kind` belongs to this class.
    pub fn matches(self, kind: IoKind) -> bool {
        match self {
            OpClass::Read => kind == IoKind::Read,
            OpClass::Write => kind.is_write(),
        }
    }
}

/// Stall status of a server at one instant (see [`FaultPlan::stall_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallState {
    /// No stall window covers the instant.
    Clear,
    /// Newly started ops park and resume service at the given instant
    /// (the latest release over overlapping windows).
    Until(SimTime),
    /// Newly started ops park with no scheduled release.
    Forever,
}

/// A schedule of [`ServerFault`]s for one server, driven by the sim clock.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<ServerFault>,
}

impl FaultPlan {
    /// An empty (always-healthy) plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault to the schedule.
    ///
    /// # Panics
    ///
    /// Panics on an empty or inverted window, an error rate outside
    /// `(0, 1]`, or a slowdown factor below 1.
    pub fn with(mut self, fault: ServerFault) -> Self {
        match fault {
            ServerFault::Crash { at, recover_at } => {
                assert!(recover_at > at, "crash must recover after it happens");
            }
            ServerFault::TransientErrors {
                from,
                until,
                error_rate,
            } => {
                assert!(until > from, "error window must be non-empty");
                assert!(
                    error_rate > 0.0 && error_rate <= 1.0,
                    "error rate must be in (0, 1]"
                );
            }
            ServerFault::Degraded {
                from,
                until,
                factor,
            }
            | ServerFault::ClassDegraded {
                from,
                until,
                factor,
                ..
            } => {
                assert!(until > from, "degraded window must be non-empty");
                assert!(
                    factor.is_finite() && factor >= 1.0,
                    "slowdown factor must be >= 1"
                );
            }
            ServerFault::TailLatency {
                from,
                until,
                probability,
                factor,
            } => {
                assert!(until > from, "tail window must be non-empty");
                assert!(
                    probability > 0.0 && probability <= 1.0,
                    "tail probability must be in (0, 1]"
                );
                assert!(
                    factor.is_finite() && factor >= 1.0,
                    "tail factor must be >= 1"
                );
            }
            ServerFault::SpaceExhausted { from, until } => {
                assert!(until > from, "space-exhaustion window must be non-empty");
            }
            ServerFault::MediaErrors { bad_ppm, .. } => {
                assert!(
                    bad_ppm > 0 && bad_ppm <= 1_000_000,
                    "bad_ppm must be in (0, 1_000_000]"
                );
            }
            ServerFault::Stall { since, release } => {
                if let Some(release) = release {
                    assert!(release > since, "stall must release after it begins");
                }
            }
        }
        self.faults.push(fault);
        self
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[ServerFault] {
        &self.faults
    }

    /// True if a crash window covers `now`.
    pub fn offline_at(&self, now: SimTime) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, ServerFault::Crash { at, recover_at }
                if *at <= now && now < *recover_at)
        })
    }

    /// Transient-error probability at `now` (0 outside every window; the
    /// maximum over overlapping windows).
    pub fn error_rate_at(&self, now: SimTime) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                ServerFault::TransientErrors {
                    from,
                    until,
                    error_rate,
                } if *from <= now && now < *until => Some(*error_rate),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Class-independent service-time multiplier at `now` (1 when
    /// healthy). Overlapping [`ServerFault::Degraded`] windows compose by
    /// **multiply-then-clamp**: the active factors are sorted into a
    /// canonical order, multiplied, and the product clamped into
    /// `[1, MAX_SLOWDOWN]` — so the result is a pure function of the set
    /// of active windows, independent of the order faults were inserted
    /// into the plan (floating-point products are not associative, so an
    /// unsorted product would differ in the last ulp between insertion
    /// orders).
    pub fn slowdown_at(&self, now: SimTime) -> f64 {
        let factors = self.faults.iter().filter_map(|f| match f {
            ServerFault::Degraded {
                from,
                until,
                factor,
            } if *from <= now && now < *until => Some(*factor),
            _ => None,
        });
        compose_slowdown(factors)
    }

    /// Service-time multiplier at `now` for an operation of `kind`:
    /// [`ServerFault::Degraded`] windows plus the
    /// [`ServerFault::ClassDegraded`] windows whose class matches,
    /// composed under the same multiply-then-clamp rule as
    /// [`FaultPlan::slowdown_at`].
    pub fn slowdown_for(&self, now: SimTime, kind: IoKind) -> f64 {
        let factors = self.faults.iter().filter_map(|f| match f {
            ServerFault::Degraded {
                from,
                until,
                factor,
            } if *from <= now && now < *until => Some(*factor),
            ServerFault::ClassDegraded {
                from,
                until,
                class,
                factor,
            } if *from <= now && now < *until && class.matches(kind) => Some(*factor),
            _ => None,
        });
        compose_slowdown(factors)
    }

    /// Draws the heavy-tail multiplier for one operation starting at
    /// `now`: each active [`ServerFault::TailLatency`] window contributes
    /// its factor with its probability (one Bernoulli draw per active
    /// window, in a canonical window order so the stream is insertion-
    /// order independent); hits compose multiply-then-clamp. Returns 1
    /// when no window is active or no draw hits.
    pub fn tail_draw(&self, now: SimTime, rng: &mut SimRng) -> f64 {
        let mut active: Vec<(SimTime, SimTime, f64, f64)> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                ServerFault::TailLatency {
                    from,
                    until,
                    probability,
                    factor,
                } if *from <= now && now < *until => Some((*from, *until, *probability, *factor)),
                _ => None,
            })
            .collect();
        active.sort_by(|a, b| {
            (a.0, a.1)
                .cmp(&(b.0, b.1))
                .then(a.2.total_cmp(&b.2))
                .then(a.3.total_cmp(&b.3))
        });
        compose_slowdown(
            active
                .into_iter()
                .filter(|&(_, _, p, _)| rng.chance(p))
                .map(|(_, _, _, factor)| factor),
        )
    }

    /// Stall status for an operation starting at `now`. Overlapping stall
    /// windows compose to the most severe: any forever-stall wins, else
    /// the latest release.
    pub fn stall_at(&self, now: SimTime) -> StallState {
        let mut state = StallState::Clear;
        for f in &self.faults {
            let ServerFault::Stall { since, release } = f else {
                continue;
            };
            if *since > now {
                continue;
            }
            match (*release, state) {
                (None, _) => return StallState::Forever,
                (Some(r), _) if r <= now => {}
                (Some(r), StallState::Until(prev)) => state = StallState::Until(prev.max(r)),
                (Some(r), _) => state = StallState::Until(r),
            }
        }
        state
    }

    /// True if a space-exhaustion window covers `now`: writes fail with
    /// [`IoFault::NoSpace`], reads are unaffected.
    pub fn no_space_at(&self, now: SimTime) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, ServerFault::SpaceExhausted { from, until }
                if *from <= now && now < *until)
        })
    }

    /// The active media-error map at `now`, if any: `(seed, bad_ppm)` of
    /// the earliest-onset [`ServerFault::MediaErrors`] whose `from` has
    /// passed (media damage is permanent, so there is no window end; the
    /// earliest onset wins so overlapping scripts stay deterministic).
    pub fn media_map_at(&self, now: SimTime) -> Option<(u64, u32)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                ServerFault::MediaErrors {
                    from,
                    seed,
                    bad_ppm,
                } if *from <= now => Some((*from, *seed, *bad_ppm)),
                _ => None,
            })
            .min_by_key(|&(from, seed, ppm)| (from, seed, ppm))
            .map(|(_, seed, ppm)| (seed, ppm))
    }

    /// True if any crash instant lies in `(since, now]` — the caller must
    /// wipe the server's stores.
    pub fn crash_due(&self, since: SimTime, now: SimTime) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, ServerFault::Crash { at, .. } if *at > since && *at <= now))
    }
}

/// Multiply-then-clamp composition of slowdown factors: sort into a
/// canonical (total) order, take the product, clamp into
/// `[1, MAX_SLOWDOWN]`. Sorting first makes the floating-point product a
/// pure function of the factor *multiset*, not of fault insertion order.
fn compose_slowdown(factors: impl Iterator<Item = f64>) -> f64 {
    let mut factors: Vec<f64> = factors.collect();
    if factors.is_empty() {
        return 1.0;
    }
    factors.sort_by(f64::total_cmp);
    factors
        .into_iter()
        .product::<f64>()
        .clamp(1.0, MAX_SLOWDOWN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn empty_plan_is_healthy() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert!(!p.offline_at(t(5)));
        assert_eq!(p.error_rate_at(t(5)), 0.0);
        assert_eq!(p.slowdown_at(t(5)), 1.0);
        assert!(!p.crash_due(SimTime::ZERO, t(100)));
    }

    #[test]
    fn crash_window_and_due() {
        let p = FaultPlan::new().with(ServerFault::Crash {
            at: t(10),
            recover_at: t(20),
        });
        assert!(!p.offline_at(t(9)));
        assert!(p.offline_at(t(10)));
        assert!(p.offline_at(t(19)));
        assert!(!p.offline_at(t(20)));
        assert!(!p.crash_due(SimTime::ZERO, t(9)));
        assert!(p.crash_due(t(9), t(10)));
        assert!(p.crash_due(SimTime::ZERO, t(100)));
        assert!(!p.crash_due(t(10), t(100)), "crash at 10 already applied");
    }

    #[test]
    fn transient_window_takes_max_rate() {
        let p = FaultPlan::new()
            .with(ServerFault::TransientErrors {
                from: t(1),
                until: t(10),
                error_rate: 0.25,
            })
            .with(ServerFault::TransientErrors {
                from: t(5),
                until: t(8),
                error_rate: 0.75,
            });
        assert_eq!(p.error_rate_at(t(0)), 0.0);
        assert_eq!(p.error_rate_at(t(2)), 0.25);
        assert_eq!(p.error_rate_at(t(6)), 0.75);
        assert_eq!(p.error_rate_at(t(10)), 0.0);
    }

    #[test]
    fn degraded_windows_stack() {
        let p = FaultPlan::new()
            .with(ServerFault::Degraded {
                from: t(0),
                until: t(10),
                factor: 2.0,
            })
            .with(ServerFault::Degraded {
                from: t(5),
                until: t(10),
                factor: 3.0,
            });
        assert_eq!(p.slowdown_at(t(1)), 2.0);
        assert_eq!(p.slowdown_at(t(6)), 6.0);
        assert_eq!(p.slowdown_at(t(11)), 1.0);
    }

    #[test]
    #[should_panic(expected = "recover after")]
    fn rejects_inverted_crash() {
        FaultPlan::new().with(ServerFault::Crash {
            at: t(5),
            recover_at: t(5),
        });
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn rejects_bad_rate() {
        FaultPlan::new().with(ServerFault::TransientErrors {
            from: t(0),
            until: t(1),
            error_rate: 1.5,
        });
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn rejects_speedup() {
        FaultPlan::new().with(ServerFault::Degraded {
            from: t(0),
            until: t(1),
            factor: 0.5,
        });
    }

    #[test]
    fn slowdown_composition_is_insertion_order_independent() {
        // Factors chosen so the unsorted product differs in the last ulp
        // between orders; the canonical sort makes both plans identical.
        let windows = [1.1, 3.7, 2.3, 1.9, 5.3];
        let forward = windows.iter().fold(FaultPlan::new(), |p, &factor| {
            p.with(ServerFault::Degraded {
                from: t(0),
                until: t(10),
                factor,
            })
        });
        let reverse = windows.iter().rev().fold(FaultPlan::new(), |p, &factor| {
            p.with(ServerFault::Degraded {
                from: t(0),
                until: t(10),
                factor,
            })
        });
        assert_eq!(
            forward.slowdown_at(t(5)).to_bits(),
            reverse.slowdown_at(t(5)).to_bits(),
            "multiply-then-clamp must be a pure function of the window set"
        );
    }

    #[test]
    fn slowdown_clamps_at_max() {
        let mut p = FaultPlan::new();
        for _ in 0..8 {
            p = p.with(ServerFault::Degraded {
                from: t(0),
                until: t(10),
                factor: 100.0,
            });
        }
        assert_eq!(p.slowdown_at(t(5)), MAX_SLOWDOWN);
    }

    #[test]
    fn class_degraded_applies_to_its_class_only() {
        let p = FaultPlan::new()
            .with(ServerFault::ClassDegraded {
                from: t(0),
                until: t(10),
                class: OpClass::Write,
                factor: 4.0,
            })
            .with(ServerFault::Degraded {
                from: t(0),
                until: t(10),
                factor: 2.0,
            });
        assert_eq!(p.slowdown_for(t(5), IoKind::Write), 8.0);
        assert_eq!(p.slowdown_for(t(5), IoKind::Read), 2.0);
        assert_eq!(p.slowdown_at(t(5)), 2.0, "class windows are per-kind only");
        assert_eq!(p.slowdown_for(t(11), IoKind::Write), 1.0);
    }

    #[test]
    fn tail_draws_are_deterministic_and_windowed() {
        let p = FaultPlan::new().with(ServerFault::TailLatency {
            from: t(1),
            until: t(10),
            probability: 0.5,
            factor: 50.0,
        });
        // Outside the window: no draw is consumed and the factor is 1.
        let mut rng = SimRng::seed(7);
        let before = rng.clone().next_u64();
        assert_eq!(p.tail_draw(t(0), &mut rng), 1.0);
        assert_eq!(rng.clone().next_u64(), before, "no draw outside windows");
        // Inside: same seed, same hit pattern.
        let draws = |seed| {
            let mut rng = SimRng::seed(seed);
            (0..64)
                .map(|_| p.tail_draw(t(5), &mut rng))
                .collect::<Vec<_>>()
        };
        let a = draws(11);
        assert_eq!(a, draws(11));
        assert!(a.contains(&50.0), "some ops draw the tail");
        assert!(a.contains(&1.0), "some ops stay fast");
    }

    #[test]
    fn stall_states_compose_to_most_severe() {
        let p = FaultPlan::new().with(ServerFault::Stall {
            since: t(10),
            release: Some(t(20)),
        });
        assert_eq!(p.stall_at(t(9)), StallState::Clear);
        assert_eq!(p.stall_at(t(10)), StallState::Until(t(20)));
        assert_eq!(p.stall_at(t(19)), StallState::Until(t(20)));
        assert_eq!(p.stall_at(t(20)), StallState::Clear, "release is exclusive");

        let overlapping = p.clone().with(ServerFault::Stall {
            since: t(15),
            release: Some(t(30)),
        });
        assert_eq!(overlapping.stall_at(t(16)), StallState::Until(t(30)));
        assert_eq!(overlapping.stall_at(t(12)), StallState::Until(t(20)));

        let forever = overlapping.with(ServerFault::Stall {
            since: t(18),
            release: None,
        });
        assert_eq!(forever.stall_at(t(19)), StallState::Forever);
        assert_eq!(forever.stall_at(t(16)), StallState::Until(t(30)));
    }

    #[test]
    fn space_exhaustion_is_windowed() {
        let p = FaultPlan::new().with(ServerFault::SpaceExhausted {
            from: t(5),
            until: t(10),
        });
        assert!(!p.no_space_at(t(4)));
        assert!(p.no_space_at(t(5)));
        assert!(p.no_space_at(t(9)));
        assert!(!p.no_space_at(t(10)), "window end is exclusive");
    }

    #[test]
    fn media_map_onset_is_permanent_and_earliest_wins() {
        let p = FaultPlan::new()
            .with(ServerFault::MediaErrors {
                from: t(8),
                seed: 99,
                bad_ppm: 100,
            })
            .with(ServerFault::MediaErrors {
                from: t(3),
                seed: 7,
                bad_ppm: 1000,
            });
        assert_eq!(p.media_map_at(t(2)), None);
        assert_eq!(p.media_map_at(t(3)), Some((7, 1000)));
        assert_eq!(p.media_map_at(t(100)), Some((7, 1000)), "earliest onset");
    }

    #[test]
    #[should_panic(expected = "space-exhaustion window")]
    fn rejects_empty_space_window() {
        FaultPlan::new().with(ServerFault::SpaceExhausted {
            from: t(5),
            until: t(5),
        });
    }

    #[test]
    #[should_panic(expected = "bad_ppm")]
    fn rejects_zero_media_density() {
        FaultPlan::new().with(ServerFault::MediaErrors {
            from: t(0),
            seed: 1,
            bad_ppm: 0,
        });
    }

    #[test]
    #[should_panic(expected = "stall must release")]
    fn rejects_inverted_stall() {
        FaultPlan::new().with(ServerFault::Stall {
            since: t(5),
            release: Some(t(5)),
        });
    }

    #[test]
    #[should_panic(expected = "tail probability")]
    fn rejects_bad_tail_probability() {
        FaultPlan::new().with(ServerFault::TailLatency {
            from: t(0),
            until: t(1),
            probability: 0.0,
            factor: 2.0,
        });
    }
}
