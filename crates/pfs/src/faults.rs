//! Scriptable server-level fault injection.
//!
//! [`s4d_storage::FaultyDevice`] degrades a *device* by operation number;
//! this module scripts whole-*server* failures on the simulation clock: a
//! hard crash that loses all stored data, a window of transient
//! (retryable) errors, or a slowdown window. A [`FaultPlan`] is installed
//! on a [`FileServer`](crate::FileServer) and queried as simulated time
//! advances; the middleware above observes the resulting [`IoFault`]s on
//! completed sub-requests and reacts (retry, quarantine, fall back to the
//! other tier).

use s4d_sim::SimTime;
use serde::{Deserialize, Serialize};

/// The error a faulted server attaches to a completed sub-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoFault {
    /// The server is offline (crashed); its stored data is lost. Not
    /// retryable against the same server until it recovers.
    Offline,
    /// A transient I/O error (controller hiccup, dropped RPC). The
    /// operation had no effect and may be retried.
    Transient,
}

impl std::fmt::Display for IoFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFault::Offline => write!(f, "server offline"),
            IoFault::Transient => write!(f, "transient i/o error"),
        }
    }
}

/// One scripted server fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerFault {
    /// The server hard-crashes at `at`, losing every stored byte, and
    /// comes back (empty) at `recover_at`. While down, every sub-request
    /// completes with [`IoFault::Offline`].
    Crash {
        /// Crash instant.
        at: SimTime,
        /// First instant the server is reachable again.
        recover_at: SimTime,
    },
    /// In `[from, until)` each sub-request fails with probability
    /// `error_rate`, completing with [`IoFault::Transient`] and no store
    /// effect.
    TransientErrors {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Per-operation failure probability in `(0, 1]`.
        error_rate: f64,
    },
    /// In `[from, until)` device service times are multiplied by `factor`
    /// (a degrading server). For op-count-keyed schedules, wrap the
    /// device in [`s4d_storage::FaultyDevice`] instead.
    Degraded {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Service-time multiplier (must be ≥ 1).
        factor: f64,
    },
}

/// A schedule of [`ServerFault`]s for one server, driven by the sim clock.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<ServerFault>,
}

impl FaultPlan {
    /// An empty (always-healthy) plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault to the schedule.
    ///
    /// # Panics
    ///
    /// Panics on an empty or inverted window, an error rate outside
    /// `(0, 1]`, or a slowdown factor below 1.
    pub fn with(mut self, fault: ServerFault) -> Self {
        match fault {
            ServerFault::Crash { at, recover_at } => {
                assert!(recover_at > at, "crash must recover after it happens");
            }
            ServerFault::TransientErrors {
                from,
                until,
                error_rate,
            } => {
                assert!(until > from, "error window must be non-empty");
                assert!(
                    error_rate > 0.0 && error_rate <= 1.0,
                    "error rate must be in (0, 1]"
                );
            }
            ServerFault::Degraded {
                from,
                until,
                factor,
            } => {
                assert!(until > from, "degraded window must be non-empty");
                assert!(
                    factor.is_finite() && factor >= 1.0,
                    "slowdown factor must be >= 1"
                );
            }
        }
        self.faults.push(fault);
        self
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[ServerFault] {
        &self.faults
    }

    /// True if a crash window covers `now`.
    pub fn offline_at(&self, now: SimTime) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, ServerFault::Crash { at, recover_at }
                if *at <= now && now < *recover_at)
        })
    }

    /// Transient-error probability at `now` (0 outside every window; the
    /// maximum over overlapping windows).
    pub fn error_rate_at(&self, now: SimTime) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                ServerFault::TransientErrors {
                    from,
                    until,
                    error_rate,
                } if *from <= now && now < *until => Some(*error_rate),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Service-time multiplier at `now` (1 when healthy; overlapping
    /// windows stack multiplicatively, like [`s4d_storage::Fault`]s).
    pub fn slowdown_at(&self, now: SimTime) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                ServerFault::Degraded {
                    from,
                    until,
                    factor,
                } if *from <= now && now < *until => Some(*factor),
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// True if any crash instant lies in `(since, now]` — the caller must
    /// wipe the server's stores.
    pub fn crash_due(&self, since: SimTime, now: SimTime) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, ServerFault::Crash { at, .. } if *at > since && *at <= now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn empty_plan_is_healthy() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert!(!p.offline_at(t(5)));
        assert_eq!(p.error_rate_at(t(5)), 0.0);
        assert_eq!(p.slowdown_at(t(5)), 1.0);
        assert!(!p.crash_due(SimTime::ZERO, t(100)));
    }

    #[test]
    fn crash_window_and_due() {
        let p = FaultPlan::new().with(ServerFault::Crash {
            at: t(10),
            recover_at: t(20),
        });
        assert!(!p.offline_at(t(9)));
        assert!(p.offline_at(t(10)));
        assert!(p.offline_at(t(19)));
        assert!(!p.offline_at(t(20)));
        assert!(!p.crash_due(SimTime::ZERO, t(9)));
        assert!(p.crash_due(t(9), t(10)));
        assert!(p.crash_due(SimTime::ZERO, t(100)));
        assert!(!p.crash_due(t(10), t(100)), "crash at 10 already applied");
    }

    #[test]
    fn transient_window_takes_max_rate() {
        let p = FaultPlan::new()
            .with(ServerFault::TransientErrors {
                from: t(1),
                until: t(10),
                error_rate: 0.25,
            })
            .with(ServerFault::TransientErrors {
                from: t(5),
                until: t(8),
                error_rate: 0.75,
            });
        assert_eq!(p.error_rate_at(t(0)), 0.0);
        assert_eq!(p.error_rate_at(t(2)), 0.25);
        assert_eq!(p.error_rate_at(t(6)), 0.75);
        assert_eq!(p.error_rate_at(t(10)), 0.0);
    }

    #[test]
    fn degraded_windows_stack() {
        let p = FaultPlan::new()
            .with(ServerFault::Degraded {
                from: t(0),
                until: t(10),
                factor: 2.0,
            })
            .with(ServerFault::Degraded {
                from: t(5),
                until: t(10),
                factor: 3.0,
            });
        assert_eq!(p.slowdown_at(t(1)), 2.0);
        assert_eq!(p.slowdown_at(t(6)), 6.0);
        assert_eq!(p.slowdown_at(t(11)), 1.0);
    }

    #[test]
    #[should_panic(expected = "recover after")]
    fn rejects_inverted_crash() {
        FaultPlan::new().with(ServerFault::Crash {
            at: t(5),
            recover_at: t(5),
        });
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn rejects_bad_rate() {
        FaultPlan::new().with(ServerFault::TransientErrors {
            from: t(0),
            until: t(1),
            error_rate: 1.5,
        });
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn rejects_speedup() {
        FaultPlan::new().with(ServerFault::Degraded {
            from: t(0),
            until: t(1),
            factor: 0.5,
        });
    }
}
