//! The parallel file system: namespace + server array.

use std::collections::HashMap;

use s4d_sim::SimRng;
use s4d_storage::{HddConfig, IoKind, SsdConfig, StoreMode};

use crate::error::PfsError;
use crate::layout::{StripeLayout, SubRange};
use crate::network::NetworkConfig;
use crate::server::FileServer;
use crate::types::FileId;

/// Metadata of one parallel file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// The file's identifier.
    pub id: FileId,
    /// The file's name.
    pub name: String,
    /// Current size: one past the highest byte ever planned for writing.
    pub size: u64,
}

/// A PVFS2-style parallel file system: a stripe layout, a file namespace,
/// and an array of [`FileServer`]s.
///
/// `Pfs` plans request decompositions and owns the servers; it contains no
/// event loop — the middleware runner drives the servers' explicit-time
/// state machines.
///
/// ```
/// use s4d_pfs::{NetworkConfig, Pfs, StripeLayout};
/// use s4d_storage::{presets, StoreMode};
///
/// let mut pfs = Pfs::hdd_cluster(
///     "opfs",
///     StripeLayout::new(64 * 1024, 8),
///     presets::hdd_seagate_st3250(),
///     NetworkConfig::gigabit_ethernet(),
///     StoreMode::Timing,
///     42,
/// );
/// let f = pfs.create("data.out")?;
/// let plan = pfs.plan(f, s4d_storage::IoKind::Write, 0, 1 << 20)?;
/// assert_eq!(plan.len(), 8);
/// # Ok::<(), s4d_pfs::PfsError>(())
/// ```
#[derive(Debug)]
pub struct Pfs {
    name: String,
    layout: StripeLayout,
    servers: Vec<FileServer>,
    files: HashMap<FileId, FileMeta>,
    by_name: HashMap<String, FileId>,
    next_file: u64,
}

impl Pfs {
    /// Creates a file system over the given pre-built servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers.len()` differs from the layout's server count.
    pub fn new(name: impl Into<String>, layout: StripeLayout, servers: Vec<FileServer>) -> Self {
        assert_eq!(
            servers.len(),
            layout.server_count(),
            "server array must match layout width"
        );
        Pfs {
            name: name.into(),
            layout,
            servers,
            files: HashMap::new(),
            by_name: HashMap::new(),
            next_file: 0,
        }
    }

    /// Builds a file system of identical HDD servers (the paper's DServers).
    pub fn hdd_cluster(
        name: impl Into<String>,
        layout: StripeLayout,
        config: HddConfig,
        net: NetworkConfig,
        mode: StoreMode,
        seed: u64,
    ) -> Self {
        let mut rng = SimRng::seed(seed);
        let servers = (0..layout.server_count())
            .map(|i| {
                FileServer::new(
                    i,
                    Box::new(config.clone().build()),
                    config.capacity(),
                    net,
                    mode,
                    None,
                    rng.fork(i as u64),
                )
            })
            .collect();
        Pfs::new(name, layout, servers)
    }

    /// Builds a file system of identical SSD servers (the paper's CServers).
    pub fn ssd_cluster(
        name: impl Into<String>,
        layout: StripeLayout,
        config: SsdConfig,
        net: NetworkConfig,
        mode: StoreMode,
        seed: u64,
    ) -> Self {
        let mut rng = SimRng::seed(seed);
        let servers = (0..layout.server_count())
            .map(|i| {
                FileServer::new(
                    i,
                    Box::new(config.clone().build()),
                    config.capacity(),
                    net,
                    mode,
                    None,
                    rng.fork(i as u64),
                )
            })
            .collect();
        Pfs::new(name, layout, servers)
    }

    /// The file system's name (e.g. `"opfs"` / `"cpfs"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stripe layout.
    pub fn layout(&self) -> StripeLayout {
        self.layout
    }

    /// Number of file servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Shared access to a server.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::BadServer`] if `index` is out of range.
    pub fn server(&self, index: usize) -> Result<&FileServer, PfsError> {
        self.servers.get(index).ok_or(PfsError::BadServer {
            index,
            count: self.servers.len(),
        })
    }

    /// Mutable access to a server.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::BadServer`] if `index` is out of range.
    pub fn server_mut(&mut self, index: usize) -> Result<&mut FileServer, PfsError> {
        let count = self.servers.len();
        self.servers
            .get_mut(index)
            .ok_or(PfsError::BadServer { index, count })
    }

    /// Iterator over all servers.
    pub fn iter_servers(&self) -> impl Iterator<Item = &FileServer> {
        self.servers.iter()
    }

    /// Installs a scripted fault plan on one server.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::BadServer`] if `server` is out of range.
    pub fn set_fault_plan(
        &mut self,
        server: usize,
        plan: crate::faults::FaultPlan,
    ) -> Result<(), PfsError> {
        self.server_mut(server)?.set_fault_plan(plan);
        Ok(())
    }

    /// Applies crash effects due by `now` on every server, so direct
    /// store reads ([`FileServer::peek_store`]) never observe data a
    /// scripted crash should already have destroyed.
    pub fn advance_faults(&mut self, now: s4d_sim::SimTime) {
        for s in &mut self.servers {
            s.advance_faults(now);
        }
    }

    /// Creates a file.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::FileExists`] if the name is taken.
    pub fn create(&mut self, name: impl Into<String>) -> Result<FileId, PfsError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(PfsError::FileExists(name));
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.by_name.insert(name.clone(), id);
        self.files.insert(id, FileMeta { id, name, size: 0 });
        Ok(id)
    }

    /// Opens an existing file by name.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::NoSuchFile`] if absent.
    pub fn open(&self, name: &str) -> Result<FileId, PfsError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| PfsError::NoSuchFile(name.to_owned()))
    }

    /// Opens a file, creating it if absent.
    pub fn create_or_open(&mut self, name: &str) -> FileId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.by_name.insert(name.to_owned(), id);
        self.files.insert(
            id,
            FileMeta {
                id,
                name: name.to_owned(),
                size: 0,
            },
        );
        id
    }

    /// Metadata of a file.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::UnknownFile`] if the id is not known.
    pub fn meta(&self, file: FileId) -> Result<&FileMeta, PfsError> {
        self.files.get(&file).ok_or(PfsError::UnknownFile(file))
    }

    /// Marks a file as (at least) `size` bytes long without touching data —
    /// the pre-existing input files of read-only benchmarks.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::UnknownFile`] if the id is not known.
    pub fn set_size(&mut self, file: FileId, size: u64) -> Result<(), PfsError> {
        let meta = self
            .files
            .get_mut(&file)
            .ok_or(PfsError::UnknownFile(file))?;
        meta.size = meta.size.max(size);
        Ok(())
    }

    /// Deletes a file, dropping its data on every server.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::UnknownFile`] if the id is not known.
    pub fn delete(&mut self, file: FileId) -> Result<(), PfsError> {
        let meta = self
            .files
            .remove(&file)
            .ok_or(PfsError::UnknownFile(file))?;
        self.by_name.remove(&meta.name);
        for s in &mut self.servers {
            s.delete_file(file);
        }
        Ok(())
    }

    /// Plans the decomposition of a request into per-server sub-ranges.
    /// Writes extend the file size.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::UnknownFile`] for a bad id and
    /// [`PfsError::EmptyRequest`] for zero length.
    pub fn plan(
        &mut self,
        file: FileId,
        kind: IoKind,
        offset: u64,
        len: u64,
    ) -> Result<Vec<SubRange>, PfsError> {
        let meta = self
            .files
            .get_mut(&file)
            .ok_or(PfsError::UnknownFile(file))?;
        if len == 0 {
            return Err(PfsError::EmptyRequest);
        }
        if kind.is_write() {
            meta.size = meta.size.max(offset + len);
        }
        Ok(self.layout.split(offset, len))
    }

    /// Discards stored data of `[offset, offset+len)` on every involved
    /// server (cache eviction: metadata-only, no simulated I/O).
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::UnknownFile`] if the id is not known.
    pub fn discard(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), PfsError> {
        if !self.files.contains_key(&file) {
            return Err(PfsError::UnknownFile(file));
        }
        for sub in self.layout.split(offset, len) {
            if let Some(s) = self.servers.get_mut(sub.server) {
                s.discard_range(file, sub.local_offset, sub.len);
            }
        }
        Ok(())
    }

    /// Total bytes stored across all servers.
    pub fn stored_bytes(&self) -> u64 {
        self.servers.iter().map(|s| s.stored_bytes()).sum()
    }

    /// Iterates over the metadata of every live file.
    pub fn iter_files(&self) -> impl Iterator<Item = &FileMeta> {
        self.files.values()
    }

    /// Writes `len` bytes at `offset` directly into the server stores,
    /// bypassing the service queues — the durable effect of I/O whose
    /// *timing* was simulated elsewhere (journal appends, checkpoint
    /// installs). Extends the file size like a planned write. In timing
    /// mode only extent coverage is recorded and `data` is ignored; in
    /// functional mode a missing `data` stores zeroes.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::UnknownFile`] if the id is not known,
    /// [`PfsError::NoSpace`] if any involved server sits in a
    /// space-exhaustion window, and [`PfsError::MediaError`] if the range
    /// touches a bad device sector — in the fault cases no server store
    /// is modified and the file size is unchanged (all-or-nothing).
    ///
    /// # Panics
    ///
    /// Panics if `data` is present but shorter than `len`.
    pub fn apply_bytes(
        &mut self,
        file: FileId,
        offset: u64,
        len: u64,
        data: Option<&[u8]>,
    ) -> Result<(), PfsError> {
        if !self.files.contains_key(&file) {
            return Err(PfsError::UnknownFile(file));
        }
        if len == 0 {
            return Ok(());
        }
        if let Some(d) = data {
            assert!(d.len() as u64 >= len, "data shorter than extent");
        }
        // Gate the whole call on every involved server *before* any
        // effect, so a scripted ENOSPC/media fault fails it atomically.
        for sub in self.layout.split(offset, len) {
            if let Some(s) = self.servers.get(sub.server) {
                match s.bypass_write_fault(file, sub.local_offset, sub.len) {
                    Some(crate::faults::IoFault::NoSpace) => {
                        return Err(PfsError::NoSpace { server: sub.server });
                    }
                    Some(_) => {
                        return Err(PfsError::MediaError { server: sub.server });
                    }
                    None => {}
                }
            }
        }
        if let Some(meta) = self.files.get_mut(&file) {
            meta.size = meta.size.max(offset + len);
        }
        for sub in self.layout.split(offset, len) {
            let mut local = sub.local_offset;
            for (file_off, seg_len) in self.layout.file_segments(&sub) {
                let slice = data.and_then(|d| {
                    d.get((file_off - offset) as usize..)
                        .and_then(|tail| tail.get(..seg_len as usize))
                });
                if let Some(s) = self.servers.get_mut(sub.server) {
                    s.poke_store(file, local, seg_len, slice);
                }
                local += seg_len;
            }
        }
        Ok(())
    }

    /// Reads `len` bytes at `offset` directly from the server stores,
    /// zero-filled over unwritten holes. Returns `Ok(None)` when any
    /// involved server keeps only timing metadata (no bytes to read).
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::UnknownFile`] if the id is not known and
    /// [`PfsError::MediaError`] if the range touches a bad device sector
    /// on any involved server (the data there is unreadable).
    pub fn read_bytes(
        &self,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Option<Vec<u8>>, PfsError> {
        if !self.files.contains_key(&file) {
            return Err(PfsError::UnknownFile(file));
        }
        let mut out = vec![0u8; len as usize];
        for sub in self.layout.split(offset, len) {
            let Some(server) = self.servers.get(sub.server) else {
                continue; // layout splits stay within the server count
            };
            if server
                .bypass_read_fault(file, sub.local_offset, sub.len)
                .is_some()
            {
                return Err(PfsError::MediaError { server: sub.server });
            }
            if server.store_mode() == s4d_storage::StoreMode::Timing {
                return Ok(None);
            }
            let mut local = sub.local_offset;
            for (file_off, seg_len) in self.layout.file_segments(&sub) {
                if let Some(data) = server.peek_store(file, local, seg_len) {
                    let at = (file_off - offset) as usize;
                    if let Some(dst) = out.get_mut(at..at + seg_len as usize) {
                        dst.copy_from_slice(&data);
                    }
                }
                local += seg_len;
            }
        }
        Ok(Some(out))
    }

    /// How many bytes of `[offset, offset+len)` are covered by previous
    /// writes across the involved servers. Works in both store modes.
    ///
    /// # Errors
    ///
    /// Returns [`PfsError::UnknownFile`] if the id is not known.
    pub fn covered_bytes(&self, file: FileId, offset: u64, len: u64) -> Result<u64, PfsError> {
        if !self.files.contains_key(&file) {
            return Err(PfsError::UnknownFile(file));
        }
        let mut covered = 0;
        for sub in self.layout.split(offset, len) {
            if let Some(s) = self.servers.get(sub.server) {
                covered += s.peek_coverage(file, sub.local_offset, sub.len);
            }
        }
        Ok(covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_storage::presets;

    fn pfs() -> Pfs {
        Pfs::hdd_cluster(
            "opfs",
            StripeLayout::new(64 * 1024, 8),
            presets::hdd_seagate_st3250(),
            NetworkConfig::ideal(),
            StoreMode::Timing,
            7,
        )
    }

    #[test]
    fn namespace_lifecycle() {
        let mut p = pfs();
        let f = p.create("a").unwrap();
        assert_eq!(p.open("a").unwrap(), f);
        assert_eq!(p.create("a"), Err(PfsError::FileExists("a".into())));
        assert_eq!(p.open("b"), Err(PfsError::NoSuchFile("b".into())));
        assert_eq!(p.create_or_open("a"), f);
        let g = p.create_or_open("b");
        assert_ne!(f, g);
        assert_eq!(p.meta(f).unwrap().name, "a");
        p.delete(f).unwrap();
        assert_eq!(p.open("a"), Err(PfsError::NoSuchFile("a".into())));
        assert_eq!(p.meta(f), Err(PfsError::UnknownFile(f)));
        assert_eq!(p.delete(f), Err(PfsError::UnknownFile(f)));
    }

    #[test]
    fn plan_validates_and_tracks_size() {
        let mut p = pfs();
        let f = p.create("a").unwrap();
        assert_eq!(p.plan(f, IoKind::Write, 0, 0), Err(PfsError::EmptyRequest));
        assert_eq!(
            p.plan(FileId(99), IoKind::Write, 0, 1),
            Err(PfsError::UnknownFile(FileId(99)))
        );
        let subs = p.plan(f, IoKind::Write, 0, 256 * 1024).unwrap();
        assert_eq!(subs.len(), 4);
        assert_eq!(p.meta(f).unwrap().size, 256 * 1024);
        // Reads do not extend the size.
        p.plan(f, IoKind::Read, 0, 1024 * 1024).unwrap();
        assert_eq!(p.meta(f).unwrap().size, 256 * 1024);
        p.set_size(f, 1 << 30).unwrap();
        assert_eq!(p.meta(f).unwrap().size, 1 << 30);
    }

    #[test]
    fn server_access_bounds() {
        let mut p = pfs();
        assert_eq!(p.server_count(), 8);
        assert!(p.server(7).is_ok());
        assert_eq!(
            p.server(8).unwrap_err(),
            PfsError::BadServer { index: 8, count: 8 }
        );
        assert!(p.server_mut(8).is_err());
        assert_eq!(p.iter_servers().count(), 8);
        assert_eq!(p.name(), "opfs");
        assert_eq!(p.stored_bytes(), 0);
    }

    #[test]
    fn ssd_cluster_builds() {
        let p = Pfs::ssd_cluster(
            "cpfs",
            StripeLayout::new(64 * 1024, 4),
            presets::ssd_ocz_revodrive_x2(),
            NetworkConfig::gigabit_ethernet(),
            StoreMode::Timing,
            9,
        );
        assert_eq!(p.server_count(), 4);
    }

    #[test]
    #[should_panic(expected = "server array must match layout width")]
    fn new_rejects_mismatched_width() {
        Pfs::new("x", StripeLayout::new(4096, 3), Vec::new());
    }

    #[test]
    fn apply_and_read_bytes_round_trip() {
        let mut p = Pfs::hdd_cluster(
            "opfs",
            StripeLayout::new(4 * KIB, 3),
            presets::hdd_seagate_st3250(),
            NetworkConfig::ideal(),
            StoreMode::Functional,
            11,
        );
        let f = p.create("a").unwrap();
        // A striped range crossing several servers, at an odd offset.
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        p.apply_bytes(f, 1234, payload.len() as u64, Some(&payload))
            .unwrap();
        assert_eq!(p.meta(f).unwrap().size, 1234 + payload.len() as u64);
        let got = p.read_bytes(f, 1234, payload.len() as u64).unwrap();
        assert_eq!(got.as_deref(), Some(&payload[..]));
        assert_eq!(
            p.covered_bytes(f, 1234, payload.len() as u64).unwrap(),
            payload.len() as u64
        );
        // Holes read back zero-filled and uncovered.
        let wide = p.read_bytes(f, 0, 2000).unwrap().unwrap();
        assert!(wide[..1234].iter().all(|&b| b == 0));
        assert_eq!(&wide[1234..], &payload[..2000 - 1234]);
        assert_eq!(p.covered_bytes(f, 0, 1234).unwrap(), 0);
        // Zero-length apply is a no-op; missing data stores zeroes.
        p.apply_bytes(f, 0, 0, None).unwrap();
        p.apply_bytes(f, 0, 8, None).unwrap();
        assert_eq!(p.read_bytes(f, 0, 8).unwrap().unwrap(), vec![0u8; 8]);
        // Unknown files error on every helper.
        assert!(p.apply_bytes(FileId(99), 0, 1, None).is_err());
        assert!(p.read_bytes(FileId(99), 0, 1).is_err());
        assert!(p.covered_bytes(FileId(99), 0, 1).is_err());
        assert_eq!(p.iter_files().count(), 1);
    }

    #[test]
    fn bypass_paths_fail_atomically_under_enospc_and_media() {
        use crate::faults::{FaultPlan, ServerFault};
        use s4d_sim::SimTime;
        let mut p = Pfs::hdd_cluster(
            "cpfs",
            StripeLayout::new(4 * KIB, 3),
            presets::hdd_seagate_st3250(),
            NetworkConfig::ideal(),
            StoreMode::Functional,
            13,
        );
        let f = p.create("a").unwrap();
        p.apply_bytes(f, 0, 16, Some(&[7u8; 16])).unwrap();

        // ENOSPC on server 0: a striped write crossing it fails whole
        // with no effect anywhere and no size growth.
        p.set_fault_plan(
            0,
            FaultPlan::new().with(ServerFault::SpaceExhausted {
                from: SimTime::ZERO,
                until: SimTime::from_secs(100),
            }),
        )
        .unwrap();
        p.advance_faults(SimTime::from_secs(1));
        let err = p.apply_bytes(f, 0, 32 * KIB, None).unwrap_err();
        assert_eq!(err, PfsError::NoSpace { server: 0 });
        assert_eq!(p.meta(f).unwrap().size, 16, "failed write did not grow");
        assert_eq!(p.covered_bytes(f, 16, 32 * KIB).unwrap(), 0);
        // Reads still work under ENOSPC.
        assert_eq!(
            p.read_bytes(f, 0, 16).unwrap().unwrap(),
            vec![7u8; 16],
            "space exhaustion never fails reads"
        );
        // The window ends: writes work again.
        p.advance_faults(SimTime::from_secs(200));
        p.apply_bytes(f, 0, 32 * KIB, None).unwrap();

        // Media errors (every sector bad) fail both directions.
        p.set_fault_plan(
            1,
            FaultPlan::new().with(ServerFault::MediaErrors {
                from: SimTime::ZERO,
                seed: 5,
                bad_ppm: 1_000_000,
            }),
        )
        .unwrap();
        assert_eq!(
            p.apply_bytes(f, 0, 32 * KIB, None).unwrap_err(),
            PfsError::MediaError { server: 1 }
        );
        assert_eq!(
            p.read_bytes(f, 4 * KIB, 4 * KIB).unwrap_err(),
            PfsError::MediaError { server: 1 }
        );
        // Ranges entirely on healthy servers are unaffected (stripe 0 of
        // a 3-wide 4 KiB layout lives on server 0).
        assert!(p.read_bytes(f, 0, 16).is_ok());
    }

    #[test]
    fn read_bytes_in_timing_mode_returns_none() {
        let mut p = pfs();
        let f = p.create("a").unwrap();
        p.apply_bytes(f, 0, 4 * KIB, None).unwrap();
        assert_eq!(p.read_bytes(f, 0, 4 * KIB).unwrap(), None);
        assert_eq!(p.covered_bytes(f, 0, 4 * KIB).unwrap(), 4 * KIB);
    }

    const KIB: u64 = 1024;
}
