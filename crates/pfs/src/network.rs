//! Interconnect cost model.

use serde::{Deserialize, Serialize};

/// Per-server network costs applied to each sub-request.
///
/// The paper's cluster uses Gigabit Ethernet. We model the interconnect as
/// a pipeline stage in series with the storage device: each sub-request pays
/// a fixed RPC latency, and its transfer proceeds at the *slower* of the
/// device rate and the link rate (classic pipelined bottleneck), so the
/// added transfer cost is `len × max(0, β_net − β_dev)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Fixed per-sub-request round-trip software/RPC latency, seconds.
    rpc_latency: f64,
    /// Link bandwidth, bytes per second.
    bandwidth: f64,
}

impl NetworkConfig {
    /// Creates a network configuration.
    ///
    /// # Panics
    ///
    /// Panics if `rpc_latency` is negative/non-finite or `bandwidth` is not
    /// positive and finite.
    pub fn new(rpc_latency: f64, bandwidth: f64) -> Self {
        assert!(
            rpc_latency.is_finite() && rpc_latency >= 0.0,
            "rpc_latency must be non-negative"
        );
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be positive"
        );
        NetworkConfig {
            rpc_latency,
            bandwidth,
        }
    }

    /// Gigabit Ethernet as deployed on the paper's testbed: ~117 MB/s of
    /// useful payload bandwidth and 200 µs of per-request overhead (RPC
    /// round trip plus server request handling). EXPERIMENTS.md discusses
    /// this parameter's calibration: higher values reproduce the paper's
    /// *absolute* small-request throughput more closely but suppress the
    /// relative S4D gains; 200 µs matches the paper's relative results,
    /// which are the reproduction target.
    pub fn gigabit_ethernet() -> Self {
        NetworkConfig::new(200.0e-6, 117.0e6)
    }

    /// An effectively free interconnect (for isolating device behaviour in
    /// tests and ablations).
    pub fn ideal() -> Self {
        NetworkConfig::new(0.0, f64::MAX / 4.0)
    }

    /// Fixed per-sub-request latency, seconds.
    pub fn rpc_latency_secs(&self) -> f64 {
        self.rpc_latency
    }

    /// Link bandwidth, bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Extra service seconds the network adds on top of a device transfer
    /// of `len` bytes at `device_rate` bytes/s.
    pub fn overhead_secs(&self, len: u64, device_rate: f64) -> f64 {
        let beta_net = 1.0 / self.bandwidth;
        let beta_dev = 1.0 / device_rate;
        self.rpc_latency + len as f64 * (beta_net - beta_dev).max(0.0)
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::gigabit_ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gige_parameters() {
        let n = NetworkConfig::gigabit_ethernet();
        assert!(n.bandwidth() > 100.0e6 && n.bandwidth() < 125.0e6);
        assert!(n.rpc_latency_secs() > 0.0);
        assert_eq!(NetworkConfig::default(), n);
    }

    #[test]
    fn overhead_is_latency_only_when_device_is_slower() {
        let n = NetworkConfig::gigabit_ethernet();
        // 100 MB/s device < 117 MB/s link: the disk is the bottleneck.
        let oh = n.overhead_secs(1_000_000, 100.0e6);
        assert!((oh - n.rpc_latency_secs()).abs() < 1e-12);
    }

    #[test]
    fn overhead_caps_fast_devices_at_link_rate() {
        let n = NetworkConfig::gigabit_ethernet();
        // 500 MB/s device behind a 117 MB/s link.
        let len = 117_000_000u64;
        let oh = n.overhead_secs(len, 500.0e6);
        let total = oh + len as f64 / 500.0e6;
        assert!((total - (n.rpc_latency_secs() + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn ideal_network_is_free() {
        let n = NetworkConfig::ideal();
        assert_eq!(n.overhead_secs(1 << 30, 1.0e6), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        NetworkConfig::new(0.0, 0.0);
    }
}
