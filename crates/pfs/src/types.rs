//! Identifier newtypes and request priorities.

use serde::{Deserialize, Serialize};

/// Identifies a file within one parallel file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Identifies one sub-request in flight. Allocated by the layer that drives
/// the servers; servers treat it as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubReqId(pub u64);

impl std::fmt::Display for SubReqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "subreq#{}", self.0)
    }
}

/// Service priority at a file server.
///
/// The paper's Rebuilder issues its reorganisation traffic as low-priority
/// I/O "to reduce the interference" with foreground requests (§III.F); a
/// server only starts a background sub-request when no normal one is
/// queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Foreground application I/O.
    Normal,
    /// Background reorganisation I/O (Rebuilder flush/fetch).
    Background,
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::Normal => "normal",
            Priority::Background => "background",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(FileId(3).to_string(), "file#3");
        assert_eq!(SubReqId(9).to_string(), "subreq#9");
        assert_eq!(Priority::Normal.to_string(), "normal");
        assert_eq!(Priority::Background.to_string(), "background");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        assert!(FileId(1) < FileId(2));
        let set: HashSet<SubReqId> = [SubReqId(1), SubReqId(1), SubReqId(2)].into();
        assert_eq!(set.len(), 2);
    }
}
