//! Round-robin striping and request decomposition.
//!
//! A parallel file is placed across `M` servers in fixed-size stripes,
//! round-robin: global stripe `k` lives on server `k mod M`, at local
//! stripe index `k / M`. A file request `[offset, offset+len)` therefore
//! decomposes into at most one *contiguous* local range per involved server
//! (plus a second range in the rare wrap cases) — the sub-requests of the
//! paper's Figure 4.

use serde::{Deserialize, Serialize};

/// One per-server piece of a decomposed file request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubRange {
    /// Index of the server holding this piece.
    pub server: usize,
    /// Offset within the server-local file object.
    pub local_offset: u64,
    /// Offset within the global file where this piece begins.
    pub file_offset: u64,
    /// Piece length in bytes.
    pub len: u64,
}

/// Round-robin striping geometry.
///
/// ```
/// use s4d_pfs::StripeLayout;
/// let l = StripeLayout::new(64 * 1024, 8);
/// // A 16 KiB request inside one stripe touches exactly one server.
/// assert_eq!(l.split(0, 16 * 1024).len(), 1);
/// // A 4 MiB aligned request touches all 8 servers.
/// assert_eq!(l.split(0, 4 * 1024 * 1024).len(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    stripe: u64,
    servers: usize,
}

impl StripeLayout {
    /// Creates a layout with the given stripe size and server count.
    ///
    /// # Panics
    ///
    /// Panics if `stripe == 0` or `servers == 0`.
    pub fn new(stripe: u64, servers: usize) -> Self {
        assert!(stripe > 0, "stripe size must be positive");
        assert!(servers > 0, "server count must be positive");
        StripeLayout { stripe, servers }
    }

    /// Stripe size in bytes (the paper's `str`).
    pub fn stripe_size(&self) -> u64 {
        self.stripe
    }

    /// Number of servers (the paper's `M` or `N`).
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// Number of distinct servers a request touches — the paper's `m`
    /// (Equation 6): `min(E − B + 1, M)` for beginning stripe `B` and
    /// ending stripe `E`.
    pub fn involved_servers(&self, offset: u64, len: u64) -> usize {
        if len == 0 {
            return 0;
        }
        let b = offset / self.stripe;
        let e = (offset + len - 1) / self.stripe;
        ((e - b + 1) as usize).min(self.servers)
    }

    /// Size of the largest per-server sub-request — the paper's `s_m`
    /// (Table II), computed directly from the decomposition.
    pub fn max_subrequest(&self, offset: u64, len: u64) -> u64 {
        self.split(offset, len)
            .iter()
            .fold(std::collections::HashMap::new(), |mut acc, sr| {
                *acc.entry(sr.server).or_insert(0u64) += sr.len;
                acc
            })
            .into_values()
            .max()
            .unwrap_or(0)
    }

    /// Decomposes `[offset, offset+len)` into per-server contiguous local
    /// ranges, merging stripes that are adjacent in a server's local space.
    ///
    /// Sub-ranges are returned ordered by file offset. A zero-length request
    /// yields no sub-ranges.
    pub fn split(&self, offset: u64, len: u64) -> Vec<SubRange> {
        let mut out: Vec<SubRange> = Vec::new();
        if len == 0 {
            return out;
        }
        // Saturate instead of panicking: an end past u64::MAX clips the
        // split to the addressable range.
        let end = offset.saturating_add(len);
        let first = offset / self.stripe;
        let last = (end - 1) / self.stripe;
        for k in first..=last {
            let stripe_start = k * self.stripe;
            let lo = stripe_start.max(offset);
            let hi = (stripe_start + self.stripe).min(end);
            let server = (k % self.servers as u64) as usize;
            let local = (k / self.servers as u64) * self.stripe + (lo - stripe_start);
            // Merge with the previous piece on the same server when the
            // local ranges are contiguous.
            // Within one split, pieces land on a server in increasing local-
            // stripe order, so local contiguity is exactly the "previous
            // stripe fully covered, next starts at its local beginning" case.
            if let Some(prev) = out.iter_mut().rev().find(|p| p.server == server) {
                if prev.local_offset + prev.len == local {
                    prev.len += hi - lo;
                    continue;
                }
            }
            out.push(SubRange {
                server,
                local_offset: local,
                file_offset: lo,
                len: hi - lo,
            });
        }
        out
    }

    /// Expands a sub-range back into the global-file segments it carries.
    ///
    /// A merged sub-range is contiguous in the server's local space but may
    /// correspond to several stripes of the global file, spaced
    /// `servers × stripe` apart. Returns `(file_offset, len)` pairs in file
    /// order; their lengths sum to `sub.len`.
    pub fn file_segments(&self, sub: &SubRange) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut local = sub.local_offset;
        let mut remaining = sub.len;
        while remaining > 0 {
            let local_stripe = local / self.stripe;
            let within = local % self.stripe;
            let global_stripe = local_stripe * self.servers as u64 + sub.server as u64;
            let file_off = global_stripe * self.stripe + within;
            let chunk = remaining.min(self.stripe - within);
            out.push((file_off, chunk));
            local += chunk;
            remaining -= chunk;
        }
        out
    }

    /// Maps a single file offset to `(server, local_offset)`.
    pub fn locate(&self, offset: u64) -> (usize, u64) {
        let k = offset / self.stripe;
        let server = (k % self.servers as u64) as usize;
        let local = (k / self.servers as u64) * self.stripe + offset % self.stripe;
        (server, local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const KIB: u64 = 1024;

    fn layout() -> StripeLayout {
        StripeLayout::new(64 * KIB, 8)
    }

    #[test]
    fn single_stripe_request_hits_one_server() {
        let l = layout();
        let subs = l.split(0, 16 * KIB);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].server, 0);
        assert_eq!(subs[0].local_offset, 0);
        assert_eq!(subs[0].len, 16 * KIB);
        assert_eq!(l.involved_servers(0, 16 * KIB), 1);
        assert_eq!(l.max_subrequest(0, 16 * KIB), 16 * KIB);
    }

    #[test]
    fn unaligned_small_request_inside_later_stripe() {
        let l = layout();
        // Offset 130 KiB = stripe 2 (server 2), 2 KiB into it.
        let subs = l.split(130 * KIB, 4 * KIB);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].server, 2);
        assert_eq!(subs[0].local_offset, 2 * KIB);
    }

    #[test]
    fn request_spanning_two_stripes() {
        let l = layout();
        // 60 KiB..68 KiB spans stripes 0 and 1.
        let subs = l.split(60 * KIB, 8 * KIB);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].server, 0);
        assert_eq!(subs[0].local_offset, 60 * KIB);
        assert_eq!(subs[0].len, 4 * KIB);
        assert_eq!(subs[1].server, 1);
        assert_eq!(subs[1].local_offset, 0);
        assert_eq!(subs[1].len, 4 * KIB);
    }

    #[test]
    fn full_round_touches_all_servers_once() {
        let l = layout();
        let subs = l.split(0, 8 * 64 * KIB);
        assert_eq!(subs.len(), 8);
        for (i, sr) in subs.iter().enumerate() {
            assert_eq!(sr.server, i);
            assert_eq!(sr.local_offset, 0);
            assert_eq!(sr.len, 64 * KIB);
        }
    }

    #[test]
    fn multi_round_request_merges_contiguous_local_ranges() {
        let l = layout();
        // Two full rounds: each server gets stripes k and k+8, which are
        // local-contiguous, so exactly one sub-request per server.
        let subs = l.split(0, 16 * 64 * KIB);
        assert_eq!(subs.len(), 8);
        for sr in &subs {
            assert_eq!(sr.len, 2 * 64 * KIB);
            assert_eq!(sr.local_offset, 0);
        }
        assert_eq!(l.max_subrequest(0, 16 * 64 * KIB), 128 * KIB);
        assert_eq!(l.involved_servers(0, 16 * 64 * KIB), 8);
    }

    #[test]
    fn partial_boundaries_make_unequal_subrequests() {
        let l = layout();
        // Start mid-stripe: b = 32 KiB tail on first server, e = 32 KiB head
        // beyond, matching the paper's case analysis.
        let subs = l.split(32 * KIB, 64 * KIB);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].len, 32 * KIB);
        assert_eq!(subs[1].len, 32 * KIB);
        // 32 KiB..160 KiB: tail of stripe 0, all of stripe 1, head of stripe 2.
        let subs = l.split(32 * KIB, 128 * KIB);
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0].len, 32 * KIB);
        assert_eq!(subs[1].len, 64 * KIB);
        assert_eq!(subs[2].len, 32 * KIB);
        assert_eq!(l.max_subrequest(32 * KIB, 128 * KIB), 64 * KIB);
    }

    #[test]
    fn locate_matches_split() {
        let l = layout();
        for off in [0u64, 1, 63 * KIB, 64 * KIB, 511 * KIB, 8 * 64 * KIB + 5] {
            let (srv, local) = l.locate(off);
            let subs = l.split(off, 1);
            assert_eq!(subs.len(), 1);
            assert_eq!(subs[0].server, srv);
            assert_eq!(subs[0].local_offset, local);
        }
    }

    #[test]
    fn zero_length_yields_nothing() {
        let l = layout();
        assert!(l.split(100, 0).is_empty());
        assert_eq!(l.involved_servers(100, 0), 0);
        assert_eq!(l.max_subrequest(100, 0), 0);
    }

    #[test]
    fn involved_servers_caps_at_m() {
        let l = layout();
        assert_eq!(l.involved_servers(0, 100 * 64 * KIB), 8);
    }

    #[test]
    fn file_segments_invert_split() {
        let l = layout();
        // Merged two-round request: segments come back as the 16 stripes.
        for (off, len) in [
            (0u64, 16 * 64 * KIB),
            (32 * KIB, 96 * KIB),
            (130 * KIB, 4 * KIB),
            (60 * KIB, 8 * KIB),
        ] {
            let subs = l.split(off, len);
            let mut segs: Vec<(u64, u64)> = subs.iter().flat_map(|s| l.file_segments(s)).collect();
            segs.sort_unstable();
            // Coalesce adjacent segments, then the result must be the range.
            let mut merged: Vec<(u64, u64)> = Vec::new();
            for (s, n) in segs {
                match merged.last_mut() {
                    Some((ms, mn)) if *ms + *mn == s => *mn += n,
                    _ => merged.push((s, n)),
                }
            }
            assert_eq!(merged, vec![(off, len)], "range {off}+{len}");
        }
    }

    #[test]
    #[should_panic(expected = "stripe size must be positive")]
    fn rejects_zero_stripe() {
        StripeLayout::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "server count must be positive")]
    fn rejects_zero_servers() {
        StripeLayout::new(4096, 0);
    }

    proptest! {
        /// The decomposition must exactly tile the requested range.
        #[test]
        fn prop_split_tiles_range(
            stripe_kib in 1u64..128,
            servers in 1usize..12,
            offset in 0u64..(1 << 24),
            len in 1u64..(1 << 22),
        ) {
            let l = StripeLayout::new(stripe_kib * KIB, servers);
            let subs = l.split(offset, len);
            let total: u64 = subs.iter().map(|s| s.len).sum();
            prop_assert_eq!(total, len);
            prop_assert_eq!(subs.first().unwrap().file_offset, offset);
            for s in &subs {
                prop_assert!(s.server < servers);
            }
            // The file segments of all pieces tile [offset, offset+len)
            // exactly, with no overlap and no gap.
            let mut segs: Vec<(u64, u64)> =
                subs.iter().flat_map(|s| l.file_segments(s)).collect();
            segs.sort_unstable();
            let mut cursor = offset;
            for (s, n) in segs {
                prop_assert_eq!(s, cursor, "gap or overlap at {}", cursor);
                cursor += n;
            }
            prop_assert_eq!(cursor, offset + len);
        }

        /// involved_servers equals the number of distinct servers in split().
        #[test]
        fn prop_involved_servers_consistent(
            stripe_kib in 1u64..64,
            servers in 1usize..10,
            offset in 0u64..(1 << 22),
            len in 1u64..(1 << 20),
        ) {
            let l = StripeLayout::new(stripe_kib * KIB, servers);
            let distinct: std::collections::HashSet<usize> =
                l.split(offset, len).iter().map(|s| s.server).collect();
            prop_assert_eq!(distinct.len(), l.involved_servers(offset, len));
        }

        /// locate() agrees with split() for every byte of a small request.
        #[test]
        fn prop_locate_agrees_with_split(
            stripe in 1u64..4096,
            servers in 1usize..7,
            offset in 0u64..65536,
            len in 1u64..512,
        ) {
            let l = StripeLayout::new(stripe, servers);
            let subs = l.split(offset, len);
            // For every byte: locate() must agree with the sub-range whose
            // file segment contains the byte, at the matching local offset.
            for byte in offset..offset + len {
                let (srv, local) = l.locate(byte);
                let mut found = false;
                for s in &subs {
                    let mut local_cursor = s.local_offset;
                    for (seg_off, seg_len) in l.file_segments(s) {
                        if seg_off <= byte && byte < seg_off + seg_len {
                            prop_assert_eq!(s.server, srv);
                            prop_assert_eq!(local_cursor + (byte - seg_off), local);
                            found = true;
                        }
                        local_cursor += seg_len;
                    }
                }
                prop_assert!(found, "byte {} not covered by any segment", byte);
            }
        }
    }
}
