//! # s4d-pfs — a striped parallel file system substrate
//!
//! A PVFS2-style parallel file system simulated at the request level. The
//! S4D-Cache paper runs two instances of PVFS2: the *original* file system
//! (OPFS) over HDD servers and the *cache* file system (CPFS) over SSD
//! servers; this crate provides the file system both are built from.
//!
//! The pieces:
//!
//! * [`StripeLayout`] — round-robin striping; splits a file request into
//!   per-server sub-requests exactly as the paper's Figure 4 / Table II
//!   describe;
//! * [`FileServer`] — one file server: a storage device (HDD or SSD model),
//!   a byte store per file, and a two-level (normal / background) service
//!   queue, driven as an explicit-time state machine;
//! * [`Pfs`] — the file system: file namespace plus the server array;
//! * [`NetworkConfig`] — per-server interconnect costs (RPC latency and a
//!   pipelined bandwidth cap), defaulting to Gigabit Ethernet like the
//!   paper's testbed;
//! * [`FaultPlan`] — scripted server faults on the sim clock (hard
//!   crashes that lose data, transient-error windows, slowdowns,
//!   heavy-tailed latency, and stalls that park ops without erring), so
//!   the layers above can be tested against failing *and* limping
//!   CServer tiers.
//!
//! The crate deliberately contains no event loop: servers expose
//! `submit`/`on_complete` transitions with explicit timestamps so that the
//! I/O middleware layer (crate `s4d-mpiio`) can drive them from its
//! discrete-event scheduler, and unit tests can drive them by hand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod faults;
mod fs;
mod layout;
mod network;
mod server;
mod types;

pub use error::PfsError;
pub use faults::{FaultPlan, IoFault, OpClass, ServerFault, StallState, MAX_SLOWDOWN};
pub use fs::{FileMeta, Pfs};
pub use layout::{StripeLayout, SubRange};
pub use network::NetworkConfig;
pub use server::{CompletedSubRequest, FileServer, ServerStats, Started, SubRequest};
pub use types::{FileId, Priority, SubReqId};
