//! Error type for parallel-file-system operations.

use crate::types::FileId;

/// Errors returned by [`crate::Pfs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// The file id is not known to this file system.
    UnknownFile(FileId),
    /// A file with this name already exists.
    FileExists(String),
    /// No file with this name exists.
    NoSuchFile(String),
    /// The request decomposed to zero sub-requests (zero length).
    EmptyRequest,
    /// The named server index is out of range.
    BadServer {
        /// Requested index.
        index: usize,
        /// Number of servers in the file system.
        count: usize,
    },
    /// A direct store access (bypass path) hit a server whose store is
    /// full: the write had no effect on any server.
    NoSpace {
        /// The full server's index.
        server: usize,
    },
    /// A direct store access (bypass path) touched a bad device sector on
    /// a server: the operation had no effect on any server, and the same
    /// range fails the same way until the fault script changes.
    MediaError {
        /// The failing server's index.
        server: usize,
    },
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::UnknownFile(id) => write!(f, "unknown {id}"),
            PfsError::FileExists(name) => write!(f, "file {name:?} already exists"),
            PfsError::NoSuchFile(name) => write!(f, "no file named {name:?}"),
            PfsError::EmptyRequest => write!(f, "request has zero length"),
            PfsError::BadServer { index, count } => {
                write!(f, "server index {index} out of range (have {count})")
            }
            PfsError::NoSpace { server } => {
                write!(f, "no space on server {server}")
            }
            PfsError::MediaError { server } => {
                write!(f, "media error on server {server}")
            }
        }
    }
}

impl std::error::Error for PfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            PfsError::UnknownFile(FileId(1)).to_string(),
            "unknown file#1"
        );
        assert!(PfsError::FileExists("a".into())
            .to_string()
            .contains("already exists"));
        assert!(PfsError::NoSuchFile("b".into())
            .to_string()
            .contains("no file named"));
        assert!(PfsError::EmptyRequest.to_string().contains("zero length"));
        assert!(PfsError::BadServer { index: 9, count: 4 }
            .to_string()
            .contains("out of range"));
        assert!(PfsError::NoSpace { server: 2 }
            .to_string()
            .contains("no space on server 2"));
        assert!(PfsError::MediaError { server: 0 }
            .to_string()
            .contains("media error on server 0"));
    }
}
