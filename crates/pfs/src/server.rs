//! A single file server: device + per-file stores + two-level service queue.

use std::collections::{HashMap, VecDeque};

use s4d_sim::{SimDuration, SimRng, SimTime};
use s4d_storage::{DeviceModel, ExtentStore, IoKind, StoreMode};

use crate::faults::{FaultPlan, IoFault, StallState, MAX_SLOWDOWN};
use crate::network::NetworkConfig;
use crate::types::{FileId, Priority, SubReqId};

/// Fixed latency of an error completion from an offline server — the
/// client's RPC timeout, not a device service time.
const OFFLINE_ERROR_LATENCY: SimDuration = SimDuration::from_millis(2);

/// A sub-request submitted to one server.
#[derive(Debug, Clone)]
pub struct SubRequest {
    /// Caller-assigned identifier, echoed back on completion.
    pub id: SubReqId,
    /// Target file.
    pub file: FileId,
    /// Read or write.
    pub kind: IoKind,
    /// Offset within the server-local file object.
    pub local_offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Foreground or background service class.
    pub priority: Priority,
    /// Write payload (required when the server stores bytes functionally).
    pub data: Option<Vec<u8>>,
}

/// Acknowledgement that a sub-request entered service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Started {
    /// The sub-request now being serviced.
    pub id: SubReqId,
    /// When it will complete.
    pub completes_at: SimTime,
}

/// A finished sub-request, with read payload if applicable.
#[derive(Debug, Clone)]
pub struct CompletedSubRequest {
    /// The identifier given at submission.
    pub id: SubReqId,
    /// Target file.
    pub file: FileId,
    /// Read or write.
    pub kind: IoKind,
    /// Offset within the server-local file object.
    pub local_offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Bytes read (functional stores only; zero-filled over holes). For a
    /// *failed write* this instead carries the original payload back so
    /// the caller can retry without keeping its own copy.
    pub data: Option<Vec<u8>>,
    /// For reads: how many requested bytes were previously written.
    pub covered_bytes: u64,
    /// `Some` if the operation failed (no store effect happened); see
    /// [`IoFault`] for retryability.
    pub error: Option<IoFault>,
}

/// Counters a server accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sub-requests serviced.
    pub ops: u64,
    /// Background-priority sub-requests serviced.
    pub background_ops: u64,
    /// Bytes read from the device.
    pub bytes_read: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Total time the device spent in service.
    pub busy: SimDuration,
    /// Largest queue depth observed (including the in-service request).
    pub max_depth: usize,
    /// Sub-requests that completed with an [`IoFault`].
    pub faulted_ops: u64,
    /// Sub-requests that parked in a stall window at start.
    pub stalled_ops: u64,
    /// Sub-requests removed by [`FileServer::abandon`] before completing.
    pub abandoned_ops: u64,
}

/// One file server of a parallel file system.
///
/// The server is an explicit-time state machine: callers [`submit`] work and
/// later call [`on_complete`] at exactly the time a previous [`Started`]
/// promised. One sub-request is in service at a time; queued foreground work
/// always runs before queued background work (the Rebuilder's low-priority
/// I/O, §III.F of the paper).
///
/// [`submit`]: FileServer::submit
/// [`on_complete`]: FileServer::on_complete
#[derive(Debug)]
pub struct FileServer {
    index: usize,
    device: Box<dyn DeviceModel>,
    net: NetworkConfig,
    store_mode: StoreMode,
    stores: HashMap<FileId, ExtentStore>,
    bases: HashMap<FileId, u64>,
    next_base: u64,
    file_region: u64,
    capacity: u64,
    normal: VecDeque<SubRequest>,
    background: VecDeque<SubRequest>,
    current: Option<SubRequest>,
    current_fault: Option<IoFault>,
    /// True when `current` is parked in a forever-stall: it occupies the
    /// service slot but no [`Started`] was issued and no completion will
    /// arrive until [`FileServer::abandon`] frees the slot.
    parked: bool,
    faults: FaultPlan,
    fault_cursor: SimTime,
    rng: SimRng,
    stats: ServerStats,
}

impl FileServer {
    /// Creates a server around a device model.
    ///
    /// `file_region` is the spacing between the base addresses assigned to
    /// distinct files in the device's address space (so different files are
    /// mechanically distant, as on a real disk); it defaults to 1/64 of the
    /// device capacity when `None`.
    pub fn new(
        index: usize,
        device: Box<dyn DeviceModel>,
        capacity: u64,
        net: NetworkConfig,
        store_mode: StoreMode,
        file_region: Option<u64>,
        rng: SimRng,
    ) -> Self {
        let file_region = file_region.unwrap_or_else(|| (capacity / 64).max(1));
        FileServer {
            index,
            device,
            net,
            store_mode,
            stores: HashMap::new(),
            bases: HashMap::new(),
            next_base: 0,
            file_region,
            capacity,
            normal: VecDeque::new(),
            background: VecDeque::new(),
            current: None,
            current_fault: None,
            parked: false,
            faults: FaultPlan::new(),
            fault_cursor: SimTime::ZERO,
            rng,
            stats: ServerStats::default(),
        }
    }

    /// Installs a scripted fault plan (replacing any previous plan).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// True if a scripted crash window covers `now`.
    pub fn is_offline(&self, now: SimTime) -> bool {
        self.faults.offline_at(now)
    }

    /// Applies any crash effects that became due by `now`: a hard crash
    /// wipes every stored byte. Idempotent; called internally from
    /// [`FileServer::submit`] and [`FileServer::on_complete`], and by the
    /// runner before direct store access ([`FileServer::peek_store`]) so
    /// post-crash reads never observe stale data.
    pub fn advance_faults(&mut self, now: SimTime) {
        if self.faults.crash_due(self.fault_cursor, now) {
            self.stores.clear();
        }
        self.fault_cursor = self.fault_cursor.max(now);
    }

    /// This server's index within its file system.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether this server's stores hold bytes or only extent metadata.
    pub fn store_mode(&self) -> StoreMode {
        self.store_mode
    }

    /// True if a sub-request is in service.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Queued (not yet started) sub-requests, both priorities.
    pub fn queue_len(&self) -> usize {
        self.normal.len() + self.background.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Total bytes currently stored across all files.
    pub fn stored_bytes(&self) -> u64 {
        self.stores.values().map(|s| s.written_bytes()).sum()
    }

    /// Submits a sub-request. If the server is idle it enters service
    /// immediately and a [`Started`] is returned; otherwise it queues and
    /// the server will start it from a later [`FileServer::on_complete`].
    /// `None` also means the op parked in a forever-stall window (see
    /// [`ServerFault::Stall`](crate::ServerFault::Stall)) — in both cases
    /// no completion is scheduled yet and the op occupies server state.
    pub fn submit(&mut self, now: SimTime, req: SubRequest) -> Option<Started> {
        self.advance_faults(now);
        let depth = self.queue_len() + usize::from(self.is_busy()) + 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if self.current.is_none() {
            self.start(now, req)
        } else {
            match req.priority {
                Priority::Normal => self.normal.push_back(req),
                Priority::Background => self.background.push_back(req),
            }
            None
        }
    }

    /// Completes the in-service sub-request at time `now`, applying its
    /// store effect, and starts the next queued one (foreground first).
    ///
    /// # Panics
    ///
    /// Panics if nothing is in service — calling this without a matching
    /// [`Started`] is a scheduling bug.
    #[allow(clippy::expect_used)] // documented panic contract above
    pub fn on_complete(&mut self, now: SimTime) -> (CompletedSubRequest, Option<Started>) {
        self.advance_faults(now);
        assert!(
            !self.parked,
            "on_complete called while the service slot is parked in a stall"
        );
        let req = self
            .current
            .take()
            // s4d-lint: allow(panic) — documented contract above: on_complete pairs with a Started; unpaired calls are scheduler bugs the sim must not mask; panic-path witness: run → run_until → handle → server_done → on_complete
            .expect("on_complete called with no sub-request in service");
        // A fault decided at start, or a crash that hit mid-service.
        let fault = self.current_fault.take().or_else(|| {
            if self.faults.offline_at(now) {
                Some(IoFault::Offline)
            } else {
                None
            }
        });
        if let Some(error) = fault {
            self.stats.faulted_ops += 1;
            let completed = CompletedSubRequest {
                id: req.id,
                file: req.file,
                kind: req.kind,
                local_offset: req.local_offset,
                len: req.len,
                // Hand the payload back so a failed write can be retried.
                data: if req.kind.is_write() { req.data } else { None },
                covered_bytes: 0,
                error: Some(error),
            };
            let next = self
                .normal
                .pop_front()
                .or_else(|| self.background.pop_front())
                .and_then(|r| self.start(now, r));
            return (completed, next);
        }
        let store = self
            .stores
            .entry(req.file)
            .or_insert_with(|| ExtentStore::new(self.store_mode));
        let completed = match req.kind {
            IoKind::Write => {
                self.stats.bytes_written += req.len;
                match (self.store_mode, req.data.as_deref()) {
                    (StoreMode::Functional, None) => {
                        // Timing-style script on a functional store: record
                        // the write as zeroes so coverage stays accurate.
                        let zeroes = vec![0u8; req.len as usize];
                        store.write(req.local_offset, req.len, Some(&zeroes));
                    }
                    (_, data) => store.write(req.local_offset, req.len, data),
                }
                CompletedSubRequest {
                    id: req.id,
                    file: req.file,
                    kind: req.kind,
                    local_offset: req.local_offset,
                    len: req.len,
                    data: None,
                    covered_bytes: req.len,
                    error: None,
                }
            }
            IoKind::Read => {
                self.stats.bytes_read += req.len;
                let outcome = store.read(req.local_offset, req.len);
                CompletedSubRequest {
                    id: req.id,
                    file: req.file,
                    kind: req.kind,
                    local_offset: req.local_offset,
                    len: req.len,
                    data: outcome.data,
                    covered_bytes: outcome.covered_bytes,
                    error: None,
                }
            }
        };
        let next = self
            .normal
            .pop_front()
            .or_else(|| self.background.pop_front())
            .and_then(|r| self.start(now, r));
        (completed, next)
    }

    /// Abandons sub-request `id`: removes it from the queue, or frees the
    /// service slot when it is the *parked* current op (then starting the
    /// next queued one). An op genuinely in service cannot be recalled —
    /// the device is mid-transfer — so `(false, None)` is returned and
    /// its completion still arrives at the promised time; a caller that
    /// gave up on it must discard that late completion idempotently.
    pub fn abandon(&mut self, now: SimTime, id: SubReqId) -> (bool, Option<Started>) {
        self.advance_faults(now);
        if self.parked && self.current.as_ref().map(|r| r.id) == Some(id) {
            self.current = None;
            self.current_fault = None;
            self.parked = false;
            self.stats.abandoned_ops += 1;
            let next = self
                .normal
                .pop_front()
                .or_else(|| self.background.pop_front())
                .and_then(|r| self.start(now, r));
            return (true, next);
        }
        for queue in [&mut self.normal, &mut self.background] {
            if let Some(pos) = queue.iter().position(|r| r.id == id) {
                queue.remove(pos);
                self.stats.abandoned_ops += 1;
                return (true, None);
            }
        }
        (false, None)
    }

    /// Reads stored bytes directly, bypassing the service queue — used for
    /// instantaneous data-plane effects whose *timing* was already simulated
    /// as separate I/O (Rebuilder copies). Returns `None` in timing mode.
    pub fn peek_store(&self, file: FileId, local_offset: u64, len: u64) -> Option<Vec<u8>> {
        self.stores
            .get(&file)
            .and_then(|s| s.read(local_offset, len).data)
    }

    /// How many bytes of `[local_offset, local_offset+len)` are covered by
    /// previous writes (0 after a crash wiped the store). Works in both
    /// store modes.
    pub fn peek_coverage(&self, file: FileId, local_offset: u64, len: u64) -> u64 {
        self.stores
            .get(&file)
            .map_or(0, |s| s.read(local_offset, len).covered_bytes)
    }

    /// Writes stored bytes directly, bypassing the service queue (see
    /// [`FileServer::peek_store`]). In timing mode only extent coverage is
    /// recorded and `data` is ignored.
    pub fn poke_store(&mut self, file: FileId, local_offset: u64, len: u64, data: Option<&[u8]>) {
        let store = self
            .stores
            .entry(file)
            .or_insert_with(|| ExtentStore::new(self.store_mode));
        match self.store_mode {
            StoreMode::Functional => {
                let owned;
                let bytes = match data {
                    Some(d) => d,
                    None => {
                        owned = vec![0u8; len as usize];
                        &owned
                    }
                };
                store.write(local_offset, len, Some(bytes));
            }
            StoreMode::Timing => store.write(local_offset, len, None),
        }
    }

    /// Drops all data of `file` (used when a cache file is destroyed).
    pub fn delete_file(&mut self, file: FileId) {
        self.stores.remove(&file);
    }

    /// Discards a stored range of `file` (cache eviction).
    pub fn discard_range(&mut self, file: FileId, local_offset: u64, len: u64) {
        if let Some(store) = self.stores.get_mut(&file) {
            store.discard(local_offset, len);
        }
    }

    /// Moves `req` into the service slot. Returns `None` when a
    /// forever-stall parks the op: it holds the slot but no completion is
    /// scheduled, and only [`FileServer::abandon`] can free it.
    fn start(&mut self, now: SimTime, req: SubRequest) -> Option<Started> {
        // Fault precedence is fixed (offline > no-space > media > transient)
        // so the decision — and the RNG draws it consumes — is a pure
        // function of the scripted plan, never of fault insertion order.
        let fault = if self.faults.offline_at(now) {
            Some(IoFault::Offline)
        } else if req.kind.is_write() && self.faults.no_space_at(now) {
            Some(IoFault::NoSpace)
        } else if self.media_hit(now, req.file, req.local_offset, req.len) {
            Some(IoFault::Media)
        } else {
            let rate = self.faults.error_rate_at(now);
            if rate > 0.0 && self.rng.chance(rate) {
                Some(IoFault::Transient)
            } else {
                None
            }
        };
        self.current_fault = fault;
        // An offline server fails fast — a stall never outranks a crash.
        let stall = if fault == Some(IoFault::Offline) {
            StallState::Clear
        } else {
            self.faults.stall_at(now)
        };
        if stall == StallState::Forever {
            self.stats.stalled_ops += 1;
            self.current = Some(req);
            self.parked = true;
            return None;
        }
        let service = if fault == Some(IoFault::Offline) {
            // No device or transfer happens; the client just times out.
            OFFLINE_ERROR_LATENCY
        } else {
            let base = self.base_for(req.file);
            let lba = (base + req.local_offset) % self.capacity.max(1);
            let device_time = self
                .device
                .service_time(req.kind, lba, req.len, &mut self.rng);
            let slowdown = self.faults.slowdown_for(now, req.kind);
            let tail = self.faults.tail_draw(now, &mut self.rng);
            let factor = (slowdown * tail).clamp(1.0, MAX_SLOWDOWN);
            let device_time = if factor > 1.0 {
                SimDuration::from_secs_f64(device_time.as_secs_f64() * factor)
            } else {
                device_time
            };
            let net = SimDuration::from_secs_f64(
                self.net
                    .overhead_secs(req.len, self.device.transfer_rate(req.kind)),
            );
            device_time + net
        };
        self.stats.ops += 1;
        if req.priority == Priority::Background {
            self.stats.background_ops += 1;
        }
        self.stats.busy += service;
        // A released stall parks the op first, then services it: the
        // device is idle while parked, so only `service` counts as busy,
        // but the completion lands after the release instant.
        let begins = match stall {
            StallState::Until(release) => {
                self.stats.stalled_ops += 1;
                release
            }
            _ => now,
        };
        let started = Started {
            id: req.id,
            completes_at: begins + service,
        };
        self.current = Some(req);
        Some(started)
    }

    /// True if `[local_offset, local_offset+len)` of `file` maps onto a
    /// bad device sector under the media map active at `now`. Media
    /// damage is keyed by a deterministic per-file device mapping
    /// (file id × file-region spacing) rather than the dynamically
    /// assigned service base, so bypass accesses (shared-reference
    /// reads) and serviced I/O always agree on which ranges are bad.
    fn media_hit(&self, now: SimTime, file: FileId, local_offset: u64, len: u64) -> bool {
        let Some((seed, ppm)) = self.faults.media_map_at(now) else {
            return false;
        };
        let cap = self.capacity.max(1);
        let base = file.0.wrapping_mul(self.file_region) % cap;
        let lba = base.wrapping_add(local_offset) % cap;
        s4d_storage::range_has_bad_sector(seed, ppm, lba, len)
    }

    /// Fault a *bypass* store write ([`FileServer::poke_store`]-shaped
    /// access) of this range would hit at the server's current fault
    /// cursor: [`IoFault::NoSpace`] inside a space-exhaustion window,
    /// [`IoFault::Media`] on a bad sector. Offline is not reported here —
    /// bypass effects model already-simulated I/O, and a crash already
    /// wipes stores via [`FileServer::advance_faults`].
    pub fn bypass_write_fault(&self, file: FileId, local_offset: u64, len: u64) -> Option<IoFault> {
        let now = self.fault_cursor;
        if self.faults.no_space_at(now) {
            return Some(IoFault::NoSpace);
        }
        if self.media_hit(now, file, local_offset, len) {
            return Some(IoFault::Media);
        }
        None
    }

    /// Fault a bypass store read of this range would hit at the server's
    /// current fault cursor ([`IoFault::Media`] only — space exhaustion
    /// never fails reads).
    pub fn bypass_read_fault(&self, file: FileId, local_offset: u64, len: u64) -> Option<IoFault> {
        if self.media_hit(self.fault_cursor, file, local_offset, len) {
            Some(IoFault::Media)
        } else {
            None
        }
    }

    fn base_for(&mut self, file: FileId) -> u64 {
        if let Some(&b) = self.bases.get(&file) {
            return b;
        }
        let b = self.next_base % self.capacity.max(1);
        self.next_base = self.next_base.wrapping_add(self.file_region);
        self.bases.insert(file, b);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_storage::presets;

    const KIB: u64 = 1024;
    const GIB: u64 = 1024 * 1024 * 1024;

    fn hdd_server(mode: StoreMode) -> FileServer {
        let cfg = presets::hdd_seagate_st3250();
        let cap = cfg.capacity();
        FileServer::new(
            0,
            Box::new(cfg.build()),
            cap,
            NetworkConfig::ideal(),
            mode,
            None,
            SimRng::seed(1),
        )
    }

    fn req(id: u64, kind: IoKind, off: u64, len: u64, prio: Priority) -> SubRequest {
        SubRequest {
            id: SubReqId(id),
            file: FileId(0),
            kind,
            local_offset: off,
            len,
            priority: prio,
            data: None,
        }
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = hdd_server(StoreMode::Timing);
        let started = s
            .submit(
                SimTime::ZERO,
                req(1, IoKind::Write, 0, 4 * KIB, Priority::Normal),
            )
            .expect("idle server starts at once");
        assert_eq!(started.id, SubReqId(1));
        assert!(started.completes_at > SimTime::ZERO);
        assert!(s.is_busy());
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = hdd_server(StoreMode::Timing);
        let t0 = SimTime::ZERO;
        let first = s
            .submit(t0, req(1, IoKind::Write, 0, 4 * KIB, Priority::Normal))
            .unwrap();
        assert!(s
            .submit(t0, req(2, IoKind::Write, GIB, 4 * KIB, Priority::Normal))
            .is_none());
        assert!(s
            .submit(
                t0,
                req(3, IoKind::Write, 2 * GIB, 4 * KIB, Priority::Normal)
            )
            .is_none());
        assert_eq!(s.queue_len(), 2);
        let (done, next) = s.on_complete(first.completes_at);
        assert_eq!(done.id, SubReqId(1));
        let next = next.expect("queued work starts");
        assert_eq!(next.id, SubReqId(2));
        let (done, next) = s.on_complete(next.completes_at);
        assert_eq!(done.id, SubReqId(2));
        assert_eq!(next.unwrap().id, SubReqId(3));
    }

    #[test]
    fn background_waits_for_all_foreground() {
        let mut s = hdd_server(StoreMode::Timing);
        let t0 = SimTime::ZERO;
        let first = s
            .submit(t0, req(1, IoKind::Write, 0, KIB, Priority::Normal))
            .unwrap();
        s.submit(t0, req(2, IoKind::Write, 0, KIB, Priority::Background));
        s.submit(t0, req(3, IoKind::Write, 0, KIB, Priority::Normal));
        let (_, next) = s.on_complete(first.completes_at);
        // Normal id=3 jumps ahead of background id=2.
        let next = next.unwrap();
        assert_eq!(next.id, SubReqId(3));
        let (_, next) = s.on_complete(next.completes_at);
        assert_eq!(next.unwrap().id, SubReqId(2));
        assert_eq!(s.stats().background_ops, 1);
    }

    #[test]
    fn functional_store_round_trip() {
        let mut s = hdd_server(StoreMode::Functional);
        let t0 = SimTime::ZERO;
        let mut w = req(1, IoKind::Write, 100, 5, Priority::Normal);
        w.data = Some(b"hello".to_vec());
        let started = s.submit(t0, w).unwrap();
        s.on_complete(started.completes_at);
        let started = s
            .submit(
                started.completes_at,
                req(2, IoKind::Read, 98, 9, Priority::Normal),
            )
            .unwrap();
        let (done, _) = s.on_complete(started.completes_at);
        assert_eq!(done.covered_bytes, 5);
        assert_eq!(
            done.data.as_deref(),
            Some(&[0, 0, b'h', b'e', b'l', b'l', b'o', 0, 0][..])
        );
        assert_eq!(s.stored_bytes(), 5);
    }

    #[test]
    fn distinct_files_get_distant_bases() {
        let mut s = hdd_server(StoreMode::Timing);
        let t0 = SimTime::ZERO;
        let mut r1 = req(1, IoKind::Write, 0, KIB, Priority::Normal);
        r1.file = FileId(10);
        let mut r2 = req(2, IoKind::Write, 0, KIB, Priority::Normal);
        r2.file = FileId(11);
        let a = s.submit(t0, r1).unwrap();
        let (_, _) = s.on_complete(a.completes_at);
        let b = s.submit(a.completes_at, r2).unwrap();
        // Different file at local offset 0 must seek: its base is far away.
        let service_b = b.completes_at - a.completes_at;
        assert!(
            service_b > SimDuration::from_millis(1),
            "second file's first access should pay positioning: {service_b}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut s = hdd_server(StoreMode::Timing);
        let t = SimTime::ZERO;
        let st = s
            .submit(t, req(1, IoKind::Write, 0, 8 * KIB, Priority::Normal))
            .unwrap();
        s.submit(t, req(2, IoKind::Read, 0, 8 * KIB, Priority::Normal));
        let (_, next) = s.on_complete(st.completes_at);
        s.on_complete(next.unwrap().completes_at);
        let stats = s.stats();
        assert_eq!(stats.ops, 2);
        assert_eq!(stats.bytes_written, 8 * KIB);
        assert_eq!(stats.bytes_read, 8 * KIB);
        assert!(stats.busy > SimDuration::ZERO);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn delete_and_discard() {
        let mut s = hdd_server(StoreMode::Functional);
        let t = SimTime::ZERO;
        let mut w = req(1, IoKind::Write, 0, 4, Priority::Normal);
        w.data = Some(vec![7; 4]);
        let st = s.submit(t, w).unwrap();
        s.on_complete(st.completes_at);
        assert_eq!(s.stored_bytes(), 4);
        s.discard_range(FileId(0), 0, 2);
        assert_eq!(s.stored_bytes(), 2);
        s.delete_file(FileId(0));
        assert_eq!(s.stored_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "no sub-request in service")]
    fn on_complete_without_service_panics() {
        hdd_server(StoreMode::Timing).on_complete(SimTime::ZERO);
    }

    #[test]
    fn offline_server_fails_fast_and_loses_data() {
        use crate::faults::{FaultPlan, IoFault, ServerFault};
        let mut s = hdd_server(StoreMode::Functional);
        s.set_fault_plan(FaultPlan::new().with(ServerFault::Crash {
            at: SimTime::from_secs(10),
            recover_at: SimTime::from_secs(20),
        }));
        // Healthy write before the crash.
        let mut w = req(1, IoKind::Write, 0, 4, Priority::Normal);
        w.data = Some(vec![9; 4]);
        let st = s.submit(SimTime::ZERO, w).unwrap();
        s.on_complete(st.completes_at);
        assert_eq!(s.stored_bytes(), 4);
        assert!(!s.is_offline(SimTime::from_secs(9)));
        assert!(s.is_offline(SimTime::from_secs(10)));

        // A write during the outage fails with Offline, has no store
        // effect, and returns its payload for retry.
        let t_down = SimTime::from_secs(12);
        let mut w = req(2, IoKind::Write, 100, 4, Priority::Normal);
        w.data = Some(vec![7; 4]);
        let st = s.submit(t_down, w).unwrap();
        assert_eq!(st.completes_at, t_down + SimDuration::from_millis(2));
        let (done, _) = s.on_complete(st.completes_at);
        assert_eq!(done.error, Some(IoFault::Offline));
        assert_eq!(done.data, Some(vec![7; 4]));
        assert_eq!(done.covered_bytes, 0);
        // The crash wiped the pre-crash write too.
        assert_eq!(s.stored_bytes(), 0);
        assert_eq!(s.peek_coverage(FileId(0), 0, 4), 0);
        assert_eq!(s.stats().faulted_ops, 1);

        // After recovery the server works again, but empty.
        let t_up = SimTime::from_secs(21);
        let st = s
            .submit(t_up, req(3, IoKind::Read, 0, 4, Priority::Normal))
            .unwrap();
        let (done, _) = s.on_complete(st.completes_at);
        assert_eq!(done.error, None);
        assert_eq!(done.covered_bytes, 0, "recovered server came back empty");
    }

    #[test]
    fn crash_mid_service_fails_the_inflight_request() {
        use crate::faults::{FaultPlan, IoFault, ServerFault};
        let mut s = hdd_server(StoreMode::Functional);
        s.set_fault_plan(FaultPlan::new().with(ServerFault::Crash {
            at: SimTime::from_nanos(1),
            recover_at: SimTime::from_secs(1000),
        }));
        // Starts healthy at t=0, but the server is down by completion.
        let mut w = req(1, IoKind::Write, 0, 4, Priority::Normal);
        w.data = Some(vec![1; 4]);
        let st = s.submit(SimTime::ZERO, w).unwrap();
        let (done, _) = s.on_complete(st.completes_at);
        assert_eq!(done.error, Some(IoFault::Offline));
        assert_eq!(s.stored_bytes(), 0);
    }

    #[test]
    fn transient_errors_fire_at_the_scripted_rate() {
        use crate::faults::{FaultPlan, IoFault, ServerFault};
        let mut s = hdd_server(StoreMode::Functional);
        s.set_fault_plan(FaultPlan::new().with(ServerFault::TransientErrors {
            from: SimTime::ZERO,
            until: SimTime::from_secs(1_000_000),
            error_rate: 0.5,
        }));
        let mut failed = 0u32;
        let mut t = SimTime::ZERO;
        for i in 0..200 {
            let mut w = req(i, IoKind::Write, 0, 4, Priority::Normal);
            w.data = Some(vec![3; 4]);
            let st = s.submit(t, w).unwrap();
            let (done, _) = s.on_complete(st.completes_at);
            if done.error == Some(IoFault::Transient) {
                failed += 1;
                assert_eq!(done.covered_bytes, 0);
            }
            t = st.completes_at;
        }
        assert!(
            (50..=150).contains(&failed),
            "rate 0.5 should fail roughly half of 200 ops, got {failed}"
        );
        assert_eq!(u64::from(failed), s.stats().faulted_ops);
        // Failed writes never touched the store; successes did.
        assert_eq!(s.peek_coverage(FileId(0), 0, 4), 4);
    }

    #[test]
    fn released_stall_parks_then_services() {
        use crate::faults::{FaultPlan, ServerFault};
        let mut s = hdd_server(StoreMode::Functional);
        s.set_fault_plan(FaultPlan::new().with(ServerFault::Stall {
            since: SimTime::ZERO,
            release: Some(SimTime::from_secs(5)),
        }));
        let mut w = req(1, IoKind::Write, 0, 4, Priority::Normal);
        w.data = Some(vec![2; 4]);
        let st = s
            .submit(SimTime::ZERO, w)
            .expect("released stall schedules");
        assert!(
            st.completes_at > SimTime::from_secs(5),
            "completion lands after the release instant: {}",
            st.completes_at
        );
        assert_eq!(s.stats().stalled_ops, 1);
        let (done, _) = s.on_complete(st.completes_at);
        assert_eq!(done.error, None);
        assert_eq!(s.peek_coverage(FileId(0), 0, 4), 4);
    }

    #[test]
    fn forever_stall_parks_and_abandon_frees_the_slot() {
        use crate::faults::{FaultPlan, ServerFault};
        let mut s = hdd_server(StoreMode::Functional);
        s.set_fault_plan(FaultPlan::new().with(ServerFault::Stall {
            since: SimTime::from_secs(1),
            release: None,
        }));
        // Before the stall: normal service.
        let mut w = req(1, IoKind::Write, 0, 4, Priority::Normal);
        w.data = Some(vec![1; 4]);
        let st = s.submit(SimTime::ZERO, w).expect("healthy start");
        s.on_complete(st.completes_at);

        // Inside the stall: the op parks (no Started), occupies the slot,
        // and queues back up behind it.
        let t1 = SimTime::from_secs(2);
        assert!(s
            .submit(t1, req(2, IoKind::Read, 0, 4, Priority::Normal))
            .is_none());
        assert!(s.is_busy(), "parked op occupies the service slot");
        assert!(s
            .submit(t1, req(3, IoKind::Read, 0, 4, Priority::Normal))
            .is_none());
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.stats().stalled_ops, 1);

        // Abandoning an unknown id is a no-op; abandoning the parked op
        // frees the slot, but the next queued op parks right back (the
        // stall never releases).
        assert_eq!(s.abandon(t1, SubReqId(99)), (false, None));
        let (freed, next) = s.abandon(t1, SubReqId(2));
        assert!(freed);
        assert!(next.is_none(), "successor parks in the same stall");
        assert!(s.is_busy());
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.stats().abandoned_ops, 1);
        assert_eq!(s.stats().stalled_ops, 2);

        // Abandoning a queued (never-started) op removes it silently.
        assert!(s
            .submit(t1, req(4, IoKind::Read, 0, 4, Priority::Normal))
            .is_none());
        let (freed, next) = s.abandon(t1, SubReqId(4));
        assert!(freed && next.is_none());
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn space_exhaustion_fails_writes_but_not_reads() {
        use crate::faults::{FaultPlan, IoFault, ServerFault};
        let mut s = hdd_server(StoreMode::Functional);
        s.set_fault_plan(FaultPlan::new().with(ServerFault::SpaceExhausted {
            from: SimTime::from_secs(5),
            until: SimTime::from_secs(50),
        }));
        // Healthy write before the window.
        let mut w = req(1, IoKind::Write, 0, 4, Priority::Normal);
        w.data = Some(vec![5; 4]);
        let st = s.submit(SimTime::ZERO, w).unwrap();
        s.on_complete(st.completes_at);
        assert_eq!(s.stored_bytes(), 4);

        // Inside the window: the write fails NoSpace with no store effect
        // and hands its payload back.
        let t = SimTime::from_secs(10);
        let mut w = req(2, IoKind::Write, 100, 4, Priority::Normal);
        w.data = Some(vec![6; 4]);
        let st = s.submit(t, w).unwrap();
        let (done, _) = s.on_complete(st.completes_at);
        assert_eq!(done.error, Some(IoFault::NoSpace));
        assert_eq!(done.data, Some(vec![6; 4]));
        assert_eq!(s.stored_bytes(), 4, "failed write had no effect");

        // Reads inside the window still work — the store is full, not gone.
        let st = s
            .submit(t, req(3, IoKind::Read, 0, 4, Priority::Normal))
            .unwrap();
        let (done, _) = s.on_complete(st.completes_at);
        assert_eq!(done.error, None);
        assert_eq!(done.covered_bytes, 4);

        // Bypass query agrees inside, clears outside.
        assert_eq!(
            s.bypass_write_fault(FileId(0), 0, 4),
            Some(IoFault::NoSpace)
        );
        s.advance_faults(SimTime::from_secs(60));
        assert_eq!(s.bypass_write_fault(FileId(0), 0, 4), None);
    }

    #[test]
    fn media_errors_hit_the_same_ranges_every_time() {
        use crate::faults::{FaultPlan, IoFault, ServerFault};
        let build = || {
            let mut s = hdd_server(StoreMode::Functional);
            // All sectors bad: any op from t=5 on fails with Media.
            s.set_fault_plan(FaultPlan::new().with(ServerFault::MediaErrors {
                from: SimTime::from_secs(5),
                seed: 11,
                bad_ppm: 1_000_000,
            }));
            s
        };
        let mut s = build();
        let mut w = req(1, IoKind::Write, 0, 4, Priority::Normal);
        w.data = Some(vec![8; 4]);
        let st = s.submit(SimTime::ZERO, w).unwrap();
        s.on_complete(st.completes_at);

        let t = SimTime::from_secs(10);
        let st = s
            .submit(t, req(2, IoKind::Read, 0, 4, Priority::Normal))
            .unwrap();
        let (done, _) = s.on_complete(st.completes_at);
        assert_eq!(done.error, Some(IoFault::Media));
        assert_eq!(done.covered_bytes, 0);
        // Retrying the same range fails the same way (permanent damage).
        let st = s
            .submit(
                st.completes_at,
                req(3, IoKind::Read, 0, 4, Priority::Normal),
            )
            .unwrap();
        let (done, _) = s.on_complete(st.completes_at);
        assert_eq!(done.error, Some(IoFault::Media));
        // Data written before the onset is still *stored* (unlike a
        // crash): a bypass peek sees it even though serviced reads fail.
        assert_eq!(s.stored_bytes(), 4);
        // Bypass queries report the hit for both directions.
        assert_eq!(s.bypass_read_fault(FileId(0), 0, 4), Some(IoFault::Media));
        assert_eq!(s.bypass_write_fault(FileId(0), 0, 4), Some(IoFault::Media));

        // A sparse map (tiny ppm) usually leaves ranges healthy.
        let mut sparse = hdd_server(StoreMode::Functional);
        sparse.set_fault_plan(FaultPlan::new().with(ServerFault::MediaErrors {
            from: SimTime::ZERO,
            seed: 11,
            bad_ppm: 1,
        }));
        let st = sparse
            .submit(
                SimTime::from_secs(1),
                req(1, IoKind::Read, 0, 4, Priority::Normal),
            )
            .unwrap();
        let (done, _) = sparse.on_complete(st.completes_at);
        assert_eq!(done.error, None, "1 ppm almost never hits one sector");
    }

    #[test]
    fn class_degraded_slows_only_that_class() {
        use crate::faults::{FaultPlan, OpClass, ServerFault};
        let mut plain = hdd_server(StoreMode::Timing);
        let mut slow_writes = hdd_server(StoreMode::Timing);
        slow_writes.set_fault_plan(FaultPlan::new().with(ServerFault::ClassDegraded {
            from: SimTime::ZERO,
            until: SimTime::from_secs(1000),
            class: OpClass::Write,
            factor: 20.0,
        }));
        let w_plain = plain
            .submit(
                SimTime::ZERO,
                req(1, IoKind::Write, 0, 256 * KIB, Priority::Normal),
            )
            .unwrap();
        let w_slow = slow_writes
            .submit(
                SimTime::ZERO,
                req(1, IoKind::Write, 0, 256 * KIB, Priority::Normal),
            )
            .unwrap();
        let plain_secs = w_plain
            .completes_at
            .duration_since(SimTime::ZERO)
            .as_secs_f64();
        let slow_secs = w_slow
            .completes_at
            .duration_since(SimTime::ZERO)
            .as_secs_f64();
        assert!(
            slow_secs > plain_secs * 5.0,
            "writes limp: {slow_secs} vs {plain_secs}"
        );
        // Reads on the write-degraded server are not inflated 20x.
        let (_, _) = plain.on_complete(w_plain.completes_at);
        let (_, _) = slow_writes.on_complete(w_slow.completes_at);
        let r_plain = plain
            .submit(
                w_plain.completes_at,
                req(2, IoKind::Read, 0, 256 * KIB, Priority::Normal),
            )
            .unwrap();
        let r_slow = slow_writes
            .submit(
                w_slow.completes_at,
                req(2, IoKind::Read, 0, 256 * KIB, Priority::Normal),
            )
            .unwrap();
        let rp = r_plain.completes_at.duration_since(w_plain.completes_at);
        let rs = r_slow.completes_at.duration_since(w_slow.completes_at);
        assert!(
            rs.as_secs_f64() < rp.as_secs_f64() * 5.0,
            "reads stay near healthy: {rs} vs {rp}"
        );
    }

    #[test]
    fn tail_latency_inflates_some_ops_deterministically() {
        use crate::faults::{FaultPlan, ServerFault};
        let run = |seed: u64| {
            let cfg = presets::hdd_seagate_st3250();
            let cap = cfg.capacity();
            let mut s = FileServer::new(
                0,
                Box::new(cfg.build()),
                cap,
                NetworkConfig::ideal(),
                StoreMode::Timing,
                None,
                SimRng::seed(seed),
            );
            s.set_fault_plan(FaultPlan::new().with(ServerFault::TailLatency {
                from: SimTime::ZERO,
                until: SimTime::from_secs(1_000_000),
                probability: 0.2,
                factor: 100.0,
            }));
            let mut t = SimTime::ZERO;
            let mut latencies = Vec::new();
            for i in 0..64 {
                let st = s
                    .submit(t, req(i, IoKind::Read, 0, 64 * KIB, Priority::Normal))
                    .unwrap();
                latencies.push(st.completes_at.duration_since(t));
                s.on_complete(st.completes_at);
                t = st.completes_at;
            }
            latencies
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same tail hits");
        let max = a.iter().max().unwrap();
        let min = a.iter().min().unwrap();
        assert!(
            max.as_secs_f64() > min.as_secs_f64() * 20.0,
            "tail hits dwarf the healthy ops: {max} vs {min}"
        );
    }

    #[test]
    fn degraded_window_slows_service() {
        use crate::faults::{FaultPlan, ServerFault};
        let mut healthy = hdd_server(StoreMode::Timing);
        let mut slow = hdd_server(StoreMode::Timing);
        slow.set_fault_plan(FaultPlan::new().with(ServerFault::Degraded {
            from: SimTime::ZERO,
            until: SimTime::from_secs(1000),
            factor: 10.0,
        }));
        let a = healthy
            .submit(
                SimTime::ZERO,
                req(1, IoKind::Read, 0, 64 * KIB, Priority::Normal),
            )
            .unwrap();
        let b = slow
            .submit(
                SimTime::ZERO,
                req(1, IoKind::Read, 0, 64 * KIB, Priority::Normal),
            )
            .unwrap();
        let ha = a.completes_at.duration_since(SimTime::ZERO).as_secs_f64();
        let hb = b.completes_at.duration_since(SimTime::ZERO).as_secs_f64();
        assert!(hb > ha * 5.0, "10x degraded server must be much slower");
    }
}
