//! Device parameter sets modelled on the paper's testbed (§V.A).
//!
//! The experiments in the paper ran on a 65-node SUN Fire cluster whose file
//! servers used SEAGATE ST32502NSSUN250G hard drives, with eight nodes
//! carrying OCZ RevoDrive X2 PCI-E SSDs, all on Gigabit Ethernet. The presets
//! below are *effective* service parameters for those devices as seen through
//! a parallel-file-system server (request-level, including controller and
//! software overheads), chosen so that the relative behaviours the paper
//! depends on hold:
//!
//! * HDD sequential streams at ~100 MB/s but collapses to positioning-
//!   dominated latency (~10 ms/op) under random access;
//! * the SSD is insensitive to randomness, reads faster than it writes, and
//!   its *effective per-byte cost under small parallel-file-system requests*
//!   is higher than raw datasheet bandwidth (an entry-level drive behind
//!   synchronous PVFS2-style servers), which is what makes large requests
//!   favour the wider HDD array — the selectivity at the heart of the paper.

use crate::hdd::HddConfig;
use crate::seek::SeekProfile;
use crate::ssd::SsdConfig;

const GIB: u64 = 1024 * 1024 * 1024;

/// SEAGATE ST32502NSSUN250G: 250 GB, 7200 rpm, ~100 MB/s sequential.
///
/// Seek curve: 0.8 ms track-to-track to 9 ms full stroke over 250 GB,
/// using the analytic two-regime fit (see [`SeekProfile::analytic`]).
pub fn hdd_seagate_st3250() -> HddConfig {
    let seek = SeekProfile::analytic(0.8e-3, 9.0e-3, 250 * GIB);
    HddConfig::new(7_200, 105.0e6, 250 * GIB, seek)
        .with_stream_window(1024 * 1024)
        .with_max_streams(64)
}

/// OCZ RevoDrive X2 (100 GB, PCI-E x4), as an *effective* PFS-server device.
///
/// Effective sustained rates under parallel-file-system server traffic:
/// 200 MB/s reads, 150 MB/s writes, 100 µs per-operation latency — well
/// below the drive's datasheet burst numbers (the paper itself calls it
/// "an entry-level SSD", and PVFS2 server software sits in the path;
/// the Gigabit link in front of each server caps transfers anyway), but
/// fast enough that four of them absorb the random fraction of a
/// 32-process workload with headroom for the Rebuilder's flush reads.
pub fn ssd_ocz_revodrive_x2() -> SsdConfig {
    SsdConfig::new(200.0e6, 150.0e6, 100.0e-6, 100 * GIB)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::IoKind;

    #[test]
    fn hdd_preset_matches_paper_era_drive() {
        let c = hdd_seagate_st3250();
        assert_eq!(c.capacity(), 250 * GIB);
        assert!((c.transfer_rate() - 105.0e6).abs() < 1.0);
    }

    #[test]
    fn ssd_preset_is_read_biased_and_random_friendly() {
        let c = ssd_ocz_revodrive_x2();
        assert!(c.beta_secs_per_byte(IoKind::Read) < c.beta_secs_per_byte(IoKind::Write));
        assert_eq!(c.capacity(), 100 * GIB);
        assert!(c.op_latency_secs() < 1e-3);
    }

    /// The calibration the experiments rely on: a single SSD server must beat
    /// a single HDD server by well over an order of magnitude on small random
    /// accesses, while N=4 SSD servers must NOT beat M=8 HDD servers on
    /// large streaming transfers.
    #[test]
    fn selectivity_calibration_holds() {
        let hdd = hdd_seagate_st3250();
        let ssd = ssd_ocz_revodrive_x2();
        // Small random: HDD ~ positioning (avg rotation + typical seek),
        // SSD ~ latency + transfer.
        let hdd_small = hdd.avg_rotation_secs()
            + hdd.max_seek_secs() / 2.0
            + 16_384.0 * hdd.beta_secs_per_byte();
        let ssd_small = ssd.op_latency_secs() + 16_384.0 * ssd.beta_secs_per_byte(IoKind::Write);
        assert!(hdd_small > 10.0 * ssd_small, "{hdd_small} vs {ssd_small}");
        // Large streaming aggregate: 8 HDD vs 4 SSD (writes).
        let hdd_agg = 8.0 * hdd.transfer_rate();
        let ssd_agg = 4.0 / ssd.beta_secs_per_byte(IoKind::Write);
        assert!(hdd_agg > ssd_agg, "{hdd_agg} vs {ssd_agg}");
    }
}
