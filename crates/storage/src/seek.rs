//! The seek-distance → seek-time curve `F(d)`.
//!
//! The paper (§III.B) converts the logical distance `d` between consecutive
//! requests into a seek time through a function `F` "derived from an offline
//! profiling of the HDD storage" (its reference \[28\]). We use the standard
//! two-regime disk-seek model: for short distances the arm's
//! acceleration-dominated motion gives `t ≈ a + b·√d`, while beyond a
//! coast-distance threshold the motion is speed-limited and `t ≈ c + e·d`,
//! capped at the full-stroke seek time.

use serde::{Deserialize, Serialize};

/// A fitted piecewise seek curve over byte distances.
///
/// Distances are expressed in bytes of the (logical-block) address space; the
/// curve owner decides how file-level distances map onto it.
///
/// ```
/// use s4d_storage::SeekProfile;
/// let p = SeekProfile::analytic(2.0e-3, 9.0e-3, 250 * 1024 * 1024 * 1024);
/// assert_eq!(p.seek_secs(0), 0.0);
/// assert!(p.seek_secs(4096) > 0.0);
/// assert!(p.seek_secs(u64::MAX) <= 9.0e-3 + 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeekProfile {
    /// Constant term of the short-seek (√d) regime, seconds.
    short_a: f64,
    /// Coefficient of √d in the short-seek regime, seconds per √byte.
    short_b: f64,
    /// Distance (bytes) where the regimes meet.
    cutoff: u64,
    /// Constant term of the long-seek (linear) regime, seconds.
    long_c: f64,
    /// Slope of the long-seek regime, seconds per byte.
    long_e: f64,
    /// Full-stroke cap, seconds.
    max_seek: f64,
}

impl SeekProfile {
    /// Builds a curve from explicit fitted coefficients.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or non-finite, or if
    /// `max_seek` is zero.
    pub fn from_coefficients(
        short_a: f64,
        short_b: f64,
        cutoff: u64,
        long_c: f64,
        long_e: f64,
        max_seek: f64,
    ) -> Self {
        for (name, v) in [
            ("short_a", short_a),
            ("short_b", short_b),
            ("long_c", long_c),
            ("long_e", long_e),
            ("max_seek", max_seek),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "seek coefficient {name} invalid: {v}"
            );
        }
        assert!(max_seek > 0.0, "max_seek must be positive");
        SeekProfile {
            short_a,
            short_b,
            cutoff,
            long_c,
            long_e,
            max_seek,
        }
    }

    /// Builds the textbook analytic curve for a disk with the given
    /// single-track seek time, full-stroke seek time, and capacity.
    ///
    /// One third of the stroke is modelled as acceleration-limited (√d);
    /// the remainder is speed-limited (linear), with the two regimes meeting
    /// continuously at the cutoff.
    ///
    /// # Panics
    ///
    /// Panics if times are non-positive/non-finite, `track_to_track >=
    /// max_seek`, or `capacity_bytes == 0`.
    pub fn analytic(track_to_track: f64, max_seek: f64, capacity_bytes: u64) -> Self {
        assert!(
            track_to_track.is_finite() && track_to_track > 0.0,
            "track_to_track must be positive"
        );
        assert!(
            max_seek.is_finite() && max_seek > track_to_track,
            "max_seek must exceed track_to_track"
        );
        assert!(capacity_bytes > 0, "capacity must be positive");
        let cutoff = capacity_bytes / 3;
        // Short regime: t(d) = a + b*sqrt(d), t(0+)≈track_to_track.
        // Choose b so that t(cutoff) = 2/3 of max_seek, then the linear
        // regime carries on to max_seek at full stroke.
        let t_cutoff = max_seek * (2.0 / 3.0);
        let short_a = track_to_track;
        let short_b = (t_cutoff - short_a) / (cutoff as f64).sqrt();
        let remaining = capacity_bytes - cutoff;
        let long_e = (max_seek - t_cutoff) / remaining as f64;
        let long_c = t_cutoff - long_e * cutoff as f64;
        SeekProfile::from_coefficients(
            short_a,
            short_b.max(0.0),
            cutoff,
            long_c.max(0.0),
            long_e,
            max_seek,
        )
    }

    /// Seek time in seconds for a head movement of `distance` bytes.
    ///
    /// Zero distance means the head is already positioned: no seek.
    pub fn seek_secs(&self, distance: u64) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let t = if distance <= self.cutoff {
            self.short_a + self.short_b * (distance as f64).sqrt()
        } else {
            self.long_c + self.long_e * distance as f64
        };
        t.min(self.max_seek)
    }

    /// The full-stroke seek time in seconds (the paper's `S`).
    pub fn max_seek_secs(&self) -> f64 {
        self.max_seek
    }

    /// The distance at which the two regimes meet, in bytes.
    pub fn cutoff_bytes(&self) -> u64 {
        self.cutoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const CAP: u64 = 250 * 1024 * 1024 * 1024;

    fn profile() -> SeekProfile {
        SeekProfile::analytic(2.0e-3, 9.0e-3, CAP)
    }

    #[test]
    fn zero_distance_is_free() {
        assert_eq!(profile().seek_secs(0), 0.0);
    }

    #[test]
    fn small_distance_costs_at_least_track_to_track() {
        let p = profile();
        assert!(p.seek_secs(1) >= 2.0e-3);
    }

    #[test]
    fn full_stroke_hits_cap() {
        let p = profile();
        let full = p.seek_secs(CAP);
        assert!((full - 9.0e-3).abs() < 1e-9, "full stroke = {full}");
        assert_eq!(p.seek_secs(u64::MAX), 9.0e-3);
    }

    #[test]
    fn regimes_meet_continuously() {
        let p = profile();
        let at = p.cutoff_bytes();
        let below = p.seek_secs(at);
        let above = p.seek_secs(at + 1);
        assert!(
            (below - above).abs() < 1e-6,
            "discontinuity: {below} vs {above}"
        );
    }

    #[test]
    fn accessors() {
        let p = profile();
        assert_eq!(p.max_seek_secs(), 9.0e-3);
        assert_eq!(p.cutoff_bytes(), CAP / 3);
    }

    #[test]
    #[should_panic(expected = "max_seek must exceed")]
    fn analytic_rejects_inverted_times() {
        SeekProfile::analytic(9.0e-3, 2.0e-3, CAP);
    }

    #[test]
    #[should_panic(expected = "seek coefficient")]
    fn from_coefficients_rejects_negative() {
        SeekProfile::from_coefficients(-1.0, 0.0, 0, 0.0, 0.0, 1.0);
    }

    proptest! {
        #[test]
        fn prop_monotone_nondecreasing(a in 0u64..CAP, b in 0u64..CAP) {
            let p = profile();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(p.seek_secs(lo) <= p.seek_secs(hi) + 1e-12);
        }

        #[test]
        fn prop_bounded_by_max(d in 0u64..u64::MAX) {
            let p = profile();
            prop_assert!(p.seek_secs(d) <= p.max_seek_secs() + 1e-12);
        }
    }
}
