//! Mechanical hard-drive service-time model.

use s4d_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

use crate::device::{DeviceKind, DeviceModel, IoKind};
use crate::seek::SeekProfile;

/// Configuration of a mechanical hard drive.
///
/// Build one with [`HddConfig::new`] and the `with_*` setters, or start from
/// a preset in [`crate::presets`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HddConfig {
    /// Spindle speed, revolutions per minute.
    rpm: u32,
    /// Sequential transfer rate, bytes per second (same for reads/writes).
    transfer_rate: f64,
    /// Usable capacity in bytes.
    capacity: u64,
    /// The fitted seek curve.
    seek: SeekProfile,
    /// Forward distance (bytes) within which an access still counts as a
    /// continuation of an active stream: it is absorbed by readahead, the
    /// track buffer, or write-back merging instead of paying a mechanical
    /// seek plus rotational delay.
    stream_window: u64,
    /// How many concurrent sequential streams the drive (plus the server's
    /// page cache) can keep warm. A parallel file server multiplexes many
    /// client processes onto one disk; each gets its own readahead context
    /// up to this bound.
    max_streams: usize,
}

impl HddConfig {
    /// Creates a configuration with the given mechanics.
    ///
    /// Defaults: a 1 MiB stream window and 64 concurrent streams; tune with
    /// [`HddConfig::with_stream_window`] / [`HddConfig::with_max_streams`].
    ///
    /// # Panics
    ///
    /// Panics if `rpm == 0`, `transfer_rate` is not positive and finite, or
    /// `capacity == 0`.
    pub fn new(rpm: u32, transfer_rate: f64, capacity: u64, seek: SeekProfile) -> Self {
        assert!(rpm > 0, "rpm must be positive");
        assert!(
            transfer_rate.is_finite() && transfer_rate > 0.0,
            "transfer_rate must be positive"
        );
        assert!(capacity > 0, "capacity must be positive");
        HddConfig {
            rpm,
            transfer_rate,
            capacity,
            seek,
            stream_window: 1024 * 1024,
            max_streams: 64,
        }
    }

    /// Sets the streaming window (see [`HddConfig`]).
    pub fn with_stream_window(mut self, bytes: u64) -> Self {
        self.stream_window = bytes;
        self
    }

    /// Sets the number of concurrently tracked streams.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_max_streams(mut self, n: usize) -> Self {
        assert!(n > 0, "max_streams must be positive");
        self.max_streams = n;
        self
    }

    /// Full-rotation period in seconds.
    pub fn rotation_secs(&self) -> f64 {
        60.0 / self.rpm as f64
    }

    /// Average rotational delay in seconds — the paper's parameter `R`.
    pub fn avg_rotation_secs(&self) -> f64 {
        self.rotation_secs() / 2.0
    }

    /// Full-stroke seek time in seconds — the paper's parameter `S`.
    pub fn max_seek_secs(&self) -> f64 {
        self.seek.max_seek_secs()
    }

    /// Cost of transferring one byte, in seconds — the paper's `β_D`.
    pub fn beta_secs_per_byte(&self) -> f64 {
        1.0 / self.transfer_rate
    }

    /// Sequential transfer rate, bytes per second.
    pub fn transfer_rate(&self) -> f64 {
        self.transfer_rate
    }

    /// Usable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The seek curve.
    pub fn seek_profile(&self) -> &SeekProfile {
        &self.seek
    }

    /// Finishes configuration, producing a model with the head parked at 0.
    pub fn build(self) -> HddModel {
        HddModel {
            config: self,
            head: 0,
            streams: Vec::new(),
            clock: 0,
            ops: 0,
            seeks: 0,
        }
    }
}

/// An active sequential stream: where it ended, and when it was last used.
#[derive(Debug, Clone, Copy)]
struct Stream {
    end: u64,
    last_used: u64,
}

/// A stateful hard-drive model.
///
/// The model remembers the physical head position *and* a bounded set of
/// active sequential streams (readahead / write-merge contexts). An access
/// continuing a tracked stream within the configured window costs transfer
/// time only; any other access pays `F(distance)` seek plus a uniformly
/// random rotational delay, then starts a new stream.
///
/// This multi-stream structure is what lets a simulated file server exhibit
/// the behaviour the paper's Figure 1 measures: many processes each reading
/// sequentially stay fast, while random access collapses to positioning-
/// dominated latency.
#[derive(Debug, Clone)]
pub struct HddModel {
    config: HddConfig,
    head: u64,
    streams: Vec<Stream>,
    clock: u64,
    ops: u64,
    seeks: u64,
}

impl HddModel {
    /// Current physical head byte address.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Total operations serviced.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Operations that required a mechanical seek.
    pub fn seeks(&self) -> u64 {
        self.seeks
    }

    /// Number of streams currently tracked.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &HddConfig {
        &self.config
    }

    /// Finds a stream that `lba` continues, returning its index.
    fn find_stream(&self, lba: u64) -> Option<usize> {
        self.streams
            .iter()
            .position(|s| lba >= s.end && lba - s.end <= self.config.stream_window)
    }
}

impl DeviceModel for HddModel {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Hdd
    }

    fn service_time(&mut self, _kind: IoKind, lba: u64, len: u64, rng: &mut SimRng) -> SimDuration {
        self.ops += 1;
        self.clock += 1;
        let positioning = match self.find_stream(lba) {
            Some(i) => {
                self.streams[i].end = lba.saturating_add(len);
                self.streams[i].last_used = self.clock;
                0.0
            }
            None => {
                self.seeks += 1;
                let distance = lba.abs_diff(self.head);
                let seek = self.config.seek.seek_secs(distance);
                let rotation = rng.f64() * self.config.rotation_secs();
                if self.streams.len() == self.config.max_streams {
                    // Evict the least-recently-used stream context.
                    let lru = self
                        .streams
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.last_used)
                        .map(|(i, _)| i)
                        .expect("non-empty stream set has an LRU entry");
                    self.streams.swap_remove(lru);
                }
                self.streams.push(Stream {
                    end: lba.saturating_add(len),
                    last_used: self.clock,
                });
                seek + rotation
            }
        };
        let transfer = len as f64 * self.config.beta_secs_per_byte();
        self.head = lba.saturating_add(len);
        SimDuration::from_secs_f64(positioning + transfer)
    }

    fn transfer_rate(&self, _kind: IoKind) -> f64 {
        self.config.transfer_rate
    }

    fn reset(&mut self) {
        self.head = 0;
        self.streams.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    const KIB: u64 = 1024;
    const GIB: u64 = 1024 * 1024 * 1024;

    fn model() -> HddModel {
        presets::hdd_seagate_st3250().build()
    }

    #[test]
    fn paper_parameters_are_sane() {
        let c = presets::hdd_seagate_st3250();
        // 7200 rpm: full rotation 8.33 ms, average delay 4.17 ms.
        assert!((c.rotation_secs() - 8.333e-3).abs() < 1e-4);
        assert!((c.avg_rotation_secs() - 4.167e-3).abs() < 1e-4);
        assert!(c.max_seek_secs() > 5e-3 && c.max_seek_secs() < 20e-3);
        // ~100 MB/s era drive: β_D near 10 ns/byte.
        let beta = c.beta_secs_per_byte();
        assert!(beta > 5e-9 && beta < 20e-9, "beta_D = {beta}");
    }

    #[test]
    fn sequential_run_streams_after_first_positioning() {
        let mut m = model();
        let mut rng = SimRng::seed(1);
        let first = m.service_time(IoKind::Write, 10 * GIB, 64 * KIB, &mut rng);
        let mut rest = SimDuration::ZERO;
        for i in 1..10u64 {
            rest += m.service_time(IoKind::Write, 10 * GIB + i * 64 * KIB, 64 * KIB, &mut rng);
        }
        // The 9 continuations together should cost less than the first op's
        // positioning-dominated time at this small request size.
        assert!(rest < first * 9, "first={first} rest={rest}");
        assert_eq!(m.seeks(), 1);
        assert_eq!(m.ops(), 10);
    }

    #[test]
    fn interleaved_streams_all_stay_warm() {
        // 32 processes each appending to their own region, interleaved:
        // after the first round every access is a continuation.
        let mut m = model();
        let mut rng = SimRng::seed(7);
        for round in 0..5u64 {
            for p in 0..32u64 {
                m.service_time(
                    IoKind::Write,
                    p * GIB + round * 16 * KIB,
                    16 * KIB,
                    &mut rng,
                );
            }
        }
        assert_eq!(m.seeks(), 32, "only the first round should seek");
        assert_eq!(m.active_streams(), 32);
    }

    #[test]
    fn stream_capacity_evicts_lru() {
        let c = presets::hdd_seagate_st3250().with_max_streams(4);
        let mut m = c.build();
        let mut rng = SimRng::seed(8);
        for p in 0..5u64 {
            m.service_time(IoKind::Write, p * GIB, 4 * KIB, &mut rng);
        }
        assert_eq!(m.active_streams(), 4);
        // Stream 0 was evicted: continuing it seeks again.
        let seeks_before = m.seeks();
        m.service_time(IoKind::Write, 4 * KIB, 4 * KIB, &mut rng);
        assert_eq!(m.seeks(), seeks_before + 1);
        // Stream 4 is still warm.
        let seeks_before = m.seeks();
        m.service_time(IoKind::Write, 4 * GIB + 4 * KIB, 4 * KIB, &mut rng);
        assert_eq!(m.seeks(), seeks_before, "warm stream must not seek");
    }

    #[test]
    fn random_access_pays_positioning_every_time() {
        let mut m = model();
        let mut rng = SimRng::seed(2);
        let mut total = SimDuration::ZERO;
        for i in 0..100u64 {
            let lba = (i * 7_919 % 97) * (2 * GIB);
            total += m.service_time(IoKind::Read, lba, 4 * KIB, &mut rng);
        }
        let avg = total / 100;
        // Average random 4 KiB access on a 7200 rpm disk: several ms.
        assert!(
            avg > SimDuration::from_millis(3),
            "avg random latency {avg} too low"
        );
        assert!(m.seeks() >= 95);
    }

    #[test]
    fn backward_access_is_not_a_continuation() {
        let mut m = model();
        let mut rng = SimRng::seed(9);
        m.service_time(IoKind::Read, 10 * GIB, 64 * KIB, &mut rng);
        // Re-reading the same spot moves backwards relative to the stream end.
        m.service_time(IoKind::Read, 10 * GIB, 64 * KIB, &mut rng);
        assert_eq!(m.seeks(), 2);
    }

    #[test]
    fn stream_window_tolerates_small_gaps() {
        let c = presets::hdd_seagate_st3250().with_stream_window(64 * KIB);
        let mut m = c.build();
        let mut rng = SimRng::seed(4);
        m.service_time(IoKind::Read, 0, 4 * KIB, &mut rng);
        // 10 KiB hole: within the window, still streaming.
        m.service_time(IoKind::Read, 14 * KIB, 4 * KIB, &mut rng);
        assert_eq!(m.seeks(), 1, "gap within stream window must not seek again");
        m.service_time(IoKind::Read, 10 * GIB, 4 * KIB, &mut rng);
        assert_eq!(m.seeks(), 2);
    }

    #[test]
    fn transfer_dominates_for_large_requests() {
        let mut m = model();
        let mut rng = SimRng::seed(5);
        let t = m.service_time(IoKind::Read, 100 * GIB, 32 * 1024 * KIB, &mut rng);
        let transfer_only =
            SimDuration::from_secs_f64(32.0 * 1024.0 * 1024.0 * m.config().beta_secs_per_byte());
        // Positioning adds at most ~20 ms on top of a ~320 ms transfer.
        assert!(t >= transfer_only);
        assert!(t < transfer_only + SimDuration::from_millis(20));
    }

    #[test]
    fn reset_parks_head_but_keeps_counters() {
        let mut m = model();
        let mut rng = SimRng::seed(6);
        m.service_time(IoKind::Read, GIB, 4 * KIB, &mut rng);
        m.reset();
        assert_eq!(m.head(), 0);
        assert_eq!(m.active_streams(), 0);
        assert_eq!(m.ops(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut m = model();
            let mut rng = SimRng::seed(42);
            (0..50u64)
                .map(|i| m.service_time(IoKind::Read, i * 997 * KIB * KIB, 8 * KIB, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "rpm must be positive")]
    fn rejects_zero_rpm() {
        HddConfig::new(
            0,
            1e8,
            GIB,
            presets::hdd_seagate_st3250().seek_profile().clone(),
        );
    }
}
