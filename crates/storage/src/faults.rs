//! Fault injection for device models.
//!
//! Real deployments degrade: a disk develops remapped sectors and slows
//! down, a controller hiccups, an SSD hits a garbage-collection stall.
//! [`FaultyDevice`] wraps any [`DeviceModel`] with a schedule of such
//! degradations, so tests and experiments can ask how the I/O stack —
//! and S4D-Cache's static cost model — behaves when reality drifts from
//! the modelled service times.

use s4d_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

use crate::device::{DeviceKind, DeviceModel, IoKind};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Every operation from op number `from_op` onward takes `factor`
    /// times as long (a degrading device). Factors stack multiplicatively
    /// with other active faults.
    SlowdownAfter {
        /// First affected operation (0-based).
        from_op: u64,
        /// Service-time multiplier (must be ≥ 1).
        factor: f64,
    },
    /// Operations in `[from_op, to_op)` stall for an extra fixed delay
    /// (GC pause, controller reset, RAID rebuild window).
    StallWindow {
        /// First affected operation (0-based).
        from_op: u64,
        /// One past the last affected operation.
        to_op: u64,
        /// Added delay per operation.
        extra: SimDuration,
    },
}

/// Granularity of the seeded media-error map: device LBAs are grouped
/// into 4 KiB sectors and each sector is independently (but
/// deterministically) marked bad or good by [`sector_is_bad`].
pub const MEDIA_SECTOR_BYTES: u64 = 4096;

/// SplitMix64 finalizer — a cheap, well-mixed hash used to derive a
/// per-sector verdict from `(seed, sector)`. Purely arithmetic, so the
/// bad-sector map is a deterministic function of the seed (same seed ⇒
/// same bad sectors, across runs and platforms).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// True if sector number `sector` is bad under `(seed, bad_ppm)`: each
/// sector draws a deterministic hash and is bad with probability
/// `bad_ppm` parts per million. `bad_ppm == 0` marks nothing bad;
/// `bad_ppm >= 1_000_000` marks everything bad.
pub fn sector_is_bad(seed: u64, sector: u64, bad_ppm: u32) -> bool {
    if bad_ppm == 0 {
        return false;
    }
    let h = splitmix64(seed ^ splitmix64(sector));
    (h % 1_000_000) < u64::from(bad_ppm)
}

/// True if any [`MEDIA_SECTOR_BYTES`]-aligned sector overlapping the
/// device range `[lba, lba + len)` is bad under `(seed, bad_ppm)`.
/// Zero-length ranges touch no sector.
pub fn range_has_bad_sector(seed: u64, bad_ppm: u32, lba: u64, len: u64) -> bool {
    if len == 0 || bad_ppm == 0 {
        return false;
    }
    let first = lba / MEDIA_SECTOR_BYTES;
    let last = (lba + len - 1) / MEDIA_SECTOR_BYTES;
    (first..=last).any(|sector| sector_is_bad(seed, sector, bad_ppm))
}

/// A device wrapper that applies a fault schedule.
///
/// ```
/// use s4d_sim::{SimDuration, SimRng};
/// use s4d_storage::{presets, DeviceModel, Fault, FaultyDevice, IoKind};
///
/// let ssd = presets::ssd_ocz_revodrive_x2().build();
/// let mut faulty = FaultyDevice::new(Box::new(ssd))
///     .with_fault(Fault::SlowdownAfter { from_op: 1, factor: 10.0 });
/// let mut rng = SimRng::seed(1);
/// let healthy = faulty.service_time(IoKind::Read, 0, 4096, &mut rng);
/// let degraded = faulty.service_time(IoKind::Read, 0, 4096, &mut rng);
/// assert!(degraded > healthy * 5);
/// ```
#[derive(Debug)]
pub struct FaultyDevice {
    inner: Box<dyn DeviceModel>,
    faults: Vec<Fault>,
    ops: u64,
}

impl FaultyDevice {
    /// Wraps a device with an empty fault schedule.
    pub fn new(inner: Box<dyn DeviceModel>) -> Self {
        FaultyDevice {
            inner,
            faults: Vec::new(),
            ops: 0,
        }
    }

    /// Adds a fault to the schedule.
    ///
    /// # Panics
    ///
    /// Panics on a slowdown factor below 1 or a non-finite factor, or a
    /// stall window with `to_op <= from_op`.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        match fault {
            Fault::SlowdownAfter { factor, .. } => {
                assert!(
                    factor.is_finite() && factor >= 1.0,
                    "slowdown factor must be >= 1"
                );
            }
            Fault::StallWindow { from_op, to_op, .. } => {
                assert!(to_op > from_op, "stall window must be non-empty");
            }
        }
        self.faults.push(fault);
        self
    }

    /// Operations serviced so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

impl DeviceModel for FaultyDevice {
    fn kind(&self) -> DeviceKind {
        self.inner.kind()
    }

    fn service_time(&mut self, kind: IoKind, lba: u64, len: u64, rng: &mut SimRng) -> SimDuration {
        let op = self.ops;
        self.ops += 1;
        let base = self.inner.service_time(kind, lba, len, rng);
        let mut secs = base.as_secs_f64();
        for fault in &self.faults {
            match *fault {
                Fault::SlowdownAfter { from_op, factor } if op >= from_op => {
                    secs *= factor;
                }
                Fault::StallWindow {
                    from_op,
                    to_op,
                    extra,
                } if op >= from_op && op < to_op => {
                    secs += extra.as_secs_f64();
                }
                _ => {}
            }
        }
        SimDuration::from_secs_f64(secs)
    }

    fn transfer_rate(&self, kind: IoKind) -> f64 {
        self.inner.transfer_rate(kind)
    }

    fn reset(&mut self) {
        self.inner.reset();
        // The fault schedule is keyed by operation number; forgetting to
        // rewind it would leave every fault phase-shifted after a reset.
        self.ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn ssd() -> Box<dyn DeviceModel> {
        Box::new(presets::ssd_ocz_revodrive_x2().build())
    }

    #[test]
    fn media_map_is_deterministic_and_rate_shaped() {
        // Same (seed, sector, ppm) always agrees with itself.
        for sector in 0..256u64 {
            assert_eq!(
                sector_is_bad(42, sector, 5000),
                sector_is_bad(42, sector, 5000)
            );
        }
        // Extremes.
        assert!(!sector_is_bad(1, 7, 0));
        assert!(sector_is_bad(1, 7, 1_000_000));
        // Roughly ppm-shaped: at 100_000 ppm (10%) out of 10_000 sectors,
        // expect a few hundred to ~2000 bad, never zero or all.
        let bad = (0..10_000u64)
            .filter(|&s| sector_is_bad(9, s, 100_000))
            .count();
        assert!(bad > 200 && bad < 2_500, "bad sector count {bad}");
    }

    #[test]
    fn range_check_covers_partial_sectors() {
        // Find a bad and an adjacent good sector for a fixed seed.
        let seed = 3u64;
        let ppm = 50_000u32;
        let bad = (0..100_000u64)
            .find(|&s| sector_is_bad(seed, s, ppm) && !sector_is_bad(seed, s + 1, ppm))
            .expect("some bad sector followed by a good one");
        let lba = bad * MEDIA_SECTOR_BYTES;
        // A one-byte touch of the bad sector trips the range.
        assert!(range_has_bad_sector(seed, ppm, lba, 1));
        assert!(range_has_bad_sector(
            seed,
            ppm,
            lba + MEDIA_SECTOR_BYTES - 1,
            1
        ));
        // The good neighbor alone does not.
        assert!(!range_has_bad_sector(
            seed,
            ppm,
            lba + MEDIA_SECTOR_BYTES,
            MEDIA_SECTOR_BYTES
        ));
        // A range spanning both trips.
        assert!(range_has_bad_sector(
            seed,
            ppm,
            lba + MEDIA_SECTOR_BYTES - 1,
            2
        ));
        // Zero length and zero ppm never trip.
        assert!(!range_has_bad_sector(seed, ppm, lba, 0));
        assert!(!range_has_bad_sector(seed, 0, lba, MEDIA_SECTOR_BYTES));
    }

    #[test]
    fn healthy_wrapper_is_transparent() {
        let mut plain = presets::ssd_ocz_revodrive_x2().build();
        let mut wrapped = FaultyDevice::new(ssd());
        let mut r1 = SimRng::seed(1);
        let mut r2 = SimRng::seed(1);
        for i in 0..10u64 {
            assert_eq!(
                plain.service_time(IoKind::Write, i * 4096, 4096, &mut r1),
                wrapped.service_time(IoKind::Write, i * 4096, 4096, &mut r2)
            );
        }
        assert_eq!(wrapped.kind(), DeviceKind::Ssd);
        assert_eq!(
            wrapped.transfer_rate(IoKind::Read),
            plain.transfer_rate(IoKind::Read)
        );
        assert_eq!(wrapped.ops(), 10);
        wrapped.reset();
    }

    #[test]
    fn slowdown_kicks_in_at_threshold() {
        let mut d = FaultyDevice::new(ssd()).with_fault(Fault::SlowdownAfter {
            from_op: 2,
            factor: 4.0,
        });
        let mut rng = SimRng::seed(2);
        let a = d.service_time(IoKind::Read, 0, 8192, &mut rng);
        let b = d.service_time(IoKind::Read, 0, 8192, &mut rng);
        let c = d.service_time(IoKind::Read, 0, 8192, &mut rng);
        assert_eq!(a, b, "ops before the threshold are healthy");
        assert_eq!(c.as_nanos(), a.as_nanos() * 4);
    }

    #[test]
    fn stall_window_is_bounded() {
        let mut d = FaultyDevice::new(ssd()).with_fault(Fault::StallWindow {
            from_op: 1,
            to_op: 3,
            extra: SimDuration::from_millis(50),
        });
        let mut rng = SimRng::seed(3);
        let base = d.service_time(IoKind::Read, 0, 512, &mut rng);
        let stalled = d.service_time(IoKind::Read, 0, 512, &mut rng);
        let stalled2 = d.service_time(IoKind::Read, 0, 512, &mut rng);
        let after = d.service_time(IoKind::Read, 0, 512, &mut rng);
        assert!(stalled >= base + SimDuration::from_millis(50));
        assert!(stalled2 >= base + SimDuration::from_millis(50));
        assert_eq!(after, base);
    }

    #[test]
    fn faults_compose() {
        let mut d = FaultyDevice::new(ssd())
            .with_fault(Fault::SlowdownAfter {
                from_op: 0,
                factor: 2.0,
            })
            .with_fault(Fault::StallWindow {
                from_op: 0,
                to_op: 1,
                extra: SimDuration::from_millis(10),
            });
        let mut plain = FaultyDevice::new(ssd());
        let mut r1 = SimRng::seed(4);
        let mut r2 = SimRng::seed(4);
        let faulty = d.service_time(IoKind::Write, 0, 4096, &mut r1);
        let healthy = plain.service_time(IoKind::Write, 0, 4096, &mut r2);
        let expect = SimDuration::from_secs_f64(healthy.as_secs_f64() * 2.0 + 10e-3);
        assert_eq!(faulty, expect);
    }

    #[test]
    fn reset_rewinds_the_fault_schedule() {
        let mut d = FaultyDevice::new(ssd()).with_fault(Fault::SlowdownAfter {
            from_op: 2,
            factor: 4.0,
        });
        let mut rng = SimRng::seed(5);
        let healthy = d.service_time(IoKind::Read, 0, 8192, &mut rng);
        for _ in 0..4 {
            d.service_time(IoKind::Read, 0, 8192, &mut rng);
        }
        assert!(d.ops() == 5);
        d.reset();
        assert_eq!(d.ops(), 0, "reset must rewind the op counter");
        // After the reset the schedule starts over: the first two ops are
        // healthy again rather than inheriting the degraded phase.
        let a = d.service_time(IoKind::Read, 0, 8192, &mut rng);
        let b = d.service_time(IoKind::Read, 0, 8192, &mut rng);
        let c = d.service_time(IoKind::Read, 0, 8192, &mut rng);
        assert_eq!(a, healthy);
        assert_eq!(b, healthy);
        assert_eq!(c.as_nanos(), healthy.as_nanos() * 4);
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn rejects_speedup() {
        FaultyDevice::new(ssd()).with_fault(Fault::SlowdownAfter {
            from_op: 0,
            factor: 0.5,
        });
    }

    #[test]
    #[should_panic(expected = "stall window")]
    fn rejects_empty_window() {
        FaultyDevice::new(ssd()).with_fault(Fault::StallWindow {
            from_op: 5,
            to_op: 5,
            extra: SimDuration::ZERO,
        });
    }
}
