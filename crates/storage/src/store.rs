//! Sparse extent byte store.
//!
//! File servers in the simulation hold their data in an [`ExtentStore`]: a
//! map of non-overlapping written extents. Two modes exist because the
//! paper-scale experiments move tens of gigabytes — far more than we want
//! resident:
//!
//! * [`StoreMode::Functional`] keeps the actual bytes, so integration tests
//!   can verify end-to-end data integrity through cache redirection,
//!   eviction, and flushing;
//! * [`StoreMode::Timing`] keeps only extent metadata (what has been
//!   written), which is all the throughput experiments need.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Whether a store retains data bytes or only extent metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StoreMode {
    /// Retain actual bytes; reads return data.
    Functional,
    /// Retain only which ranges were written; reads return no data.
    Timing,
}

#[derive(Debug, Clone)]
struct Extent {
    len: u64,
    /// Present exactly when the store is functional.
    data: Option<Vec<u8>>,
}

/// Outcome of a read against an [`ExtentStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The bytes read, zero-filled over unwritten holes. `None` in timing
    /// mode.
    pub data: Option<Vec<u8>>,
    /// How many of the requested bytes fell inside written extents.
    pub covered_bytes: u64,
}

impl ReadOutcome {
    /// True if every requested byte had been written before.
    pub fn fully_covered(&self, len: u64) -> bool {
        self.covered_bytes == len
    }
}

/// A sparse store of written extents, optionally holding the bytes.
///
/// ```
/// use s4d_storage::{ExtentStore, StoreMode};
/// let mut s = ExtentStore::new(StoreMode::Functional);
/// s.write(10, 4, Some(b"abcd"));
/// let r = s.read(8, 8);
/// assert_eq!(r.data.as_deref(), Some(&[0, 0, b'a', b'b', b'c', b'd', 0, 0][..]));
/// assert_eq!(r.covered_bytes, 4);
/// ```
#[derive(Debug, Clone)]
pub struct ExtentStore {
    mode: StoreMode,
    /// Non-overlapping extents keyed by start offset.
    extents: BTreeMap<u64, Extent>,
    written: u64,
}

impl ExtentStore {
    /// Creates an empty store in the given mode.
    pub fn new(mode: StoreMode) -> Self {
        ExtentStore {
            mode,
            extents: BTreeMap::new(),
            written: 0,
        }
    }

    /// The store's mode.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// Total bytes currently covered by written extents.
    pub fn written_bytes(&self) -> u64 {
        self.written
    }

    /// Number of distinct extents (after coalescing).
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Writes `len` bytes at `offset`.
    ///
    /// In functional mode `data` must be `Some` with exactly `len` bytes; in
    /// timing mode `data` is ignored.
    ///
    /// # Panics
    ///
    /// Panics in functional mode if `data` is missing or of the wrong
    /// length, or if `offset + len` overflows.
    pub fn write(&mut self, offset: u64, len: u64, data: Option<&[u8]>) {
        if len == 0 {
            return;
        }
        let end = offset.checked_add(len).expect("extent end overflows u64");
        let keep = match self.mode {
            StoreMode::Functional => {
                let d = data.expect("functional store requires data bytes");
                assert!(
                    d.len() as u64 == len,
                    "data length {} != extent length {len}",
                    d.len()
                );
                Some(d.to_vec())
            }
            StoreMode::Timing => None,
        };
        self.remove_range(offset, end);
        self.insert_coalescing(offset, Extent { len, data: keep });
    }

    /// Reads `len` bytes at `offset`.
    pub fn read(&self, offset: u64, len: u64) -> ReadOutcome {
        let mut covered = 0u64;
        let mut data = match self.mode {
            StoreMode::Functional => Some(vec![0u8; len as usize]),
            StoreMode::Timing => None,
        };
        if len == 0 {
            return ReadOutcome {
                data,
                covered_bytes: 0,
            };
        }
        let end = offset.saturating_add(len);
        for (&start, ext) in self.overlapping(offset, end) {
            let ext_end = start + ext.len;
            let lo = start.max(offset);
            let hi = ext_end.min(end);
            covered += hi - lo;
            if let (Some(buf), Some(src)) = (data.as_mut(), ext.data.as_ref()) {
                let dst_at = (lo - offset) as usize;
                let src_at = (lo - start) as usize;
                let n = (hi - lo) as usize;
                buf[dst_at..dst_at + n].copy_from_slice(&src[src_at..src_at + n]);
            }
        }
        ReadOutcome {
            data,
            covered_bytes: covered,
        }
    }

    /// True if every byte of `[offset, offset+len)` has been written.
    pub fn covers(&self, offset: u64, len: u64) -> bool {
        self.read_covered(offset, len) == len
    }

    /// Number of bytes of `[offset, offset+len)` inside written extents.
    pub fn read_covered(&self, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let end = offset.saturating_add(len);
        self.overlapping(offset, end)
            .map(|(&start, ext)| {
                let ext_end = start + ext.len;
                ext_end.min(end) - start.max(offset)
            })
            .sum()
    }

    /// Removes all extents (or parts of extents) in `[offset, offset+len)`.
    pub fn discard(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = offset.checked_add(len).expect("extent end overflows u64");
        self.remove_range(offset, end);
    }

    /// Clears the entire store.
    pub fn clear(&mut self) {
        self.extents.clear();
        self.written = 0;
    }

    /// Iterator over extents intersecting `[lo, hi)`.
    fn overlapping(&self, lo: u64, hi: u64) -> impl Iterator<Item = (&u64, &Extent)> {
        // The first candidate may start before `lo` and still overlap.
        let first = self
            .extents
            .range(..=lo)
            .next_back()
            .filter(|(&s, e)| s + e.len > lo)
            .map(|(s, _)| *s);
        let lower = first.unwrap_or(lo);
        self.extents
            .range(lower..hi)
            .filter(move |(&s, e)| s < hi && s + e.len > lo)
    }

    /// Cuts `[lo, hi)` out of the extent map, splitting boundary extents.
    fn remove_range(&mut self, lo: u64, hi: u64) {
        let keys: Vec<u64> = self.overlapping(lo, hi).map(|(&s, _)| s).collect();
        for start in keys {
            let ext = self.extents.remove(&start).expect("key just observed");
            let end = start + ext.len;
            self.written -= ext.len;
            if start < lo {
                // Left remainder survives.
                let keep = lo - start;
                let data = ext.data.as_ref().map(|d| d[..keep as usize].to_vec());
                self.written += keep;
                self.extents.insert(start, Extent { len: keep, data });
            }
            if end > hi {
                // Right remainder survives.
                let keep = end - hi;
                let data = ext
                    .data
                    .as_ref()
                    .map(|d| d[(hi - start) as usize..].to_vec());
                self.written += keep;
                self.extents.insert(hi, Extent { len: keep, data });
            }
        }
    }

    /// Inserts a fresh extent, merging with direct neighbours when adjacent.
    fn insert_coalescing(&mut self, start: u64, ext: Extent) {
        self.written += ext.len;
        self.extents.insert(start, ext);
        self.coalesce_around(start);
    }

    /// Coalesces the extent at `start` with adjacent neighbours.
    fn coalesce_around(&mut self, start: u64) {
        // Merge right neighbour while exactly adjacent.
        loop {
            let (s, len) = match self.extents.get(&start) {
                Some(e) => (start, e.len),
                None => return,
            };
            let next = self
                .extents
                .range(s + 1..)
                .next()
                .map(|(&ns, ne)| (ns, ne.len));
            match next {
                Some((ns, _)) if ns == s + len => {
                    let right = self.extents.remove(&ns).expect("key just observed");
                    let left = self.extents.get_mut(&s).expect("key just observed");
                    if let (Some(ld), Some(rd)) = (left.data.as_mut(), right.data.as_ref()) {
                        ld.extend_from_slice(rd);
                    }
                    left.len += right.len;
                }
                _ => break,
            }
        }
        // Merge with left neighbour if exactly adjacent.
        if let Some((&ls, le)) = self.extents.range(..start).next_back() {
            if ls + le.len == start {
                let cur = self.extents.remove(&start).expect("key just observed");
                let left = self.extents.get_mut(&ls).expect("key just observed");
                if let (Some(ld), Some(cd)) = (left.data.as_mut(), cur.data.as_ref()) {
                    ld.extend_from_slice(cd);
                }
                left.len += cur.len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_functional() {
        let mut s = ExtentStore::new(StoreMode::Functional);
        s.write(100, 5, Some(b"hello"));
        let r = s.read(100, 5);
        assert_eq!(r.data.as_deref(), Some(&b"hello"[..]));
        assert!(r.fully_covered(5));
        assert_eq!(s.written_bytes(), 5);
    }

    #[test]
    fn holes_read_as_zeroes() {
        let mut s = ExtentStore::new(StoreMode::Functional);
        s.write(10, 2, Some(b"ab"));
        let r = s.read(8, 6);
        assert_eq!(r.data.as_deref(), Some(&[0, 0, b'a', b'b', 0, 0][..]));
        assert_eq!(r.covered_bytes, 2);
        assert!(!r.fully_covered(6));
    }

    #[test]
    fn overwrite_replaces_overlap() {
        let mut s = ExtentStore::new(StoreMode::Functional);
        s.write(0, 8, Some(b"AAAAAAAA"));
        s.write(2, 4, Some(b"bbbb"));
        let r = s.read(0, 8);
        assert_eq!(r.data.as_deref(), Some(&b"AAbbbbAA"[..]));
        assert_eq!(s.written_bytes(), 8);
    }

    #[test]
    fn adjacent_writes_coalesce() {
        let mut s = ExtentStore::new(StoreMode::Functional);
        s.write(0, 4, Some(b"aaaa"));
        s.write(4, 4, Some(b"bbbb"));
        s.write(8, 4, Some(b"cccc"));
        assert_eq!(s.extent_count(), 1);
        assert_eq!(s.read(0, 12).data.as_deref(), Some(&b"aaaabbbbcccc"[..]));
    }

    #[test]
    fn coalesce_left_then_right_bridging() {
        let mut s = ExtentStore::new(StoreMode::Functional);
        s.write(0, 4, Some(b"aaaa"));
        s.write(8, 4, Some(b"cccc"));
        assert_eq!(s.extent_count(), 2);
        s.write(4, 4, Some(b"bbbb")); // bridges both neighbours
        assert_eq!(s.extent_count(), 1);
        assert_eq!(s.read(0, 12).data.as_deref(), Some(&b"aaaabbbbcccc"[..]));
    }

    #[test]
    fn discard_splits_extents() {
        let mut s = ExtentStore::new(StoreMode::Functional);
        s.write(0, 10, Some(b"0123456789"));
        s.discard(3, 4);
        assert_eq!(s.written_bytes(), 6);
        assert_eq!(s.extent_count(), 2);
        let r = s.read(0, 10);
        assert_eq!(
            r.data.as_deref(),
            Some(&[b'0', b'1', b'2', 0, 0, 0, 0, b'7', b'8', b'9'][..])
        );
        assert!(s.covers(0, 3));
        assert!(!s.covers(2, 3));
        assert!(s.covers(7, 3));
    }

    #[test]
    fn timing_mode_tracks_coverage_without_bytes() {
        let mut s = ExtentStore::new(StoreMode::Timing);
        s.write(0, 1024, None);
        s.write(2048, 1024, None);
        let r = s.read(0, 4096);
        assert_eq!(r.data, None);
        assert_eq!(r.covered_bytes, 2048);
        assert_eq!(s.read_covered(512, 2048), 1024);
        assert_eq!(s.written_bytes(), 2048);
    }

    #[test]
    fn zero_length_ops_are_noops() {
        let mut s = ExtentStore::new(StoreMode::Functional);
        s.write(5, 0, Some(b""));
        assert_eq!(s.written_bytes(), 0);
        let r = s.read(5, 0);
        assert_eq!(r.covered_bytes, 0);
        s.discard(5, 0);
    }

    #[test]
    fn clear_resets() {
        let mut s = ExtentStore::new(StoreMode::Timing);
        s.write(0, 100, None);
        s.clear();
        assert_eq!(s.written_bytes(), 0);
        assert_eq!(s.extent_count(), 0);
    }

    #[test]
    #[should_panic(expected = "functional store requires data")]
    fn functional_write_requires_data() {
        ExtentStore::new(StoreMode::Functional).write(0, 4, None);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn functional_write_checks_length() {
        ExtentStore::new(StoreMode::Functional).write(0, 4, Some(b"xy"));
    }

    // Model-based property test: the extent store must agree with a plain
    // byte array on every read, and written_bytes must equal the count of
    // written positions.
    proptest! {
        #[test]
        fn prop_matches_naive_model(
            ops in proptest::collection::vec(
                (0u64..256, 1u64..64, any::<u8>(), any::<bool>()),
                1..60
            )
        ) {
            const N: usize = 512;
            let mut model: Vec<Option<u8>> = vec![None; N];
            let mut store = ExtentStore::new(StoreMode::Functional);
            for (off, len, byte, is_discard) in ops {
                let len = len.min(N as u64 - off);
                if len == 0 { continue; }
                if is_discard {
                    store.discard(off, len);
                    for i in off..off + len {
                        model[i as usize] = None;
                    }
                } else {
                    let data = vec![byte; len as usize];
                    store.write(off, len, Some(&data));
                    for i in off..off + len {
                        model[i as usize] = Some(byte);
                    }
                }
            }
            // Full-range read agrees with the model.
            let r = store.read(0, N as u64);
            let got = r.data.unwrap();
            for i in 0..N {
                prop_assert_eq!(got[i], model[i].unwrap_or(0), "mismatch at {}", i);
            }
            let written = model.iter().filter(|b| b.is_some()).count() as u64;
            prop_assert_eq!(r.covered_bytes, written);
            prop_assert_eq!(store.written_bytes(), written);
        }
    }
}
