//! The device abstraction shared by HDD and SSD models.

use s4d_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Direction of an I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Data flows from the device to the host.
    Read,
    /// Data flows from the host to the device.
    Write,
}

impl IoKind {
    /// True for [`IoKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, IoKind::Read)
    }

    /// True for [`IoKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, IoKind::Write)
    }
}

impl std::fmt::Display for IoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoKind::Read => "read",
            IoKind::Write => "write",
        })
    }
}

/// The broad class of a storage device: the distinction S4D-Cache is built
/// around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Mechanical hard disk drive: position-sensitive.
    Hdd,
    /// Solid-state drive: position-insensitive.
    Ssd,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeviceKind::Hdd => "HDD",
            DeviceKind::Ssd => "SSD",
        })
    }
}

/// A storage device service-time model.
///
/// Implementations are stateful: a mechanical disk remembers its head
/// position, so back-to-back sequential accesses are cheap while distant
/// ones pay seek and rotational costs. All implementations must be
/// deterministic given the same call sequence and RNG state.
pub trait DeviceModel: std::fmt::Debug + Send {
    /// The device class (drives cache-tier bookkeeping and reporting).
    fn kind(&self) -> DeviceKind;

    /// Time to service one contiguous operation of `len` bytes at byte
    /// address `lba`, advancing device state (e.g. head position).
    ///
    /// `rng` supplies the stochastic components (rotational position); a
    /// model may ignore it.
    fn service_time(&mut self, kind: IoKind, lba: u64, len: u64, rng: &mut SimRng) -> SimDuration;

    /// Sequential transfer rate in bytes per second for the given direction
    /// (the `1/β` of the paper's cost model).
    fn transfer_rate(&self, kind: IoKind) -> f64;

    /// Resets positional state (head parked at zero); counters unaffected.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iokind_helpers() {
        assert!(IoKind::Read.is_read());
        assert!(!IoKind::Read.is_write());
        assert!(IoKind::Write.is_write());
        assert_eq!(IoKind::Read.to_string(), "read");
        assert_eq!(IoKind::Write.to_string(), "write");
    }

    #[test]
    fn device_kind_display() {
        assert_eq!(DeviceKind::Hdd.to_string(), "HDD");
        assert_eq!(DeviceKind::Ssd.to_string(), "SSD");
    }
}
