//! Offline seek-curve profiling.
//!
//! The paper derives its `F(d)` (distance → seek time) function "from an
//! offline profiling of the HDD storage" following its reference \[28\]
//! (FS²). This module performs the same procedure against a device model:
//! issue probe accesses at controlled distances, strip the rotational
//! component statistically, and fit the two-regime seek curve
//! (`a + b·√d` short / `c + e·d` long) by least squares, choosing the
//! regime boundary that minimises total squared error.
//!
//! In a real deployment the probes would hit the physical drive; here they
//! hit an [`crate::HddModel`], and the tests confirm the fit recovers the model's
//! own curve — which is exactly the property the paper's methodology needs.

use s4d_sim::SimRng;

use crate::device::{DeviceModel, IoKind};
use crate::hdd::HddConfig;
use crate::seek::SeekProfile;

/// One profiling observation: distance probed and mean positioning time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekSample {
    /// Probe distance in bytes.
    pub distance: u64,
    /// Estimated pure seek time in seconds (rotation removed).
    pub seek_secs: f64,
}

/// Collects seek samples from a device built from `config`.
///
/// For each distance on a logarithmic grid, the probe alternates far jumps
/// of exactly that distance, measuring the service time of a 1-byte read and
/// subtracting the transfer and the *expected* rotational delay (half a
/// revolution); averaging over `samples_per_distance` probes cancels
/// rotational noise.
///
/// # Panics
///
/// Panics if `samples_per_distance == 0`.
pub fn collect_seek_samples(
    config: &HddConfig,
    samples_per_distance: u32,
    rng: &mut SimRng,
) -> Vec<SeekSample> {
    assert!(
        samples_per_distance > 0,
        "need at least one sample per distance"
    );
    let mut device = config
        .clone()
        .with_stream_window(0)
        .with_max_streams(1)
        .build();
    let capacity = config.capacity();
    let mut samples = Vec::new();
    let mut distance = 4096u64;
    while distance < capacity {
        let mut total = 0.0;
        let mut measured = 0u32;
        let mut pos = 0u64;
        for _ in 0..samples_per_distance {
            let target = if pos + distance < capacity {
                pos + distance
            } else {
                pos - distance
            };
            let t = device.service_time(IoKind::Read, target, 1, rng);
            total += t.as_secs_f64();
            measured += 1;
            pos = target + 1;
        }
        let transfer = config.beta_secs_per_byte();
        let mean = total / measured as f64 - transfer - config.avg_rotation_secs();
        samples.push(SeekSample {
            distance,
            seek_secs: mean.max(0.0),
        });
        distance = distance.saturating_mul(2);
    }
    samples
}

/// Fits a [`SeekProfile`] to profiling samples.
///
/// Tries every sample index as the short/long regime boundary, fits
/// `a + b·√d` below and `c + e·d` above by least squares, and keeps the
/// split with the lowest total squared error. The full-stroke cap is the
/// largest observed seek time.
///
/// # Errors
///
/// Returns [`FitError`] if fewer than four samples are supplied (two per
/// regime) or the fit degenerates to negative coefficients that cannot be
/// clamped meaningfully.
pub fn fit_seek_profile(samples: &[SeekSample]) -> Result<SeekProfile, FitError> {
    if samples.len() < 4 {
        return Err(FitError::TooFewSamples(samples.len()));
    }
    let max_seek = samples.iter().map(|s| s.seek_secs).fold(0.0f64, f64::max);
    if max_seek <= 0.0 {
        return Err(FitError::Degenerate);
    }
    let mut best: Option<(f64, SeekProfile)> = None;
    for split in 2..samples.len() - 1 {
        let (short, long) = samples.split_at(split);
        let (a, b, err_s) = least_squares(short, |d| (d as f64).sqrt());
        let (c, e, err_l) = least_squares(long, |d| d as f64);
        if a < -1e-4 || b < 0.0 || e < 0.0 {
            continue;
        }
        let err = err_s + err_l;
        let profile = SeekProfile::from_coefficients(
            a.max(0.0),
            b,
            short.last().expect("split >= 2").distance,
            c.max(0.0),
            e,
            max_seek,
        );
        if best.as_ref().is_none_or(|(be, _)| err < *be) {
            best = Some((err, profile));
        }
    }
    best.map(|(_, p)| p).ok_or(FitError::Degenerate)
}

/// Profiles `config` end to end: collect samples, fit the curve.
///
/// # Errors
///
/// Propagates [`FitError`] from [`fit_seek_profile`].
pub fn profile_seek_curve(
    config: &HddConfig,
    samples_per_distance: u32,
    rng: &mut SimRng,
) -> Result<SeekProfile, FitError> {
    let samples = collect_seek_samples(config, samples_per_distance, rng);
    fit_seek_profile(&samples)
}

/// Ordinary least squares of `seek_secs` on `f(distance)` with intercept.
/// Returns `(intercept, slope, squared_error)`.
fn least_squares(samples: &[SeekSample], f: impl Fn(u64) -> f64) -> (f64, f64, f64) {
    let n = samples.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for s in samples {
        let x = f(s.distance);
        sx += x;
        sy += s.seek_secs;
        sxx += x * x;
        sxy += x * s.seek_secs;
    }
    let denom = n * sxx - sx * sx;
    let (a, b) = if denom.abs() < f64::EPSILON {
        (sy / n, 0.0)
    } else {
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        (intercept, slope)
    };
    let err: f64 = samples
        .iter()
        .map(|s| {
            let pred = a + b * f(s.distance);
            (pred - s.seek_secs).powi(2)
        })
        .sum();
    (a, b, err)
}

/// Failure to fit a seek curve from profiling samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Not enough samples: contains the number supplied.
    TooFewSamples(usize),
    /// Samples were flat or negative; no meaningful curve exists.
    Degenerate,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples(n) => {
                write!(f, "seek-curve fit needs at least 4 samples, got {n}")
            }
            FitError::Degenerate => write!(f, "seek samples are degenerate (flat or negative)"),
        }
    }
}

impl std::error::Error for FitError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn samples_cover_log_grid_and_grow() {
        let config = presets::hdd_seagate_st3250();
        let mut rng = SimRng::seed(11);
        let samples = collect_seek_samples(&config, 64, &mut rng);
        assert!(samples.len() > 10);
        // Distances double.
        for w in samples.windows(2) {
            assert_eq!(w[1].distance, w[0].distance * 2);
        }
        // Long seeks cost more than short ones.
        let first = samples.first().unwrap().seek_secs;
        let last = samples.last().unwrap().seek_secs;
        assert!(last > first, "{last} <= {first}");
    }

    #[test]
    fn fitted_curve_recovers_ground_truth() {
        let config = presets::hdd_seagate_st3250();
        let truth = config.seek_profile().clone();
        let mut rng = SimRng::seed(12);
        let fitted = profile_seek_curve(&config, 128, &mut rng).expect("fit succeeds");
        // Compare at probe distances across both regimes.
        for exp in [14u64, 20, 26, 30, 34, 37] {
            let d = 1u64 << exp;
            let t = truth.seek_secs(d);
            let f = fitted.seek_secs(d);
            let tol = (t * 0.30).max(1.5e-3); // rotation noise leaves residue
            assert!(
                (t - f).abs() < tol,
                "at d=2^{exp}: truth {t:.4} vs fitted {f:.4}"
            );
        }
    }

    #[test]
    fn fit_rejects_too_few_samples() {
        let s = vec![
            SeekSample {
                distance: 1,
                seek_secs: 0.001,
            },
            SeekSample {
                distance: 2,
                seek_secs: 0.002,
            },
        ];
        assert_eq!(fit_seek_profile(&s), Err(FitError::TooFewSamples(2)));
    }

    #[test]
    fn fit_rejects_flat_zero_samples() {
        let s: Vec<SeekSample> = (1..10)
            .map(|i| SeekSample {
                distance: i * 1000,
                seek_secs: 0.0,
            })
            .collect();
        assert_eq!(fit_seek_profile(&s), Err(FitError::Degenerate));
    }

    #[test]
    fn error_display() {
        assert!(FitError::TooFewSamples(1)
            .to_string()
            .contains("at least 4"));
        assert!(FitError::Degenerate.to_string().contains("degenerate"));
    }

    #[test]
    fn least_squares_exact_on_linear_data() {
        let samples: Vec<SeekSample> = (1..=10)
            .map(|i| SeekSample {
                distance: i * 100,
                seek_secs: 3.0 + 0.5 * (i * 100) as f64,
            })
            .collect();
        let (a, b, err) = least_squares(&samples, |d| d as f64);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-12);
        assert!(err < 1e-12);
    }
}
