//! # s4d-storage — device models and byte stores
//!
//! The storage substrate of the S4D-Cache reproduction. The original paper
//! evaluates on SEAGATE ST32502NS hard drives and OCZ RevoDrive X2 SSDs; this
//! crate models the *service-time behaviour* the paper's cost model and
//! experiments depend on:
//!
//! * [`HddModel`] — mechanical disk with a head position, a seek-distance →
//!   seek-time curve (`F(d)` in the paper, obtained by offline profiling per
//!   its reference \[28\]), rotational delay, and a sequential transfer rate;
//! * [`SsdModel`] — position-insensitive device with asymmetric read/write
//!   transfer rates and a small fixed per-operation latency;
//! * [`SeekProfile`] — the fitted `F(d)` curve, shared between the simulator
//!   and the cost model so decisions and outcomes stay consistent;
//! * [`profile::profile_seek_curve`] — the offline profiling procedure that
//!   produces a [`SeekProfile`] from measurements of a device;
//! * [`ExtentStore`] — a sparse extent map holding file bytes (optional, so
//!   large timing-only simulations do not hold gigabytes in RAM);
//! * [`presets`] — parameter sets for the paper's testbed hardware;
//! * [`FaultyDevice`] — fault injection (degradation, stall windows) over
//!   any device model.
//!
//! ```
//! use s4d_sim::SimRng;
//! use s4d_storage::{presets, DeviceModel, IoKind};
//!
//! let mut hdd = presets::hdd_seagate_st3250().build();
//! let mut rng = SimRng::seed(1);
//! let far = hdd.service_time(IoKind::Read, 50 * 1024 * 1024 * 1024, 4096, &mut rng);
//! let seq = hdd.service_time(IoKind::Read, hdd.head(), 4096, &mut rng);
//! assert!(far > seq * 10, "random access must dwarf sequential access");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod faults;
mod hdd;
pub mod presets;
pub mod profile;
mod seek;
mod ssd;
mod store;

pub use device::{DeviceKind, DeviceModel, IoKind};
pub use faults::{range_has_bad_sector, sector_is_bad, Fault, FaultyDevice, MEDIA_SECTOR_BYTES};
pub use hdd::{HddConfig, HddModel};
pub use seek::SeekProfile;
pub use ssd::{SsdConfig, SsdModel};
pub use store::{ExtentStore, StoreMode};
