//! Solid-state-drive service-time model.

use s4d_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

use crate::device::{DeviceKind, DeviceModel, IoKind};

/// Configuration of a solid-state drive.
///
/// The model captures the two properties the paper exploits (§III): access
/// cost is insensitive to position, and reads are faster than writes. Each
/// operation costs a fixed per-op latency plus bytes at the direction's
/// transfer rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Sustained read rate, bytes per second.
    read_rate: f64,
    /// Sustained write rate, bytes per second.
    write_rate: f64,
    /// Fixed per-operation latency, seconds (flash access + controller).
    op_latency: f64,
    /// Usable capacity in bytes.
    capacity: u64,
}

impl SsdConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if a rate or latency is non-positive/non-finite (latency may
    /// be zero) or `capacity == 0`.
    pub fn new(read_rate: f64, write_rate: f64, op_latency: f64, capacity: u64) -> Self {
        assert!(
            read_rate.is_finite() && read_rate > 0.0,
            "read_rate must be positive"
        );
        assert!(
            write_rate.is_finite() && write_rate > 0.0,
            "write_rate must be positive"
        );
        assert!(
            op_latency.is_finite() && op_latency >= 0.0,
            "op_latency must be non-negative"
        );
        assert!(capacity > 0, "capacity must be positive");
        SsdConfig {
            read_rate,
            write_rate,
            op_latency,
            capacity,
        }
    }

    /// Per-byte cost in seconds for the given direction (the paper's `β_C`).
    pub fn beta_secs_per_byte(&self, kind: IoKind) -> f64 {
        match kind {
            IoKind::Read => 1.0 / self.read_rate,
            IoKind::Write => 1.0 / self.write_rate,
        }
    }

    /// Fixed per-operation latency, seconds.
    pub fn op_latency_secs(&self) -> f64 {
        self.op_latency
    }

    /// Usable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Sustained rate for the given direction, bytes per second.
    pub fn rate(&self, kind: IoKind) -> f64 {
        match kind {
            IoKind::Read => self.read_rate,
            IoKind::Write => self.write_rate,
        }
    }

    /// Finishes configuration.
    pub fn build(self) -> SsdModel {
        SsdModel {
            config: self,
            ops: 0,
        }
    }
}

/// A stateless (position-free) SSD service-time model.
#[derive(Debug, Clone)]
pub struct SsdModel {
    config: SsdConfig,
    ops: u64,
}

impl SsdModel {
    /// Total operations serviced.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }
}

impl DeviceModel for SsdModel {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Ssd
    }

    fn service_time(
        &mut self,
        kind: IoKind,
        _lba: u64,
        len: u64,
        _rng: &mut SimRng,
    ) -> SimDuration {
        self.ops += 1;
        let secs = self.config.op_latency + len as f64 * self.config.beta_secs_per_byte(kind);
        SimDuration::from_secs_f64(secs)
    }

    fn transfer_rate(&self, kind: IoKind) -> f64 {
        self.config.rate(kind)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    const KIB: u64 = 1024;
    const GIB: u64 = 1024 * 1024 * 1024;

    #[test]
    fn position_insensitive() {
        let mut m = presets::ssd_ocz_revodrive_x2().build();
        let mut rng = SimRng::seed(1);
        let near = m.service_time(IoKind::Read, 0, 4 * KIB, &mut rng);
        let far = m.service_time(IoKind::Read, 90 * GIB, 4 * KIB, &mut rng);
        assert_eq!(near, far, "SSD cost must not depend on address");
    }

    #[test]
    fn reads_faster_than_writes() {
        let mut m = presets::ssd_ocz_revodrive_x2().build();
        let mut rng = SimRng::seed(2);
        let r = m.service_time(IoKind::Read, 0, 1024 * KIB, &mut rng);
        let w = m.service_time(IoKind::Write, 0, 1024 * KIB, &mut rng);
        assert!(r < w, "read {r} should beat write {w}");
    }

    #[test]
    fn small_random_far_cheaper_than_hdd() {
        let mut ssd = presets::ssd_ocz_revodrive_x2().build();
        let mut hdd = presets::hdd_seagate_st3250().build();
        let mut rng = SimRng::seed(3);
        let mut ssd_total = SimDuration::ZERO;
        let mut hdd_total = SimDuration::ZERO;
        for i in 0..50u64 {
            let lba = (i * 7919 % 97) * GIB / 97;
            ssd_total += ssd.service_time(IoKind::Read, lba, 16 * KIB, &mut rng);
            hdd_total += hdd.service_time(IoKind::Read, lba, 16 * KIB, &mut rng);
        }
        assert!(
            hdd_total > ssd_total * 10,
            "hdd {hdd_total} should be ≫ ssd {ssd_total} on random 16 KiB"
        );
    }

    #[test]
    fn service_scales_linearly_with_len() {
        let c = presets::ssd_ocz_revodrive_x2();
        let lat = c.op_latency_secs();
        let beta = c.beta_secs_per_byte(IoKind::Write);
        let mut m = c.build();
        let mut rng = SimRng::seed(4);
        let t = m.service_time(IoKind::Write, 0, 1_000_000, &mut rng);
        let expect = SimDuration::from_secs_f64(lat + 1e6 * beta);
        assert_eq!(t, expect);
    }

    #[test]
    fn counters_and_reset() {
        let mut m = presets::ssd_ocz_revodrive_x2().build();
        let mut rng = SimRng::seed(5);
        m.service_time(IoKind::Read, 0, 1, &mut rng);
        m.reset();
        assert_eq!(m.ops(), 1);
        assert_eq!(m.kind(), DeviceKind::Ssd);
    }

    #[test]
    #[should_panic(expected = "read_rate must be positive")]
    fn rejects_bad_rate() {
        SsdConfig::new(0.0, 1e8, 0.0, GIB);
    }
}
