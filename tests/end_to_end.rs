//! Cross-crate integration tests: the full stack from application scripts
//! through middleware, parallel file systems, and device models.

use std::cell::RefCell;
use std::rc::Rc;

use s4d::bench::{run_s4d, run_s4d_second_read, run_stock, testbed};
use s4d::cache::{S4dCache, S4dConfig};
use s4d::mpiio::{script, Cluster, IoObserver, Rank, Runner};
use s4d::sim::SimTime;
use s4d::storage::IoKind;
use s4d::workloads::{AccessPattern, IorConfig};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn small_ior(pattern: AccessPattern) -> IorConfig {
    IorConfig {
        file_name: "e2e.dat".into(),
        file_size: 32 * MIB,
        processes: 8,
        request_size: 16 * KIB,
        pattern,
        do_write: true,
        do_read: true,
        seed: 11,
    }
}

#[test]
fn s4d_beats_stock_on_random_io() {
    let tb = testbed(1);
    let mut cfg = small_ior(AccessPattern::Random);
    cfg.file_size = 64 * MIB;
    cfg.processes = 16;
    let stock = run_stock(&tb, cfg.scripts(), Vec::new());
    let s4d = run_s4d(&tb, S4dConfig::new(32 * MIB), cfg.scripts(), Vec::new());
    assert!(
        s4d.write_mibs() > stock.write_mibs() * 1.15,
        "s4d {:.1} should clearly beat stock {:.1} on random 16 KiB",
        s4d.write_mibs(),
        stock.write_mibs()
    );
}

#[test]
fn s4d_does_not_hurt_sequential_large_io() {
    let tb = testbed(2);
    let mut cfg = small_ior(AccessPattern::Sequential);
    cfg.request_size = 4 * MIB;
    cfg.file_size = 128 * MIB;
    let stock = run_stock(&tb, cfg.scripts(), Vec::new());
    let s4d = run_s4d(&tb, S4dConfig::new(32 * MIB), cfg.scripts(), Vec::new());
    // Nothing should be redirected, so throughput within 2 %.
    assert_eq!(
        s4d.report.tiers.c_ops, 0,
        "4 MiB requests must stay on DServers"
    );
    let ratio = s4d.write_mibs() / stock.write_mibs();
    assert!(
        (0.98..=1.02).contains(&ratio),
        "s4d should match stock on large sequential I/O, ratio {ratio}"
    );
}

#[test]
fn data_integrity_through_cache_redirection() {
    // Functional-mode cluster: every byte written through S4D-Cache —
    // whether absorbed by CServers, spilled to DServers, flushed, or
    // evicted — must read back exactly.
    type Expected = Rc<RefCell<Vec<(u64, Vec<u8>)>>>;
    struct Verify {
        expected: Expected,
        failures: Rc<RefCell<Vec<String>>>,
        idx: usize,
    }
    impl IoObserver for Verify {
        fn on_read_data(&mut self, _r: Rank, offset: u64, _len: u64, data: Option<&[u8]>) {
            let expected = self.expected.borrow();
            let (exp_off, exp_data) = &expected[self.idx];
            let data = data.expect("functional run returns data");
            if *exp_off != offset || exp_data.as_slice() != data {
                self.failures
                    .borrow_mut()
                    .push(format!("mismatch at read #{} offset {offset}", self.idx));
            }
            self.idx += 1;
        }
    }

    let tb = testbed(3);
    let params = tb.cost_params();
    // Tiny cache so eviction and spill paths are exercised.
    let config = S4dConfig::new(256 * KIB).with_journal_batch(1);
    let cluster = Cluster::paper_testbed_small(3);

    // One process writes pattern data at mixed offsets, then reads it all
    // back in a different order.
    let mut writes: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut b = script().open("integrity.dat");
    for i in 0..48u64 {
        let offset = (i * 7919) % 64 * 16 * KIB;
        let data: Vec<u8> = (0..16 * KIB).map(|j| ((i * 31 + j) % 251) as u8).collect();
        // Later writes overwrite earlier ones at the same offset; keep the
        // final image.
        writes.retain(|(o, _)| *o != offset);
        writes.push((offset, data.clone()));
        b = b.write_bytes(0, offset, data);
    }
    writes.sort_by_key(|(o, _)| *o);
    for (offset, _) in &writes {
        b = b.read(0, *offset, 16 * KIB);
    }
    let expected = Rc::new(RefCell::new(writes));
    let failures = Rc::new(RefCell::new(Vec::new()));

    let mut runner = Runner::new(
        cluster,
        S4dCache::new(config, params),
        vec![b.close(0).build()],
        3,
    );
    runner.add_observer(Box::new(Verify {
        expected: expected.clone(),
        failures: failures.clone(),
        idx: 0,
    }));
    let report = runner.run();
    assert_eq!(
        report.app_ops(IoKind::Read) as usize,
        expected.borrow().len()
    );
    assert!(
        failures.borrow().is_empty(),
        "data corruption: {:?}",
        failures.borrow()
    );
}

#[test]
fn second_run_reads_accelerate() {
    let tb = testbed(4);
    let first = small_ior(AccessPattern::Random);
    let second = IorConfig {
        do_write: false,
        ..first.clone()
    };
    let stock = run_stock(&tb, first.scripts(), Vec::new());
    // Cache sized to hold the whole working set: on a second run every
    // read should be a hit.
    let out = run_s4d_second_read(
        &tb,
        S4dConfig::new(first.file_size * 2),
        first.scripts(),
        second.scripts(),
    );
    assert!(
        out.read_mibs() > stock.read_mibs(),
        "second-run reads {:.1} should beat stock {:.1}",
        out.read_mibs(),
        stock.read_mibs()
    );
    assert!(
        out.report.tiers.cserver_op_share() > 50.0,
        "most second-run reads should hit the cache, got {:.1}%",
        out.report.tiers.cserver_op_share()
    );
}

#[test]
fn whole_runs_are_deterministic() {
    let run = || {
        let tb = testbed(5);
        let out = run_s4d(
            &tb,
            S4dConfig::new(8 * MIB),
            small_ior(AccessPattern::Random).scripts(),
            Vec::new(),
        );
        (
            out.report.end_time,
            out.report.events,
            out.report.tiers.c_ops,
            out.report.tiers.d_ops,
            out.metrics.flushes,
            out.metrics.evictions,
        )
    };
    assert_eq!(run(), run(), "same seed must give identical runs");
}

#[test]
fn different_seeds_change_timing_not_semantics() {
    let run = |seed| {
        let tb = testbed(seed);
        run_s4d(
            &tb,
            S4dConfig::new(8 * MIB),
            small_ior(AccessPattern::Random).scripts(),
            Vec::new(),
        )
    };
    let a = run(100);
    let b = run(200);
    // Device rotation noise differs, so end times differ...
    assert_ne!(a.report.end_time, b.report.end_time);
    // ...but the same requests were served.
    assert_eq!(a.report.writes.meter.bytes(), b.report.writes.meter.bytes());
    assert_eq!(a.report.reads.meter.ops(), b.report.reads.meter.ops());
}

#[test]
fn capacity_invariant_holds_after_pressure() {
    let tb = testbed(6);
    let capacity = 2 * MIB; // far smaller than the 32 MiB workload
    let middleware = S4dCache::new(S4dConfig::new(capacity), tb.cost_params());
    let mut runner = Runner::new(
        tb.cluster(),
        middleware,
        small_ior(AccessPattern::Random).scripts(),
        6,
    );
    runner.run();
    let (_cluster, mw, _report) = runner.into_parts();
    assert!(
        mw.space().allocated() <= capacity,
        "allocated {} exceeds capacity {capacity}",
        mw.space().allocated()
    );
    assert!(mw.dmt().mapped_bytes() <= capacity);
    assert!(
        mw.metrics().admission_denied_space > 0,
        "pressure must have hit"
    );
}

#[test]
fn stock_never_touches_cservers() {
    let tb = testbed(7);
    let out = run_stock(&tb, small_ior(AccessPattern::Random).scripts(), Vec::new());
    assert_eq!(out.report.tiers.c_ops, 0);
    assert_eq!(out.report.tiers.c_bytes, 0);
    assert_eq!(out.report.background_bytes, 0);
}

#[test]
fn force_miss_matches_stock_within_overhead() {
    let tb = testbed(8);
    let stock = run_stock(&tb, small_ior(AccessPattern::Random).scripts(), Vec::new());
    let fm = run_s4d(
        &tb,
        S4dConfig::new(MIB).with_force_miss(true),
        small_ior(AccessPattern::Random).scripts(),
        Vec::new(),
    );
    assert_eq!(fm.report.tiers.c_ops, 0);
    // Decision overhead is microseconds against millisecond I/Os; the
    // residual difference is rotation-phase noise from shifted timing.
    let ratio = fm.write_mibs() / stock.write_mibs();
    assert!(
        (0.95..=1.05).contains(&ratio),
        "force-miss overhead should be negligible, ratio {ratio}"
    );
}

#[test]
fn background_work_drains_clean() {
    let tb = testbed(9);
    let middleware = S4dCache::new(S4dConfig::new(16 * MIB), tb.cost_params());
    let mut runner = Runner::new(
        tb.cluster(),
        middleware,
        small_ior(AccessPattern::Random).scripts(),
        9,
    );
    let report = runner.run();
    let end = runner.drain_background(report.end_time);
    assert!(end >= report.end_time);
    let (_c, mw, _r) = runner.into_parts();
    assert_eq!(mw.dmt().dirty_bytes(), 0, "drain must flush everything");
    assert!(mw.cdt().flagged(1 << 20).is_empty() || mw.metrics().fetches > 0);
}

#[test]
fn multi_file_workloads_are_isolated() {
    // Two groups of processes on two files; cache state of one file must
    // not leak into the other.
    let tb = testbed(10);
    let scripts: Vec<_> = (0..4u64)
        .map(|p| {
            let name = if p % 2 == 0 { "file_a" } else { "file_b" };
            script()
                .open(name)
                .write(0, p * MIB, 512 * KIB)
                .read(0, p * MIB, 512 * KIB)
                .close(0)
                .build()
        })
        .collect();
    let middleware = S4dCache::new(S4dConfig::new(64 * MIB), tb.cost_params());
    let mut runner = Runner::new(tb.cluster(), middleware, scripts, 10);
    let report = runner.run();
    assert_eq!(report.app_ops(IoKind::Write), 4);
    assert_eq!(report.app_ops(IoKind::Read), 4);
    let (cluster, _mw, _r) = runner.into_parts();
    assert!(cluster.opfs().open("file_a").is_ok());
    assert!(cluster.opfs().open("file_b").is_ok());
    assert!(cluster.cpfs().open("file_a.cache").is_ok());
    assert!(cluster.cpfs().open("file_b.cache").is_ok());
}

#[test]
fn observer_sees_every_dispatch_once() {
    #[derive(Default)]
    struct Count {
        ops: Rc<RefCell<u64>>,
        bytes: Rc<RefCell<u64>>,
    }
    impl IoObserver for Count {
        fn on_dispatch(
            &mut self,
            _now: SimTime,
            _rank: Rank,
            _tier: s4d::mpiio::Tier,
            _kind: IoKind,
            _off: u64,
            len: u64,
        ) {
            *self.ops.borrow_mut() += 1;
            *self.bytes.borrow_mut() += len;
        }
    }
    let tb = testbed(11);
    let ops = Rc::new(RefCell::new(0));
    let bytes = Rc::new(RefCell::new(0));
    let cfg = small_ior(AccessPattern::Sequential);
    let total_bytes = cfg.file_size * 2; // write + read phases
    let middleware = S4dCache::new(S4dConfig::new(64 * MIB), tb.cost_params());
    let mut runner = Runner::new(tb.cluster(), middleware, cfg.scripts(), 11);
    runner.add_observer(Box::new(Count {
        ops: ops.clone(),
        bytes: bytes.clone(),
    }));
    runner.run();
    assert_eq!(
        *bytes.borrow(),
        total_bytes,
        "every app byte dispatched exactly once"
    );
    assert!(*ops.borrow() >= (total_bytes / (16 * KIB)));
}
