//! Failure injection: a degraded file server must slow the system down but
//! never corrupt it, and S4D-Cache's behaviour under device degradation
//! must stay consistent (the static cost model keeps routing as before —
//! an explicit limitation worth pinning in a test).

use s4d::bench::testbed;
use s4d::cache::{S4dCache, S4dConfig};
use s4d::mpiio::{Cluster, Runner};
use s4d::pfs::{FileServer, NetworkConfig, Pfs, StripeLayout};
use s4d::sim::{SimDuration, SimRng};
use s4d::storage::{presets, Fault, FaultyDevice, StoreMode};
use s4d::workloads::{AccessPattern, IorConfig};

const MIB: u64 = 1 << 20;

/// Builds the paper testbed but with DServer 0 degraded by `factor` from
/// its first operation.
fn cluster_with_degraded_dserver(seed: u64, factor: f64) -> Cluster {
    let hdd = presets::hdd_seagate_st3250();
    let ssd = presets::ssd_ocz_revodrive_x2();
    let net = NetworkConfig::gigabit_ethernet();
    let mut rng = SimRng::seed(seed);
    let d_layout = StripeLayout::new(64 * 1024, 8);
    let servers: Vec<FileServer> = (0..8)
        .map(|i| {
            let device: Box<dyn s4d::storage::DeviceModel> = if i == 0 {
                Box::new(
                    FaultyDevice::new(Box::new(hdd.clone().build()))
                        .with_fault(Fault::SlowdownAfter { from_op: 0, factor }),
                )
            } else {
                Box::new(hdd.clone().build())
            };
            FaultyServerBuilder {
                index: i,
                device,
                capacity: hdd.capacity(),
                net,
            }
            .build(rng.fork(i as u64))
        })
        .collect();
    let opfs = Pfs::new("opfs", d_layout, servers);
    let cpfs = Pfs::ssd_cluster(
        "cpfs",
        StripeLayout::new(64 * 1024, 4),
        ssd,
        net,
        StoreMode::Timing,
        seed ^ 0xC,
    );
    Cluster::new(opfs, cpfs)
}

struct FaultyServerBuilder {
    index: usize,
    device: Box<dyn s4d::storage::DeviceModel>,
    capacity: u64,
    net: NetworkConfig,
}

impl FaultyServerBuilder {
    fn build(self, rng: SimRng) -> FileServer {
        FileServer::new(
            self.index,
            self.device,
            self.capacity,
            self.net,
            StoreMode::Timing,
            None,
            rng,
        )
    }
}

fn workload() -> Vec<s4d::workloads::IorScript> {
    IorConfig {
        file_name: "faulty.dat".into(),
        file_size: 32 * MIB,
        processes: 8,
        request_size: 16 * 1024,
        pattern: AccessPattern::Sequential,
        do_write: true,
        do_read: true,
        seed: 41,
    }
    .scripts()
}

#[test]
fn degraded_dserver_slows_stock_throughput() {
    let tb = testbed(40);
    let healthy = {
        let mut r = Runner::new(
            tb.cluster(),
            s4d::mpiio::StockMiddleware::new(),
            workload(),
            40,
        );
        r.run()
    };
    let degraded = {
        let cluster = cluster_with_degraded_dserver(0x54D, 8.0);
        let mut r = Runner::new(cluster, s4d::mpiio::StockMiddleware::new(), workload(), 40);
        r.run()
    };
    // A striped write hits every server; the slow one is the straggler.
    assert!(
        degraded.writes.throughput_mibs() < healthy.writes.throughput_mibs() * 0.7,
        "degraded {:.1} vs healthy {:.1}",
        degraded.writes.throughput_mibs(),
        healthy.writes.throughput_mibs()
    );
    // Same work completed either way.
    assert_eq!(
        degraded.app_ops(s4d::storage::IoKind::Write),
        healthy.app_ops(s4d::storage::IoKind::Write)
    );
}

#[test]
fn s4d_keeps_functioning_on_degraded_substrate() {
    // The cost model's F(d)/R/S snapshot no longer matches the degraded
    // DServer, but the system must stay correct: all requests complete,
    // capacity invariants hold, and the cache still absorbs critical data.
    let tb = testbed(42);
    let cluster = cluster_with_degraded_dserver(0x54E, 6.0);
    let middleware = S4dCache::new(S4dConfig::new(16 * MIB), tb.cost_params());
    let mut runner = Runner::new(cluster, middleware, workload(), 42);
    let report = runner.run();
    assert_eq!(
        report.app_ops(s4d::storage::IoKind::Write) as u64,
        8 * (32 * MIB / (16 * 1024)) / 8
    );
    let (_c, mw, _r) = runner.into_parts();
    assert!(mw.space().allocated() <= mw.space().capacity());
    assert!(report.tiers.c_ops > 0, "critical traffic still redirects");
}

#[test]
fn stall_window_creates_a_latency_spike_not_corruption() {
    // Put a long stall window on the degraded server and verify the run
    // still completes deterministically with the same op counts.
    let hdd = presets::hdd_seagate_st3250();
    let net = NetworkConfig::gigabit_ethernet();
    let mut rng = SimRng::seed(77);
    let servers: Vec<FileServer> = (0..2)
        .map(|i| {
            let device: Box<dyn s4d::storage::DeviceModel> = if i == 0 {
                Box::new(FaultyDevice::new(Box::new(hdd.clone().build())).with_fault(
                    Fault::StallWindow {
                        from_op: 10,
                        to_op: 20,
                        extra: SimDuration::from_millis(500),
                    },
                ))
            } else {
                Box::new(hdd.clone().build())
            };
            FileServer::new(
                i,
                device,
                hdd.capacity(),
                net,
                StoreMode::Timing,
                None,
                rng.fork(i as u64),
            )
        })
        .collect();
    let opfs = Pfs::new("opfs", StripeLayout::new(64 * 1024, 2), servers);
    let cpfs = Pfs::ssd_cluster(
        "cpfs",
        StripeLayout::new(64 * 1024, 1),
        presets::ssd_ocz_revodrive_x2(),
        net,
        StoreMode::Timing,
        78,
    );
    let scripts = IorConfig {
        file_name: "stall.dat".into(),
        file_size: 8 * MIB,
        processes: 4,
        request_size: 64 * 1024,
        pattern: AccessPattern::Sequential,
        do_write: true,
        do_read: false,
        seed: 79,
    }
    .scripts();
    let mut runner = Runner::new(
        Cluster::new(opfs, cpfs),
        s4d::mpiio::StockMiddleware::new(),
        scripts,
        80,
    );
    let report = runner.run();
    assert_eq!(report.app_ops(s4d::storage::IoKind::Write), 128);
    // The 10 stalled ops add at least 5 seconds somewhere in the run.
    assert!(report.end_time.as_secs_f64() > 5.0);
}
