//! CServer failure-domain integration tests: hard crashes with data loss,
//! transient error storms, and quarantine-driven degradation to OPFS —
//! each driven end to end through the runner with every read verified.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use s4d::bench::testbed;
use s4d::cache::{S4dCache, S4dConfig};
use s4d::mpiio::{script, Cluster, IoObserver, Rank, Runner, ScriptBuilder};
use s4d::pfs::{FaultPlan, ServerFault};
use s4d::sim::{SimDuration, SimTime};
use s4d::storage::IoKind;

const KIB: u64 = 1024;

/// Deterministic pattern bytes for a write at `offset` with version `v`.
fn pattern(offset: u64, len: u64, v: u64) -> Vec<u8> {
    (0..len)
        .map(|j| ((offset / KIB) * 37 + j * 11 + v * 101) as u8)
        .collect()
}

/// Observer checking every read against an expected byte image.
struct Verify {
    expected: Rc<RefCell<HashMap<u64, Vec<u8>>>>,
    failures: Rc<RefCell<Vec<String>>>,
}

impl IoObserver for Verify {
    fn on_read_data(&mut self, _r: Rank, offset: u64, len: u64, data: Option<&[u8]>) {
        let expected = self.expected.borrow();
        let Some(want) = expected.get(&offset) else {
            self.failures
                .borrow_mut()
                .push(format!("unexpected read at {offset}"));
            return;
        };
        let data = data.expect("functional run returns data");
        if want.as_slice() != data {
            self.failures
                .borrow_mut()
                .push(format!("wrong bytes at offset {offset} len {len}"));
        }
    }
}

struct Setup {
    runner: Runner<S4dCache>,
    failures: Rc<RefCell<Vec<String>>>,
}

fn build(
    seed: u64,
    config: S4dConfig,
    fault: FaultPlan,
    script: ScriptBuilder,
    expected: HashMap<u64, Vec<u8>>,
) -> Setup {
    let mut cluster = Cluster::paper_testbed_small(seed);
    cluster
        .cpfs_mut()
        .set_fault_plan(0, fault)
        .expect("CServer 0 exists");
    let params = testbed(seed).cost_params();
    let mut runner = Runner::new(
        cluster,
        S4dCache::new(config, params),
        vec![script.close(0).build()],
        seed,
    );
    let failures = Rc::new(RefCell::new(Vec::new()));
    runner.add_observer(Box::new(Verify {
        expected: Rc::new(RefCell::new(expected)),
        failures: failures.clone(),
    }));
    Setup { runner, failures }
}

/// A CServer hard-crashes mid-run, destroying the cached bytes. Dirty
/// (not-yet-flushed) overwrites are genuinely lost — reads roll back to
/// the last flushed version on OPFS and the loss is surfaced — while
/// clean extents are invalidated and re-fetched from OPFS, so every read
/// still returns correct durable data. After the server recovers and its
/// quarantine lapses, admission resumes.
#[test]
fn hard_crash_rolls_back_to_durable_state_and_recovers() {
    let config = S4dConfig::new(64 * 1024 * KIB)
        .with_journal_batch(1)
        .with_rebuild_period(SimDuration::from_millis(200))
        .with_quarantine(3, SimDuration::from_secs(1));
    let fault = FaultPlan::new().with(ServerFault::Crash {
        at: SimTime::from_secs(1) + SimDuration::from_millis(100),
        recover_at: SimTime::from_secs(3),
    });

    // Phase A: 16 small writes (v1), think long enough for the Rebuilder
    // to flush them all clean; phase B: overwrite the first four (v2) and
    // crash before the next flush; phase C: wait out the outage, read
    // everything back, then write once more to prove re-admission.
    let mut b = script().open("crash.dat");
    let mut expected = HashMap::new();
    for i in 0..16u64 {
        let off = i * 16 * KIB;
        b = b.write_bytes(0, off, pattern(off, 16 * KIB, 1));
        expected.insert(off, pattern(off, 16 * KIB, 1));
    }
    b = b.think(SimDuration::from_secs(1));
    for i in 0..4u64 {
        let off = i * 16 * KIB;
        // v2 never reaches OPFS: the crash destroys it, and reads must
        // roll back to v1.
        b = b.write_bytes(0, off, pattern(off, 16 * KIB, 2));
    }
    b = b.think(SimDuration::from_secs(3));
    for i in 0..16u64 {
        b = b.read(0, i * 16 * KIB, 16 * KIB);
    }
    b = b.write_bytes(0, 16 * 16 * KIB, pattern(16 * 16 * KIB, 16 * KIB, 1));

    let Setup {
        mut runner,
        failures,
    } = build(17, config, fault, b, expected);
    let report = runner.run();
    assert!(
        failures.borrow().is_empty(),
        "reads diverged from durable state: {:?}",
        failures.borrow()
    );
    assert_eq!(report.app_ops(IoKind::Read), 16);
    let m = runner.middleware().metrics();
    assert_eq!(
        m.dirty_bytes_lost,
        4 * 16 * KIB,
        "the four unflushed overwrites are the data loss"
    );
    assert_eq!(
        m.dirty_bytes_lost + m.crash_invalidated_bytes,
        16 * 16 * KIB,
        "every cached byte was on the crashed server"
    );
    assert!(m.quarantines >= 1);
    assert!(report.degraded.io_errors > 0, "the crash was observed");
    assert!(
        runner.middleware().dmt().mapped_bytes() >= 16 * KIB,
        "the post-recovery write was admitted to the cache again"
    );
    assert!(report.end_time >= SimTime::from_secs(4));
}

/// A window of transient CServer errors: every failure is retried with
/// backoff and ultimately succeeds, so no request is re-planned, nothing
/// falls back to OPFS, and all data stays correct.
#[test]
fn transient_errors_are_retried_without_degradation() {
    let config = S4dConfig::new(64 * 1024 * KIB)
        .with_journal_batch(1)
        .with_retry_policy(
            SimDuration::from_micros(500),
            SimDuration::from_millis(20),
            8,
        )
        // A huge threshold: this scenario must never quarantine.
        .with_quarantine(1000, SimDuration::from_secs(1));
    let fault = FaultPlan::new().with(ServerFault::TransientErrors {
        from: SimTime::ZERO,
        until: SimTime::from_secs(100),
        error_rate: 0.2,
    });

    let mut b = script().open("flaky.dat");
    let mut expected = HashMap::new();
    for i in 0..32u64 {
        let off = i * 16 * KIB;
        b = b.write_bytes(0, off, pattern(off, 16 * KIB, 1));
        expected.insert(off, pattern(off, 16 * KIB, 1));
    }
    for i in 0..32u64 {
        b = b.read(0, i * 16 * KIB, 16 * KIB);
    }

    let Setup {
        mut runner,
        failures,
    } = build(23, config, fault, b, expected);
    let report = runner.run();
    assert!(
        failures.borrow().is_empty(),
        "retried I/O corrupted data: {:?}",
        failures.borrow()
    );
    assert!(
        report.degraded.io_errors > 0,
        "a 20% error rate must surface errors"
    );
    assert!(report.degraded.retries > 0);
    let m = runner.middleware().metrics();
    assert!(m.retries > 0);
    assert_eq!(m.fallback_reads, 0, "retries sufficed; no degradation");
    assert_eq!(m.quarantines, 0);
    assert_eq!(report.degraded.replans, 0, "no plan ever gave up");
}

/// A saturated error window quarantines the CServer; reads of clean
/// cached data degrade to OPFS (correct bytes, zero availability loss)
/// and new writes are denied admission until the quarantine lapses.
#[test]
fn quarantine_degrades_clean_reads_to_opfs() {
    let config = S4dConfig::new(64 * 1024 * KIB)
        .with_journal_batch(1)
        .with_rebuild_period(SimDuration::from_millis(200))
        .with_retry_policy(
            SimDuration::from_micros(500),
            SimDuration::from_millis(5),
            2,
        )
        .with_quarantine(2, SimDuration::from_secs(30));
    // Every CServer op in the window fails.
    let fault = FaultPlan::new().with(ServerFault::TransientErrors {
        from: SimTime::from_secs(1),
        until: SimTime::from_secs(2),
        error_rate: 1.0,
    });

    // Write + flush clean before the window; read it all back inside the
    // window, when the cache route is poisoned.
    let mut b = script().open("sick.dat");
    let mut expected = HashMap::new();
    for i in 0..8u64 {
        let off = i * 16 * KIB;
        b = b.write_bytes(0, off, pattern(off, 16 * KIB, 1));
        expected.insert(off, pattern(off, 16 * KIB, 1));
    }
    b = b.think(SimDuration::from_millis(1100));
    for i in 0..8u64 {
        b = b.read(0, i * 16 * KIB, 16 * KIB);
    }
    // A write inside the window must be denied admission, not lost.
    let off = 64 * 16 * KIB;
    b = b.write_bytes(0, off, pattern(off, 16 * KIB, 1));
    expected.insert(off, pattern(off, 16 * KIB, 1));
    b = b.read(0, off, 16 * KIB);

    let Setup {
        mut runner,
        failures,
    } = build(31, config, fault, b, expected);
    let report = runner.run();
    assert!(
        failures.borrow().is_empty(),
        "degraded reads returned wrong bytes: {:?}",
        failures.borrow()
    );
    assert_eq!(report.app_ops(IoKind::Read), 9);
    let m = runner.middleware().metrics();
    assert!(m.quarantines >= 1, "the error storm must quarantine");
    assert!(
        m.fallback_reads > 0,
        "clean cached reads must degrade to OPFS"
    );
    assert!(m.admission_denied_health > 0);
    assert!(report.degraded.io_errors > 0);
}
