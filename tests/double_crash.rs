//! Double-crash torture: crash the middleware mid-run, then crash it
//! *again in the middle of recovery*, and prove recovery is re-enterable
//! and idempotent.
//!
//! Recovery's own destructive effects — truncating the undecodable
//! journal suffix, discarding dropped (under-covered) extents, and the
//! orphan sweep — are charged to a [`CrashFuse`] through
//! [`S4dCache::recover_from_cluster_fused`]. The matrix arms the fuse at
//! the start and the middle of every recorded recovery step, re-enters
//! plain recovery after each mid-recovery death, and requires the final
//! state to be byte-identical to a single uninterrupted recovery.

use std::collections::BTreeSet;

use s4d::cache::{CrashFuse, CrashSite, S4dCache, S4dConfig};
use s4d::cost::CostParams;
use s4d::mpiio::{AppRequest, Cluster, Middleware, Plan, Rank};
use s4d::pfs::FileId;
use s4d::sim::SimTime;
use s4d::storage::{presets, IoKind};

const KIB: u64 = 1024;
const FILE_LEN: u64 = 1024 * KIB;
const CAPACITY: u64 = 128 * KIB;
const REQ: u64 = 16 * KIB;

fn params() -> CostParams {
    CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
    .with_cserver_op_overhead(300.0e-6, 16 * KIB)
}

fn config() -> S4dConfig {
    S4dConfig::new(CAPACITY).with_journal_batch(1)
}

fn seed_bytes() -> Vec<u8> {
    (0..FILE_LEN).map(|i| (i % 241) as u8).collect()
}

fn write_payload(n: u64) -> Vec<u8> {
    (0..REQ)
        .map(|j| ((n * 137 + j * 11 + 29) % 256) as u8)
        .collect()
}

/// Executes a plan's write ops against the functional stores, charging
/// the workload fuse (data vs journal sites).
fn exec_plan(
    cluster: &mut Cluster,
    fuse: &std::rc::Rc<std::cell::RefCell<CrashFuse>>,
    plan: &Plan,
) -> bool {
    for phase in &plan.phases {
        for op in phase {
            if fuse.borrow().is_dead() {
                return false;
            }
            if op.kind != IoKind::Write {
                continue;
            }
            let Some(data) = &op.data else {
                continue;
            };
            let site = if op.app_offset.is_some() {
                CrashSite::DataWrite
            } else {
                CrashSite::JournalWrite
            };
            let allowed = fuse.borrow_mut().consume(site, op.len);
            let _ = cluster
                .pfs_mut(op.tier)
                .apply_bytes(op.file, op.offset, allowed, Some(data));
            if allowed < op.len {
                return false;
            }
        }
    }
    true
}

/// Deterministic workload: fill the cache, flush clean, overflow it so
/// evictions journal synchronously. Crashes when `budget` runs out.
/// Returns the cluster and the acknowledged shadow content.
fn run_workload(
    budget: Option<u64>,
) -> (Cluster, Vec<u8>, std::rc::Rc<std::cell::RefCell<CrashFuse>>) {
    let mut cluster = Cluster::paper_testbed_small(41);
    let mut mw = S4dCache::new(config(), params());
    let fuse = match budget {
        Some(b) => CrashFuse::armed(b).shared(),
        None => CrashFuse::unlimited().shared(),
    };
    mw.attach_crash_fuse(fuse.clone());
    let file = mw.open(&mut cluster, Rank(0), "dc.dat").unwrap();
    let seed = seed_bytes();
    cluster
        .opfs_mut()
        .apply_bytes(file, 0, FILE_LEN, Some(&seed))
        .unwrap();
    let mut shadow = seed;
    let mut op_no = 0u64;
    let mut now_s = 0u64;
    let offsets: Vec<u64> = (0..8)
        .map(|i| i * REQ)
        .chain((0..4).map(|i| 512 * KIB + i * REQ))
        .collect();
    for (phase, offset) in offsets.into_iter().enumerate() {
        if phase == 8 {
            // Flush everything clean so the overflow writes must evict.
            for _ in 0..40 {
                now_s += 1;
                let poll = mw.poll_background(&mut cluster, SimTime::from_secs(now_s));
                if fuse.borrow().is_dead() {
                    return (cluster, shadow, fuse);
                }
                for plan in &poll.plans {
                    let done = exec_plan(&mut cluster, &fuse, plan);
                    if done && plan.tag != 0 {
                        mw.on_plan_complete(&mut cluster, SimTime::from_secs(now_s), plan.tag);
                    }
                    if fuse.borrow().is_dead() {
                        return (cluster, shadow, fuse);
                    }
                }
                if !poll.work_pending {
                    break;
                }
            }
        }
        op_no += 1;
        let data = write_payload(op_no);
        let req = AppRequest {
            rank: Rank(0),
            file,
            kind: IoKind::Write,
            offset,
            len: REQ,
            data: Some(data.clone()),
        };
        let plan = mw.plan_io(&mut cluster, SimTime::from_secs(now_s), &req);
        let done = exec_plan(&mut cluster, &fuse, &plan);
        if done && plan.tag != 0 {
            mw.on_plan_complete(&mut cluster, SimTime::from_secs(now_s), plan.tag);
        }
        if fuse.borrow().is_dead() {
            return (cluster, shadow, fuse);
        }
        shadow[offset as usize..(offset + REQ) as usize].copy_from_slice(&data);
    }
    (cluster, shadow, fuse)
}

/// The workload-crash budget: the middle of the last synchronous append,
/// so the crashed cluster carries a torn journal suffix for recovery to
/// truncate.
fn crash_budget() -> u64 {
    let (_, _, fuse) = run_workload(None);
    let steps = fuse.borrow().steps().to_vec();
    let last_sync = steps
        .iter()
        .rev()
        .find(|s| s.site == CrashSite::SyncAppend)
        .copied()
        .expect("workload must journal synchronously (evictions)");
    // One byte into the batch: the first frame is guaranteed torn, so
    // recovery always has an undecodable suffix to truncate.
    last_sync.start + 1
}

/// Regenerates the crashed cluster and enriches its recovery workload:
/// orphan bytes no mapping claims (for the sweep) and a mapped extent
/// with a discarded tail (for coverage-validation drops). Both mutations
/// are deterministic, derived from `probe` (a plain recovery of an
/// identical regeneration).
fn crashed_and_mutated(budget: u64, probe: &(FileId, u64, u64)) -> (Cluster, Vec<u8>) {
    let (mut cluster, shadow, _) = run_workload(Some(budget));
    let cache = cluster.cpfs_mut().create_or_open("dc.dat.cache");
    let size = cluster.cpfs().meta(cache).map(|m| m.size).unwrap_or(0);
    // Orphan: cache bytes far past every mapping.
    let orphan = vec![0xEEu8; 4096];
    cluster
        .cpfs_mut()
        .apply_bytes(cache, size + 64 * KIB, 4096, Some(&orphan))
        .unwrap();
    // Under-covered extent: punch out the tail of a known clean mapping.
    let &(c_file, c_off, len) = probe;
    let hole = (len / 2).max(1);
    cluster
        .cpfs_mut()
        .discard(c_file, c_off + len - hole, hole)
        .unwrap();
    (cluster, shadow)
}

/// Reads the whole file back through a recovered middleware.
fn read_all(cluster: &mut Cluster, mw: &mut S4dCache) -> Vec<u8> {
    let file = mw.open(cluster, Rank(0), "dc.dat").unwrap();
    let mut out = vec![0u8; FILE_LEN as usize];
    let step = 64 * KIB;
    for chunk in 0..(FILE_LEN / step) {
        let offset = chunk * step;
        let req = AppRequest {
            rank: Rank(0),
            file,
            kind: IoKind::Read,
            offset,
            len: step,
            data: None,
        };
        let plan = mw.plan_io(cluster, SimTime::ZERO, &req);
        for phase in &plan.phases {
            for op in phase {
                match op.kind {
                    IoKind::Read => {
                        if let Some(app) = op.app_offset {
                            let bytes = cluster
                                .pfs(op.tier)
                                .read_bytes(op.file, op.offset, op.len)
                                .unwrap()
                                .expect("functional stores");
                            let at = app as usize;
                            out[at..at + op.len as usize].copy_from_slice(&bytes);
                        }
                    }
                    IoKind::Write => {
                        if let Some(data) = &op.data {
                            let _ = cluster.pfs_mut(op.tier).apply_bytes(
                                op.file,
                                op.offset,
                                op.len,
                                Some(data),
                            );
                        }
                    }
                }
            }
        }
        if plan.tag != 0 {
            mw.on_plan_complete(cluster, SimTime::ZERO, plan.tag);
        }
    }
    out
}

fn extents_of(mw: &S4dCache) -> Vec<(u64, u64, u64, u64, u64, bool)> {
    let mut v: Vec<_> = mw
        .dmt()
        .iter_extents()
        .map(|(f, o, e)| (f.0, o, e.len, e.c_file.0, e.c_offset, e.dirty))
        .collect();
    v.sort_unstable();
    v
}

fn check_invariants(cluster: &Cluster, mw: &S4dCache) {
    let sum: u64 = mw.dmt().iter_extents().map(|(_, _, e)| e.len).sum();
    assert_eq!(mw.space().allocated(), sum, "space vs mapping");
    for (f, o, e) in mw.dmt().iter_extents() {
        let covered = cluster
            .cpfs()
            .covered_bytes(e.c_file, e.c_offset, e.len)
            .unwrap();
        assert_eq!(covered, e.len, "extent ({f:?},{o}) under-covered");
    }
}

#[test]
fn crash_during_recovery_is_reenterable_and_idempotent() {
    let budget = crash_budget();

    // Probe: recover a pristine regeneration to learn a clean mapped
    // extent whose tail the mutation can punch out.
    let (mut probe_cluster, _, _) = run_workload(Some(budget));
    let (probe_mw, _) = S4dCache::recover_from_cluster(config(), params(), &mut probe_cluster);
    let probe = probe_mw
        .dmt()
        .iter_extents()
        .filter(|(_, _, e)| !e.dirty && e.len >= 2)
        .map(|(_, _, e)| (e.c_file, e.c_offset, e.len))
        .min()
        .expect("a clean extent survives the crash");

    // Reference: one uninterrupted (but fully recorded) recovery.
    let (mut ref_cluster, shadow) = crashed_and_mutated(budget, &probe);
    let ref_fuse = CrashFuse::unlimited().shared();
    let (mut ref_mw, ref_report) = S4dCache::recover_from_cluster_fused(
        config(),
        params(),
        &mut ref_cluster,
        Some(ref_fuse.clone()),
    )
    .expect("unlimited fuse cannot die");
    let steps = ref_fuse.borrow().steps().to_vec();
    let recorded: BTreeSet<CrashSite> = steps.iter().map(|s| s.site).collect();
    for site in [
        CrashSite::RecoveryTruncate,
        CrashSite::RecoveryDrop,
        CrashSite::RecoverySweep,
    ] {
        assert!(
            recorded.contains(&site),
            "recovery never exercised {site:?}; the double-crash matrix would not cover it"
        );
    }
    assert!(ref_report.dropped_extents > 0, "the punched extent drops");
    assert!(ref_report.orphan_bytes_discarded > 0, "the orphan is swept");
    assert!(
        ref_report.dropped_journal_bytes > 0,
        "the torn tail truncates"
    );
    check_invariants(&ref_cluster, &ref_mw);
    let ref_extents = extents_of(&ref_mw);
    // A second recovery of the already-recovered reference cluster is the
    // fixpoint every interrupted history must also converge to. (Its
    // report re-derives the dropped extent and the journal-hole truncate
    // from the unchanged journal — both no-op discards — by design.)
    let (fix_mw, fix_report) = S4dCache::recover_from_cluster(config(), params(), &mut ref_cluster);
    assert_eq!(extents_of(&fix_mw), ref_extents, "reference not a fixpoint");
    assert_eq!(
        fix_report.orphan_bytes_discarded, 0,
        "the reference recovery left orphan bytes behind"
    );
    let ref_bytes = read_all(&mut ref_cluster, &mut ref_mw);
    // Every acknowledged byte reads back exactly. The crash tore only an
    // eviction's Remove batch: the victims' discards were suppressed by
    // the same dead fuse, so the resurrected clean mappings still point
    // at present bytes that match OPFS, and the in-flight write was never
    // acknowledged (its payload never landed). The punched extent was
    // clean, so dropping it re-reads from OPFS losslessly.
    assert_eq!(ref_bytes, shadow, "reference recovery diverged from acks");

    // Matrix: die at the start and the middle of every recovery step,
    // then re-enter plain recovery and demand convergence.
    let mut budgets = BTreeSet::new();
    for s in &steps {
        budgets.insert(s.start);
        if s.len > 1 {
            budgets.insert(s.start + s.len / 2);
        }
    }
    let total: u64 = steps.iter().map(|s| s.len).sum();
    let mut died_at: BTreeSet<CrashSite> = BTreeSet::new();
    for &b in &budgets {
        assert!(b < total);
        let (mut cluster, _) = crashed_and_mutated(budget, &probe);
        let fuse = CrashFuse::armed(b).shared();
        let first = S4dCache::recover_from_cluster_fused(
            config(),
            params(),
            &mut cluster,
            Some(fuse.clone()),
        );
        assert!(first.is_none(), "budget {b} must die mid-recovery");
        if let Some(s) = fuse.borrow().steps().last() {
            died_at.insert(s.site);
        }
        // Second crash happened; re-enter recovery on the half-recovered
        // cluster. It must converge to the reference state.
        let (mut mw2, _) = S4dCache::recover_from_cluster(config(), params(), &mut cluster);
        check_invariants(&cluster, &mw2);
        assert_eq!(
            extents_of(&mw2),
            ref_extents,
            "budget {b}: re-entered recovery diverged from single recovery"
        );
        let bytes = read_all(&mut cluster, &mut mw2);
        assert_eq!(
            bytes, ref_bytes,
            "budget {b}: re-entered recovery serves different bytes"
        );
        // And a third recovery lands on the exact fixpoint the reference
        // cluster reached: identical extents AND an identical report,
        // regardless of where the second crash interrupted the first
        // recovery.
        let (mw3, report3) = S4dCache::recover_from_cluster(config(), params(), &mut cluster);
        assert_eq!(extents_of(&mw3), ref_extents, "budget {b}: not a fixpoint");
        assert_eq!(report3, fix_report, "budget {b}: fixpoint report differs");
    }
    for site in [
        CrashSite::RecoveryTruncate,
        CrashSite::RecoveryDrop,
        CrashSite::RecoverySweep,
    ] {
        assert!(died_at.contains(&site), "no budget died at {site:?}");
    }
}
