//! Cached-data scrubbing: per-extent CRC seals are verified by the
//! background scrubber and the `verify_on_read` pre-pass. A corrupt
//! *clean* extent is repaired from DServers (which hold the same logical
//! bytes); a corrupt *dirty* extent is unrecoverable — its mapping is
//! dropped and reported, so reads serve the last flushed version from
//! DServers instead of silently returning bad bytes.

use s4d::cache::{S4dCache, S4dConfig};
use s4d::cost::CostParams;
use s4d::mpiio::{AppRequest, Cluster, Middleware, Plan, Rank};
use s4d::pfs::FileId;
use s4d::sim::SimTime;
use s4d::storage::{presets, IoKind};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;
const REQ: u64 = 16 * KIB;
const FILE_LEN: u64 = 256 * KIB;

fn params() -> CostParams {
    CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
    .with_cserver_op_overhead(300.0e-6, 16 * KIB)
}

fn seed_bytes() -> Vec<u8> {
    (0..FILE_LEN).map(|i| (i % 249) as u8).collect()
}

fn payload(n: u64) -> Vec<u8> {
    (0..REQ)
        .map(|j| ((n * 37 + j * 11 + 5) % 256) as u8)
        .collect()
}

/// Executes a plan against the functional stores the way the runner
/// would (no crash injection here).
fn exec_plan(cluster: &mut Cluster, plan: &Plan) {
    for phase in &plan.phases {
        for op in phase {
            if op.kind == IoKind::Write {
                if let Some(data) = &op.data {
                    let _ = cluster.pfs_mut(op.tier).apply_bytes(
                        op.file,
                        op.offset,
                        op.len,
                        Some(data),
                    );
                }
            }
        }
    }
}

fn app_write(cluster: &mut Cluster, mw: &mut S4dCache, file: FileId, offset: u64, data: Vec<u8>) {
    let req = AppRequest {
        rank: Rank(0),
        file,
        kind: IoKind::Write,
        offset,
        len: data.len() as u64,
        data: Some(data),
    };
    let plan = mw.plan_io(cluster, SimTime::ZERO, &req);
    exec_plan(cluster, &plan);
    if plan.tag != 0 {
        mw.on_plan_complete(cluster, SimTime::ZERO, plan.tag);
    }
}

fn app_read(
    cluster: &mut Cluster,
    mw: &mut S4dCache,
    file: FileId,
    offset: u64,
    len: u64,
) -> Vec<u8> {
    let req = AppRequest {
        rank: Rank(0),
        file,
        kind: IoKind::Read,
        offset,
        len,
        data: None,
    };
    let plan = mw.plan_io(cluster, SimTime::ZERO, &req);
    let mut out = vec![0u8; len as usize];
    for phase in &plan.phases {
        for op in phase {
            match op.kind {
                IoKind::Read => {
                    if let Some(app) = op.app_offset {
                        let bytes = cluster
                            .pfs(op.tier)
                            .read_bytes(op.file, op.offset, op.len)
                            .unwrap()
                            .expect("functional stores");
                        let at = (app - offset) as usize;
                        out[at..at + op.len as usize].copy_from_slice(&bytes);
                    }
                }
                IoKind::Write => {
                    if let Some(data) = &op.data {
                        let _ = cluster.pfs_mut(op.tier).apply_bytes(
                            op.file,
                            op.offset,
                            op.len,
                            Some(data),
                        );
                    }
                }
            }
        }
    }
    if plan.tag != 0 {
        mw.on_plan_complete(cluster, SimTime::ZERO, plan.tag);
    }
    out
}

fn drain(cluster: &mut Cluster, mw: &mut S4dCache, from_s: u64) {
    for round in 0..40u64 {
        let poll = mw.poll_background(cluster, SimTime::from_secs(from_s + round));
        for plan in &poll.plans {
            exec_plan(cluster, plan);
            if plan.tag != 0 {
                mw.on_plan_complete(cluster, SimTime::from_secs(from_s + round), plan.tag);
            }
        }
        if !poll.work_pending {
            break;
        }
    }
}

/// Flips one cached byte of the extent mapping `d_offset`, returning the
/// extent's length. Models SSD bit rot under a valid seal.
fn flip_cached_byte(cluster: &mut Cluster, mw: &S4dCache, file: FileId, d_offset: u64) -> u64 {
    let e = *mw.dmt().get(file, d_offset).expect("extent mapped");
    let current = cluster
        .cpfs()
        .read_bytes(e.c_file, e.c_offset + 3, 1)
        .unwrap()
        .expect("functional stores");
    cluster
        .cpfs_mut()
        .apply_bytes(e.c_file, e.c_offset + 3, 1, Some(&[current[0] ^ 0xFF]))
        .unwrap();
    e.len
}

#[test]
fn scrubber_repairs_corrupt_clean_extent_from_dservers() {
    let mut cluster = Cluster::paper_testbed_small(31);
    let mut mw = S4dCache::new(
        S4dConfig::new(64 * MIB)
            .with_journal_batch(1)
            .with_scrub(MIB),
        params(),
    );
    let file = mw.open(&mut cluster, Rank(0), "scrub.dat").unwrap();
    cluster
        .opfs_mut()
        .apply_bytes(file, 0, FILE_LEN, Some(&seed_bytes()))
        .unwrap();
    let mut shadow = seed_bytes();
    for i in 0..4u64 {
        let data = payload(i);
        shadow[(i * REQ) as usize..((i + 1) * REQ) as usize].copy_from_slice(&data);
        app_write(&mut cluster, &mut mw, file, i * REQ, data);
    }
    // Flush everything clean (and sealed); the scrubber also runs each
    // wake but has nothing to repair yet.
    drain(&mut cluster, &mut mw, 1);
    assert_eq!(mw.dmt().dirty_bytes(), 0);
    assert_eq!(mw.metrics().scrub_repaired_bytes, 0);
    assert!(mw.metrics().scrub_scanned_bytes > 0, "scrubber patrols");

    let len = flip_cached_byte(&mut cluster, &mw, file, REQ);
    // The next scrub wake detects the seal mismatch and repairs the
    // extent from DServers (clean data: OPFS holds the same bytes).
    drain(&mut cluster, &mut mw, 100);
    assert_eq!(mw.metrics().scrub_repaired_bytes, len, "one extent healed");
    assert_eq!(mw.metrics().scrub_lost_bytes, 0);
    // The cached copy is byte-identical to the truth again, and reads —
    // still routed to the cache — return the written content.
    let got = app_read(&mut cluster, &mut mw, file, REQ, REQ);
    assert_eq!(got, shadow[REQ as usize..2 * REQ as usize].to_vec());
    let e = *mw.dmt().get(file, REQ).expect("extent still mapped");
    let cached = cluster
        .cpfs()
        .read_bytes(e.c_file, e.c_offset, e.len)
        .unwrap()
        .unwrap();
    let truth = cluster.opfs().read_bytes(file, REQ, REQ).unwrap().unwrap();
    assert_eq!(cached, truth, "repair restored the cached bytes");
}

#[test]
fn corrupt_dirty_extent_is_reported_and_never_served() {
    // No flushing: the cache holds the only copy of the dirty write.
    let mut config = S4dConfig::new(64 * MIB)
        .with_journal_batch(1)
        .with_verify_on_read(true);
    config.max_flush_per_wake = 0;
    let mut cluster = Cluster::paper_testbed_small(32);
    let mut mw = S4dCache::new(config, params());
    let file = mw.open(&mut cluster, Rank(0), "dirty.dat").unwrap();
    let seed = seed_bytes();
    cluster
        .opfs_mut()
        .apply_bytes(file, 0, FILE_LEN, Some(&seed))
        .unwrap();
    app_write(&mut cluster, &mut mw, file, 0, payload(9));
    assert_eq!(mw.dmt().dirty_bytes(), REQ);
    assert!(
        mw.dmt().get(file, 0).unwrap().checksum.is_some(),
        "dirty extents are sealed at admission completion"
    );

    // An intact dirty extent reads back through its seal untouched.
    assert_eq!(app_read(&mut cluster, &mut mw, file, 0, REQ), payload(9));

    let len = flip_cached_byte(&mut cluster, &mw, file, 0);
    // verify_on_read catches the mismatch before routing: the only
    // up-to-date copy is corrupt, so the mapping is dropped, the loss is
    // reported, and the read serves the last flushed version (the seed)
    // from DServers — never the corrupted cache bytes.
    let got = app_read(&mut cluster, &mut mw, file, 0, REQ);
    assert_eq!(
        got,
        seed[..REQ as usize].to_vec(),
        "read must fall back to the last flushed version"
    );
    assert_ne!(got, payload(9), "the lost write is not resurrected");
    assert_eq!(mw.metrics().scrub_lost_bytes, len, "loss is reported");
    assert_eq!(mw.metrics().dirty_bytes_lost, len);
    assert_eq!(mw.metrics().scrub_repaired_bytes, 0);
    assert!(mw.dmt().get(file, 0).is_none(), "the mapping is gone");
    assert_eq!(mw.space().allocated(), 0, "the cache space is released");
}
