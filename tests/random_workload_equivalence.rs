//! Property-based end-to-end check: for arbitrary write/read workloads,
//! the data an application reads back through S4D-Cache (with admission,
//! eviction, flushing, journaling, and the Rebuilder all active) must
//! equal what a plain in-memory byte image predicts — i.e. the cache is
//! semantically invisible, which is the correctness contract of the whole
//! paper.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use s4d::cache::{S4dCache, S4dConfig};
use s4d::cost::CostParams;
use s4d::mpiio::{script, Cluster, IoObserver, Rank, Runner, ScriptBuilder};
use s4d::sim::SimDuration;
use s4d::storage::presets;

const KIB: u64 = 1024;
const SPAN: u64 = 96 * 16 * KIB; // 1.5 MiB of addressable file

fn params_small() -> CostParams {
    CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
    .with_cserver_op_overhead(300.0e-6, 16 * KIB)
}

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, len: u64, tag: u8 },
    Read { offset: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..SPAN / KIB, 1u64..64, any::<u8>()).prop_map(|(o, l, tag)| {
            let offset = o * KIB;
            let len = (l * KIB).min(SPAN - offset).max(KIB);
            Op::Write { offset, len, tag }
        }),
        (0u64..SPAN / KIB, 1u64..64).prop_map(|(o, l)| {
            let offset = o * KIB;
            let len = (l * KIB).min(SPAN - offset).max(KIB);
            Op::Read { offset, len }
        }),
    ]
}

type Reads = Rc<RefCell<Vec<(u64, Vec<u8>)>>>;

struct Capture {
    reads: Reads,
}

impl IoObserver for Capture {
    fn on_read_data(&mut self, _r: Rank, offset: u64, _l: u64, data: Option<&[u8]>) {
        self.reads
            .borrow_mut()
            .push((offset, data.expect("functional run").to_vec()));
    }
}

fn run_case(ops: &[Op], capacity: u64, rebuild_ms: u64, seed: u64) {
    // Reference model: a plain byte image.
    let mut image = vec![0u8; SPAN as usize];
    let mut expected_reads: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut b: ScriptBuilder = script().open("prop.dat");
    for op in ops {
        match *op {
            Op::Write { offset, len, tag } => {
                let data: Vec<u8> = (0..len).map(|j| tag ^ (j % 251) as u8).collect();
                image[offset as usize..(offset + len) as usize].copy_from_slice(&data);
                b = b.write_bytes(0, offset, data);
            }
            Op::Read { offset, len } => {
                expected_reads.push((
                    offset,
                    image[offset as usize..(offset + len) as usize].to_vec(),
                ));
                b = b.read(0, offset, len);
            }
        }
    }
    let config = S4dConfig::new(capacity)
        .with_journal_batch(1)
        .with_rebuild_period(SimDuration::from_millis(rebuild_ms));
    let middleware = S4dCache::new(config, params_small());
    let cluster = Cluster::paper_testbed_small(seed);
    let mut runner = Runner::new(cluster, middleware, vec![b.close(0).build()], seed);
    let reads = Rc::new(RefCell::new(Vec::new()));
    runner.add_observer(Box::new(Capture {
        reads: reads.clone(),
    }));
    runner.run();
    let got = reads.borrow();
    assert_eq!(got.len(), expected_reads.len(), "read count");
    for (i, ((g_off, g_data), (e_off, e_data))) in got.iter().zip(expected_reads.iter()).enumerate()
    {
        assert_eq!(g_off, e_off, "read #{i} offset");
        assert_eq!(g_data, e_data, "read #{i} data at offset {g_off}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Generous cache: most traffic is absorbed, flushed, and re-read from
    /// the cache; data must match the byte image.
    #[test]
    fn prop_s4d_is_semantically_invisible_large_cache(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        seed in 0u64..1000,
    ) {
        run_case(&ops, 8 * 1024 * KIB, 50, seed);
    }

    /// Tiny cache: constant admission pressure, eviction, and spill; the
    /// answer must not change.
    #[test]
    fn prop_s4d_is_semantically_invisible_tiny_cache(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        seed in 0u64..1000,
    ) {
        run_case(&ops, 64 * KIB, 20, seed);
    }

    /// Two concurrent processes on disjoint halves of the file: the
    /// interleaved execution (shared servers, shared cache, shared
    /// Rebuilder) must still return each process exactly its own bytes.
    #[test]
    fn prop_concurrent_processes_stay_isolated(
        ops_a in proptest::collection::vec(op_strategy(), 1..25),
        ops_b in proptest::collection::vec(op_strategy(), 1..25),
        seed in 0u64..1000,
    ) {
        run_two_proc_case(&ops_a, &ops_b, seed);
    }
}

/// Like `run_case`, but rank 0 works on `[0, SPAN)` and rank 1 on
/// `[SPAN, 2*SPAN)` of the same shared file.
fn run_two_proc_case(ops_a: &[Op], ops_b: &[Op], seed: u64) {
    let mut images = [vec![0u8; SPAN as usize], vec![0u8; SPAN as usize]];
    let mut expected: [Vec<(u64, Vec<u8>)>; 2] = [Vec::new(), Vec::new()];
    let mut builders = [script().open("shared.dat"), script().open("shared.dat")];
    for (p, ops) in [(0usize, ops_a), (1usize, ops_b)] {
        let base = p as u64 * SPAN;
        let mut b = builders[p].clone();
        for op in ops {
            match *op {
                Op::Write { offset, len, tag } => {
                    let data: Vec<u8> = (0..len).map(|j| tag ^ (j % 249) as u8 ^ p as u8).collect();
                    images[p][offset as usize..(offset + len) as usize].copy_from_slice(&data);
                    b = b.write_bytes(0, base + offset, data);
                }
                Op::Read { offset, len } => {
                    expected[p].push((
                        base + offset,
                        images[p][offset as usize..(offset + len) as usize].to_vec(),
                    ));
                    b = b.read(0, base + offset, len);
                }
            }
        }
        builders[p] = b;
    }
    let [ba, bb] = builders;
    let config = S4dConfig::new(256 * KIB)
        .with_journal_batch(4)
        .with_rebuild_period(SimDuration::from_millis(30));
    let middleware = S4dCache::new(config, params_small());
    let cluster = Cluster::paper_testbed_small(seed ^ 0xAB);
    let mut runner = Runner::new(
        cluster,
        middleware,
        vec![ba.close(0).build(), bb.close(0).build()],
        seed,
    );
    // Capture reads per rank.
    type PerRankReads = Rc<RefCell<[Vec<(u64, Vec<u8>)>; 2]>>;
    struct PerRank(PerRankReads);
    impl IoObserver for PerRank {
        fn on_read_data(&mut self, rank: Rank, offset: u64, _l: u64, data: Option<&[u8]>) {
            self.0.borrow_mut()[rank.0 as usize].push((offset, data.expect("functional").to_vec()));
        }
    }
    let got = Rc::new(RefCell::new([Vec::new(), Vec::new()]));
    runner.add_observer(Box::new(PerRank(got.clone())));
    runner.run();
    let got = got.borrow();
    for p in 0..2 {
        assert_eq!(got[p].len(), expected[p].len(), "rank {p} read count");
        for (i, ((go, gd), (eo, ed))) in got[p].iter().zip(expected[p].iter()).enumerate() {
            assert_eq!(go, eo, "rank {p} read #{i} offset");
            assert_eq!(gd, ed, "rank {p} read #{i} data at {go}");
        }
    }
}
