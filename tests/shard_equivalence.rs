//! Property-based shard-count invariance: the sharded metadata plane is
//! an internal reorganization, so for arbitrary workloads a middleware
//! running at any shard count must be observationally identical to the
//! `shard_count = 1` reference — byte-identical application reads, the
//! same per-byte cache coverage, and the same request-classification and
//! byte-flow metrics. (Record- and plan-granularity counters are allowed
//! to differ: a request crossing stripe tiles legitimately splits into
//! per-shard segments. Under eviction pressure the cached *set* may also
//! diverge — per-shard LRU vs global LRU — so state equality uses a
//! generous cache, while semantic invisibility is separately checked
//! under a tiny cache too.)

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use s4d::cache::{S4dCache, S4dConfig};
use s4d::cost::CostParams;
use s4d::mpiio::{script, Cluster, IoObserver, Rank, Runner, ScriptBuilder};
use s4d::sim::SimDuration;
use s4d::storage::presets;

const KIB: u64 = 1024;
const SPAN: u64 = 96 * 16 * KIB; // 1.5 MiB of addressable file

fn params_small() -> CostParams {
    CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
    .with_cserver_op_overhead(300.0e-6, 16 * KIB)
}

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, len: u64, tag: u8 },
    Read { offset: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..SPAN / KIB, 1u64..64, any::<u8>()).prop_map(|(o, l, tag)| {
            let offset = o * KIB;
            let len = (l * KIB).min(SPAN - offset).max(KIB);
            Op::Write { offset, len, tag }
        }),
        (0u64..SPAN / KIB, 1u64..64).prop_map(|(o, l)| {
            let offset = o * KIB;
            let len = (l * KIB).min(SPAN - offset).max(KIB);
            Op::Read { offset, len }
        }),
    ]
}

fn build_script(ops: &[Op]) -> ScriptBuilder {
    let mut b: ScriptBuilder = script().open("shard.dat");
    for op in ops {
        match *op {
            Op::Write { offset, len, tag } => {
                let data: Vec<u8> = (0..len).map(|j| tag ^ (j % 251) as u8).collect();
                b = b.write_bytes(0, offset, data);
            }
            Op::Read { offset, len } => {
                b = b.read(0, offset, len);
            }
        }
    }
    b
}

type Reads = Rc<RefCell<Vec<(u64, Vec<u8>)>>>;

struct Capture {
    reads: Reads,
}

impl IoObserver for Capture {
    fn on_read_data(&mut self, _r: Rank, offset: u64, _l: u64, data: Option<&[u8]>) {
        self.reads
            .borrow_mut()
            .push((offset, data.expect("functional run").to_vec()));
    }
}

/// Everything a shard count must not change, collected from one full run.
struct Observation {
    reads: Vec<(u64, Vec<u8>)>,
    /// Per-byte cache state over `[0, SPAN)`: 0 unmapped, 1 clean, 2 dirty.
    coverage: Vec<u8>,
    mapped_bytes: u64,
    dirty_bytes: u64,
    allocated: u64,
    /// The shard-invariant metrics: classification decisions and byte
    /// flows (not plan/record counts, which split per shard).
    semantic_metrics: Vec<(&'static str, u64)>,
}

fn observe(ops: &[Op], shards: u32, capacity: u64, seed: u64) -> Observation {
    let config = S4dConfig::new(capacity)
        .with_journal_batch(4)
        .with_shards(shards)
        .with_rebuild_period(SimDuration::from_millis(40));
    let middleware = S4dCache::new(config, params_small());
    let cluster = Cluster::paper_testbed_small(seed);
    let mut runner = Runner::new(
        cluster,
        middleware,
        vec![build_script(ops).close(0).build()],
        seed,
    );
    let reads = Rc::new(RefCell::new(Vec::new()));
    runner.add_observer(Box::new(Capture {
        reads: reads.clone(),
    }));
    runner.run();
    let (_cluster, mw, _report) = runner.into_parts();
    let mut coverage = vec![0u8; SPAN as usize];
    for (_f, o, e) in mw.plane().iter_extents() {
        for b in o..o + e.len {
            coverage[b as usize] = if e.dirty { 2 } else { 1 };
        }
    }
    let m = mw.metrics();
    Observation {
        reads: Rc::try_unwrap(reads)
            .expect("observer dropped")
            .into_inner(),
        coverage,
        mapped_bytes: mw.plane().mapped_bytes(),
        dirty_bytes: mw.plane().dirty_bytes(),
        allocated: mw.plane().allocated(),
        semantic_metrics: vec![
            ("evaluated", m.evaluated),
            ("critical", m.critical),
            ("writes_to_cache", m.writes_to_cache),
            ("writes_to_disk", m.writes_to_disk),
            ("read_full_hits", m.read_full_hits),
            ("read_partial_hits", m.read_partial_hits),
            ("read_misses", m.read_misses),
            ("lazy_marks", m.lazy_marks),
            ("evictions", m.evictions),
            ("evicted_bytes", m.evicted_bytes),
            ("flushed_bytes", m.flushed_bytes),
            ("fetched_bytes", m.fetched_bytes),
            ("admission_denied_space", m.admission_denied_space),
        ],
    }
}

fn assert_matches_reference(ops: &[Op], shards: u32, capacity: u64, seed: u64) {
    let reference = observe(ops, 1, capacity, seed);
    let sharded = observe(ops, shards, capacity, seed);
    assert_eq!(
        sharded.reads.len(),
        reference.reads.len(),
        "{shards} shards: read count"
    );
    for (i, ((go, gd), (ro, rd))) in sharded.reads.iter().zip(reference.reads.iter()).enumerate() {
        assert_eq!(go, ro, "{shards} shards: read #{i} offset");
        assert_eq!(gd, rd, "{shards} shards: read #{i} data at offset {go}");
    }
    assert_eq!(
        sharded.coverage, reference.coverage,
        "{shards} shards: per-byte cache coverage/dirty state diverged"
    );
    assert_eq!(sharded.mapped_bytes, reference.mapped_bytes);
    assert_eq!(sharded.dirty_bytes, reference.dirty_bytes);
    assert_eq!(sharded.allocated, reference.allocated);
    for ((name, got), (_, want)) in sharded
        .semantic_metrics
        .iter()
        .zip(reference.semantic_metrics.iter())
    {
        assert_eq!(got, want, "{shards} shards: metric {name} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Generous cache (no eviction pressure): any shard count reproduces
    /// the single-shard reads, coverage, accounting, and semantic
    /// metrics exactly.
    #[test]
    fn prop_random_shard_count_matches_single_shard(
        ops in proptest::collection::vec(op_strategy(), 1..35),
        shards in 2u32..=16,
        seed in 0u64..1000,
    ) {
        assert_matches_reference(&ops, shards, 8 * 1024 * KIB, seed);
    }

    /// Tiny cache: per-shard LRU may evict different extents than the
    /// global reference, so cached state can legitimately diverge — but
    /// the application must still read exactly the bytes it wrote.
    #[test]
    fn prop_sharded_cache_stays_semantically_invisible_under_pressure(
        ops in proptest::collection::vec(op_strategy(), 1..35),
        shards in 2u32..=16,
        seed in 0u64..1000,
    ) {
        let mut image = vec![0u8; SPAN as usize];
        let mut expected: Vec<(u64, Vec<u8>)> = Vec::new();
        for op in &ops {
            match *op {
                Op::Write { offset, len, tag } => {
                    let data: Vec<u8> = (0..len).map(|j| tag ^ (j % 251) as u8).collect();
                    image[offset as usize..(offset + len) as usize].copy_from_slice(&data);
                }
                Op::Read { offset, len } => {
                    expected.push((
                        offset,
                        image[offset as usize..(offset + len) as usize].to_vec(),
                    ));
                }
            }
        }
        let got = observe(&ops, shards, 64 * KIB, seed);
        prop_assert_eq!(got.reads.len(), expected.len(), "read count");
        for (i, ((go, gd), (eo, ed))) in got.reads.iter().zip(expected.iter()).enumerate() {
            prop_assert_eq!(go, eo, "read #{} offset", i);
            prop_assert_eq!(gd, ed, "read #{} data", i);
        }
    }
}
