//! Crash-point torture: drive the middleware through a deterministic
//! workload while a byte-budgeted [`CrashFuse`] kills it mid-effect at
//! every recorded durable step, then recover from nothing but the
//! cluster's persisted bytes and prove the invariants:
//!
//! * every surviving mapping's cache bytes are fully present on CPFS;
//! * space accounting matches the recovered mapping exactly;
//! * every acknowledged byte reads back exactly; bytes of the single
//!   operation in flight at the crash read back as either the old or the
//!   new value, per byte (a torn write is allowed to be torn — never
//!   invented).
//!
//! The clean (unlimited-fuse) run records the full durable-step trace,
//! which defines the crash matrix: one crash at the start and one in the
//! middle of every step, covering every [`CrashSite`] the workload
//! exercises.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use s4d::cache::DMT_RECORD_BYTES;
use s4d::cache::{CrashFuse, CrashSite, S4dCache, S4dConfig};
use s4d::cost::CostParams;
use s4d::mpiio::{AppRequest, Cluster, Middleware, Plan, Rank};
use s4d::pfs::FileId;
use s4d::sim::SimTime;
use s4d::storage::{presets, IoKind};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;
/// Logical extent of the test file; the shadow model covers all of it.
const FILE_LEN: u64 = 2 * MIB;
/// Small cache capacity so the workload overflows it and must evict.
const CAPACITY: u64 = 256 * KIB;
const REQ: u64 = 16 * KIB;

fn params() -> CostParams {
    CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
    .with_cserver_op_overhead(300.0e-6, 16 * KIB)
}

fn torture_config() -> S4dConfig {
    // Batch size 1: every plan carries its own journal write, so the
    // JournalWrite site fires on the foreground path too. The low record
    // threshold makes checkpoints (and the truncation after them) fire
    // mid-workload.
    S4dConfig::new(CAPACITY)
        .with_journal_batch(1)
        .with_checkpoint_thresholds(32, u64::MAX)
}

/// The original-file content that "already existed" before the middleware
/// ever ran: seeded directly into the OPFS stores.
fn seed_bytes() -> Vec<u8> {
    (0..FILE_LEN).map(|i| (i % 251) as u8).collect()
}

/// The payload of the `n`-th application write (distinct from the seed
/// and from every other write, so old-vs-new bytes are distinguishable).
fn write_payload(n: u64) -> Vec<u8> {
    (0..REQ)
        .map(|j| ((n * 131 + j * 7 + 13) % 256) as u8)
        .collect()
}

/// One finished torture run: the crashed (or cleanly stopped) cluster
/// plus the shadow model describing what an observer was promised.
struct Outcome {
    cluster: Cluster,
    fuse: Rc<RefCell<CrashFuse>>,
    /// Acknowledged logical file content.
    shadow: Vec<u8>,
    /// The single app write in flight at the crash: (offset, old, new).
    /// Each byte of that range may read back as either version.
    wild: Option<(u64, Vec<u8>, Vec<u8>)>,
}

impl Outcome {
    fn crashed(&self) -> bool {
        self.fuse.borrow().is_dead()
    }

    /// The site of the step the fuse tore (the last recorded step).
    fn crash_site(&self) -> Option<CrashSite> {
        if !self.crashed() {
            return None;
        }
        self.fuse.borrow().steps().last().map(|s| s.site)
    }
}

/// Executes a plan the way the runner would in functional mode, but with
/// the *application-side* durable effects routed through the fuse: data
/// payloads charge [`CrashSite::DataWrite`], plan-carried journal frames
/// charge [`CrashSite::JournalWrite`]. Returns false if the fuse died
/// before the plan finished (the remaining ops never ran).
fn exec_plan(cluster: &mut Cluster, fuse: Option<&Rc<RefCell<CrashFuse>>>, plan: &Plan) -> bool {
    for phase in &plan.phases {
        for op in phase {
            if fuse.is_some_and(|f| f.borrow().is_dead()) {
                return false;
            }
            if op.kind != IoKind::Write {
                continue;
            }
            let Some(data) = &op.data else {
                // Timing-shaped op: the middleware moves these bytes
                // itself on completion (flush/fetch copies).
                continue;
            };
            let site = if op.app_offset.is_some() {
                CrashSite::DataWrite
            } else {
                CrashSite::JournalWrite
            };
            let allowed = match fuse {
                Some(f) => f.borrow_mut().consume(site, op.len),
                None => op.len,
            };
            let _ = cluster
                .pfs_mut(op.tier)
                .apply_bytes(op.file, op.offset, allowed, Some(data));
            if allowed < op.len {
                return false;
            }
        }
    }
    true
}

/// Drives the deterministic torture workload until it completes or the
/// fuse blows. `budget = None` is the clean recording run.
fn run_workload(budget: Option<u64>) -> Outcome {
    let mut cluster = Cluster::paper_testbed_small(77);
    let mut mw = S4dCache::new(torture_config(), params());
    let fuse = match budget {
        Some(b) => CrashFuse::armed(b).shared(),
        None => CrashFuse::unlimited().shared(),
    };
    mw.attach_crash_fuse(fuse.clone());
    let file = mw.open(&mut cluster, Rank(0), "torture.dat").unwrap();

    // Pre-existing file content, seeded straight into the stores (this
    // predates the crash domain, so no fuse charge).
    let seed = seed_bytes();
    cluster
        .opfs_mut()
        .apply_bytes(file, 0, FILE_LEN, Some(&seed))
        .unwrap();
    let mut shadow = seed;
    let mut wild: Option<(u64, Vec<u8>, Vec<u8>)> = None;
    let mut op_no = 0u64;
    let mut now_s = 0u64;

    macro_rules! finish {
        () => {
            return Outcome {
                cluster,
                fuse,
                shadow,
                wild,
            }
        };
    }

    // One app write; on crash the op's range becomes the wildcard.
    macro_rules! app_write {
        ($offset:expr) => {{
            let offset: u64 = $offset;
            op_no += 1;
            let data = write_payload(op_no);
            let old = shadow[offset as usize..(offset + REQ) as usize].to_vec();
            let req = AppRequest {
                rank: Rank(0),
                file,
                kind: IoKind::Write,
                offset,
                len: REQ,
                data: Some(data.clone()),
            };
            let plan = mw.plan_io(&mut cluster, SimTime::from_secs(now_s), &req);
            let done = exec_plan(&mut cluster, Some(&fuse), &plan);
            if done && plan.tag != 0 {
                mw.on_plan_complete(&mut cluster, SimTime::from_secs(now_s), plan.tag);
            }
            if fuse.borrow().is_dead() {
                wild = Some((offset, old, data));
                finish!();
            }
            shadow[offset as usize..(offset + REQ) as usize].copy_from_slice(&data);
        }};
    }

    // An app read only marks CDT flags; it has no durable effect of its
    // own, but the plan may still carry a journal frame.
    macro_rules! app_read {
        ($offset:expr) => {{
            let req = AppRequest {
                rank: Rank(0),
                file,
                kind: IoKind::Read,
                offset: $offset,
                len: REQ,
                data: None,
            };
            let plan = mw.plan_io(&mut cluster, SimTime::from_secs(now_s), &req);
            let done = exec_plan(&mut cluster, Some(&fuse), &plan);
            if done && plan.tag != 0 {
                mw.on_plan_complete(&mut cluster, SimTime::from_secs(now_s), plan.tag);
            }
            if fuse.borrow().is_dead() {
                finish!();
            }
        }};
    }

    // Run the Rebuilder to quiescence: flushes, fetches, checkpoints.
    macro_rules! drain {
        () => {{
            for _ in 0..40 {
                now_s += 1;
                let poll = mw.poll_background(&mut cluster, SimTime::from_secs(now_s));
                if fuse.borrow().is_dead() {
                    finish!();
                }
                for plan in &poll.plans {
                    let done = exec_plan(&mut cluster, Some(&fuse), plan);
                    if done && plan.tag != 0 {
                        mw.on_plan_complete(&mut cluster, SimTime::from_secs(now_s), plan.tag);
                    }
                    if fuse.borrow().is_dead() {
                        finish!();
                    }
                }
                if !poll.work_pending {
                    break;
                }
            }
        }};
    }

    // Phase 1: fill most of the cache with critical writes.
    for i in 0..10u64 {
        app_write!(i * REQ);
    }
    // Phase 2: flush them clean; first checkpoint lands here.
    drain!();
    // Phase 3: fill the remaining capacity at fresh offsets.
    for i in 0..6u64 {
        app_write!(512 * KIB + i * REQ);
    }
    // Phase 4: flag two cold ranges for fetching; the fetches must evict
    // clean phase-1 extents to make room.
    app_read!(MIB);
    app_read!(MIB + 4 * REQ);
    drain!();
    // Phase 5: more writes into a full cache — more evictions.
    for i in 0..4u64 {
        app_write!(256 * KIB + i * REQ);
    }
    drain!();
    finish!();
}

/// Structural invariants every recovered instance must satisfy.
fn check_invariants(cluster: &Cluster, mw: &S4dCache) {
    let sum: u64 = mw.dmt().iter_extents().map(|(_, _, e)| e.len).sum();
    assert_eq!(sum, mw.dmt().mapped_bytes(), "extent sum vs mapped_bytes");
    assert_eq!(
        mw.space().allocated(),
        sum,
        "space accounting diverged from the recovered mapping"
    );
    assert!(mw.space().allocated() <= mw.space().capacity());
    for (f, o, e) in mw.dmt().iter_extents() {
        let covered = cluster
            .cpfs()
            .covered_bytes(e.c_file, e.c_offset, e.len)
            .unwrap();
        assert_eq!(
            covered, e.len,
            "extent ({f:?},{o}) maps cache bytes that are not present"
        );
    }
}

/// Reads `[offset, offset+len)` through the middleware (executing the
/// read plan against the functional stores) and returns the bytes.
fn read_back(
    cluster: &mut Cluster,
    mw: &mut S4dCache,
    file: FileId,
    offset: u64,
    len: u64,
) -> Vec<u8> {
    let req = AppRequest {
        rank: Rank(0),
        file,
        kind: IoKind::Read,
        offset,
        len,
        data: None,
    };
    let plan = mw.plan_io(cluster, SimTime::ZERO, &req);
    let mut out = vec![0u8; len as usize];
    for phase in &plan.phases {
        for op in phase {
            match op.kind {
                IoKind::Read => {
                    if let Some(app) = op.app_offset {
                        let bytes = cluster
                            .pfs(op.tier)
                            .read_bytes(op.file, op.offset, op.len)
                            .unwrap()
                            .expect("functional stores");
                        let at = (app - offset) as usize;
                        out[at..at + op.len as usize].copy_from_slice(&bytes);
                    }
                }
                IoKind::Write => {
                    if let Some(data) = &op.data {
                        let _ = cluster.pfs_mut(op.tier).apply_bytes(
                            op.file,
                            op.offset,
                            op.len,
                            Some(data),
                        );
                    }
                }
            }
        }
    }
    if plan.tag != 0 {
        mw.on_plan_complete(cluster, SimTime::ZERO, plan.tag);
    }
    out
}

/// Recovers from the outcome's cluster and verifies every invariant plus
/// byte-exact reads against the shadow model.
fn verify_recovery(mut outcome: Outcome) -> s4d::cache::RecoveryReport {
    let (mut mw, report) =
        S4dCache::recover_from_cluster(torture_config(), params(), &mut outcome.cluster);
    check_invariants(&outcome.cluster, &mw);
    let file = mw
        .open(&mut outcome.cluster, Rank(0), "torture.dat")
        .unwrap();
    let step = 64 * KIB;
    for chunk in 0..(FILE_LEN / step) {
        let offset = chunk * step;
        let got = read_back(&mut outcome.cluster, &mut mw, file, offset, step);
        for (i, &got_byte) in got.iter().enumerate() {
            let abs = offset + i as u64;
            let expect = outcome.shadow[abs as usize];
            let in_wild = outcome
                .wild
                .as_ref()
                .filter(|(w_off, ..)| abs >= *w_off && abs < *w_off + REQ);
            match in_wild {
                Some((w_off, old, new)) => {
                    let rel = (abs - w_off) as usize;
                    assert!(
                        got_byte == old[rel] || got_byte == new[rel],
                        "byte {abs}: got {got_byte}, expected old {} or new {}",
                        old[rel],
                        new[rel]
                    );
                }
                None => {
                    assert_eq!(
                        got_byte, expect,
                        "acknowledged byte {abs} diverged after recovery"
                    );
                }
            }
        }
    }
    report
}

/// The sites the deterministic workload must exercise (6+ distinct crash
/// points, per the torture-matrix requirement).
const REQUIRED_SITES: [CrashSite; 8] = [
    CrashSite::DataWrite,
    CrashSite::JournalWrite,
    CrashSite::SyncAppend,
    CrashSite::EvictDiscard,
    CrashSite::FlushCopy,
    CrashSite::FetchFill,
    CrashSite::CheckpointWrite,
    CrashSite::JournalTruncate,
];

#[test]
fn crash_matrix_every_budget_recovers() {
    // Clean run: record the durable-step trace.
    let clean = run_workload(None);
    assert!(!clean.crashed());
    let steps: Vec<_> = clean.fuse.borrow().steps().to_vec();
    let recorded: BTreeSet<CrashSite> = steps.iter().map(|s| s.site).collect();
    for site in REQUIRED_SITES {
        assert!(
            recorded.contains(&site),
            "workload never exercised {site:?}; the matrix would not cover it"
        );
    }
    // The clean run itself must verify (recovery of an uncrashed cluster).
    verify_recovery(clean);

    // Crash matrix: at the start and in the middle of every step.
    let mut budgets = BTreeSet::new();
    for s in &steps {
        budgets.insert(s.start);
        if s.len > 1 {
            budgets.insert(s.start + s.len / 2);
        }
    }
    let mut crashed_sites: BTreeSet<CrashSite> = BTreeSet::new();
    for &budget in &budgets {
        let outcome = run_workload(Some(budget));
        assert!(
            outcome.crashed(),
            "budget {budget} below the clean total must crash"
        );
        if let Some(site) = outcome.crash_site() {
            crashed_sites.insert(site);
        }
        verify_recovery(outcome);
    }
    for site in REQUIRED_SITES {
        assert!(
            crashed_sites.contains(&site),
            "no budget attributed a crash to {site:?}"
        );
    }
}

#[test]
fn flush_idempotency_after_mid_flush_crash() {
    // Find the first flush copy in the clean trace and crash halfway
    // through it.
    let clean = run_workload(None);
    let target = clean
        .fuse
        .borrow()
        .steps()
        .iter()
        .find(|s| s.site == CrashSite::FlushCopy)
        .copied()
        .expect("workload flushes");
    let outcome = run_workload(Some(target.start + target.len / 2));
    assert_eq!(outcome.crash_site(), Some(CrashSite::FlushCopy));
    let mut cluster = outcome.cluster;
    let shadow = outcome.shadow;

    let (mut mw, _report) =
        S4dCache::recover_from_cluster(torture_config(), params(), &mut cluster);
    check_invariants(&cluster, &mw);
    // The torn flush never recorded its SetClean: the extent is still
    // dirty, so the flush is simply re-done — idempotently.
    assert!(mw.dmt().dirty_bytes() > 0, "mid-flush crash leaves dirt");
    let file = mw.open(&mut cluster, Rank(0), "torture.dat").unwrap();
    for round in 0..40u64 {
        let poll = mw.poll_background(&mut cluster, SimTime::from_secs(100 + round));
        for plan in &poll.plans {
            assert!(exec_plan(&mut cluster, None, plan));
            if plan.tag != 0 {
                mw.on_plan_complete(&mut cluster, SimTime::from_secs(100 + round), plan.tag);
            }
        }
        if !poll.work_pending {
            break;
        }
    }
    assert_eq!(mw.dmt().dirty_bytes(), 0, "re-flush completes");
    // After the re-flush, OPFS holds every acknowledged byte exactly.
    let opfs = cluster
        .opfs()
        .read_bytes(file, 0, FILE_LEN)
        .unwrap()
        .expect("functional stores");
    assert_eq!(opfs, shadow, "re-flushed bytes diverged");
}

#[test]
fn checkpoint_bounds_recovery_and_torn_install_falls_back() {
    // Clean run: the low threshold makes checkpoints fire mid-workload,
    // so recovery replays a bounded snapshot+tail instead of the full
    // journal history.
    let clean = run_workload(None);
    let ckpt_steps: Vec<_> = clean
        .fuse
        .borrow()
        .steps()
        .iter()
        .filter(|s| s.site == CrashSite::CheckpointWrite)
        .copied()
        .collect();
    assert!(!ckpt_steps.is_empty(), "workload checkpoints");
    // The full journal history the run produced, from the durable trace:
    // every journal append is a JournalWrite or SyncAppend step.
    let journal_bytes: u64 = clean
        .fuse
        .borrow()
        .steps()
        .iter()
        .filter(|s| matches!(s.site, CrashSite::JournalWrite | CrashSite::SyncAppend))
        .map(|s| s.len)
        .sum();
    let total_history = journal_bytes / DMT_RECORD_BYTES;
    let mut cluster = clean.cluster;
    let (_mw, report) = S4dCache::recover_from_cluster(torture_config(), params(), &mut cluster);
    assert!(report.used_checkpoint.is_some(), "snapshot slot used");
    assert!(
        report.records_replayed() < total_history,
        "compaction must bound replay: replayed {} of {} total records",
        report.records_replayed(),
        total_history
    );
    assert!(
        report.tail_records < total_history,
        "the replayed tail must exclude the compacted prefix"
    );

    // Crash halfway through the *last* checkpoint install: the CRC
    // trailer never lands, so recovery falls back to the previous slot
    // (or the full journal if it was the first) — and still verifies.
    let torn = *ckpt_steps.last().unwrap();
    let outcome = run_workload(Some(torn.start + torn.len / 2));
    assert_eq!(outcome.crash_site(), Some(CrashSite::CheckpointWrite));
    let prior_seq = (ckpt_steps.len() as u64).saturating_sub(1);
    let report = verify_recovery(outcome);
    assert_eq!(
        report.used_checkpoint,
        (prior_seq > 0).then_some(prior_seq),
        "torn install must fall back to the previous slot"
    );
}

#[test]
fn journal_before_ack_audit() {
    // Every mutation is in the journaling pipeline before the middleware
    // yields control: pending_records() is zero at every observable point.
    // (The same predicate is debug_assert'ed inside plan_io,
    // on_plan_complete, and poll_background, so every other test in this
    // file audits it continuously.)
    let mut cluster = Cluster::paper_testbed_small(5);
    let mut mw = S4dCache::new(torture_config(), params());
    let file = mw.open(&mut cluster, Rank(0), "audit.dat").unwrap();
    for i in 0..6u64 {
        let req = AppRequest {
            rank: Rank(0),
            file,
            kind: IoKind::Write,
            offset: i * REQ,
            len: REQ,
            data: Some(write_payload(i)),
        };
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &req);
        assert_eq!(mw.dmt().pending_records(), 0, "unjournaled mutation");
        assert!(exec_plan(&mut cluster, None, &plan));
        if plan.tag != 0 {
            mw.on_plan_complete(&mut cluster, SimTime::ZERO, plan.tag);
        }
        assert_eq!(mw.dmt().pending_records(), 0, "completion left records");
    }
    for round in 0..10u64 {
        let poll = mw.poll_background(&mut cluster, SimTime::from_secs(1 + round));
        assert_eq!(mw.dmt().pending_records(), 0, "background left records");
        for plan in &poll.plans {
            assert!(exec_plan(&mut cluster, None, plan));
            if plan.tag != 0 {
                mw.on_plan_complete(&mut cluster, SimTime::from_secs(1 + round), plan.tag);
            }
        }
        if !poll.work_pending {
            break;
        }
    }
}
