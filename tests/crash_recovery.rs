//! Crash recovery: the paper persists DMT changes synchronously "to
//! survive power failures" (§III.D). These tests crash the middleware at
//! arbitrary points and rebuild it from the journal record stream,
//! verifying that the mapping, the space accounting, and — in functional
//! mode — every cached byte survive.

use std::cell::RefCell;
use std::rc::Rc;

use s4d::bench::testbed;
use s4d::cache::{journal, S4dCache, S4dConfig};
use s4d::mpiio::{script, Cluster, IoObserver, Rank, Runner};
use s4d::workloads::{AccessPattern, IorConfig};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn recovery_config(capacity: u64) -> S4dConfig {
    S4dConfig::new(capacity)
        .with_journal_log(true)
        .with_journal_batch(1)
}

#[test]
fn journal_encodes_and_replays_a_real_run() {
    let tb = testbed(21);
    let cfg = IorConfig {
        file_name: "crash.dat".into(),
        file_size: 8 * MIB,
        processes: 4,
        request_size: 16 * KIB,
        pattern: AccessPattern::Random,
        do_write: true,
        do_read: true,
        seed: 21,
    };
    let middleware = S4dCache::new(recovery_config(4 * MIB), tb.cost_params());
    let mut runner = Runner::new(tb.cluster(), middleware, cfg.scripts(), 21);
    runner.run();
    let (_cluster, mut mw, _report) = runner.into_parts();
    // Clean shutdown: commit the final record batch, so recovery is exact.
    mw.sync_journal_log();

    // Round-trip the log through the on-disk encoding, as a real journal
    // file would store it.
    let log = mw.journal_log();
    assert!(!log.is_empty(), "a caching run must have journaled");
    let bytes = journal::encode_batch(log);
    let decoded = journal::decode_batch(&bytes).expect("journal decodes");
    assert_eq!(decoded.len(), log.len());

    // Recover and compare the mapping tables.
    let recovered = S4dCache::recover(recovery_config(4 * MIB), tb.cost_params(), &decoded);
    assert_eq!(recovered.dmt().mapped_bytes(), mw.dmt().mapped_bytes());
    assert_eq!(recovered.dmt().entry_count(), mw.dmt().entry_count());
    assert_eq!(recovered.dmt().dirty_bytes(), mw.dmt().dirty_bytes());
    assert_eq!(recovered.space().allocated(), mw.space().allocated());
    // Byte-level agreement over the whole file.
    for off in (0..8 * MIB).step_by(1 << 20) {
        assert_eq!(
            recovered.dmt().view(pfs_file(&mw), off, 1 << 20),
            mw.dmt().view(pfs_file(&mw), off, 1 << 20),
            "coverage diverged at offset {off}"
        );
    }
}

/// The original-file id of the single file these tests use (opfs assigns 0
/// to the first created file).
fn pfs_file(_mw: &S4dCache) -> s4d::pfs::FileId {
    s4d::pfs::FileId(0)
}

#[test]
fn cached_bytes_survive_a_crash() {
    // Functional cluster: write pattern data through S4D, crash before any
    // flush completes, recover, and read everything back through the
    // recovered middleware — cached bytes must come back from the cache
    // file exactly.
    struct Capture(Rc<RefCell<Vec<Vec<u8>>>>);
    impl IoObserver for Capture {
        fn on_read_data(&mut self, _r: Rank, _o: u64, _l: u64, data: Option<&[u8]>) {
            self.0.borrow_mut().push(data.expect("functional").to_vec());
        }
    }

    // Rebuilder disabled (no flush candidates accepted), so the crash
    // catches the cache fully dirty.
    let mut config = recovery_config(64 * MIB);
    config.max_flush_per_wake = 0;

    let payloads: Vec<(u64, Vec<u8>)> = (0..24u64)
        .map(|i| {
            let offset = (i * 104729 % 96) * 16 * KIB;
            let data: Vec<u8> = (0..16 * KIB).map(|j| ((i * 97 + j) % 251) as u8).collect();
            (offset, data)
        })
        .collect();
    // Deduplicate by offset, keeping the last write.
    let mut finals: Vec<(u64, Vec<u8>)> = Vec::new();
    for (off, data) in &payloads {
        finals.retain(|(o, _)| o != off);
        finals.push((*off, data.clone()));
    }
    finals.sort_by_key(|(o, _)| *o);

    let mut writer = script().open("crash2.dat");
    for (off, data) in &payloads {
        writer = writer.write_bytes(0, *off, data.clone());
    }
    let cluster = Cluster::paper_testbed_small(22);
    let middleware = S4dCache::new(config.clone(), tb_params_small());
    let mut runner = Runner::new(cluster, middleware, vec![writer.build()], 22);
    let report = runner.run();
    assert!(report.tiers.c_ops > 0, "writes must have been cached");
    let (cluster, mw, _) = runner.into_parts();
    assert!(mw.dmt().dirty_bytes() > 0, "crash catches dirty data");
    let log = mw.journal_log().to_vec();
    drop(mw); // the crash

    // Recovery: same cluster (CServer contents are persistent SSD state),
    // fresh middleware from the journal.
    let recovered = S4dCache::recover(config, tb_params_small(), &log);
    assert!(recovered.dmt().dirty_bytes() > 0, "dirtiness survives");

    let mut reader = script().open("crash2.dat");
    for (off, _) in &finals {
        reader = reader.read(0, *off, 16 * KIB);
    }
    let got = Rc::new(RefCell::new(Vec::new()));
    let mut runner = Runner::new(cluster, recovered, vec![reader.close(0).build()], 23);
    runner.add_observer(Box::new(Capture(got.clone())));
    let report = runner.run();
    assert!(
        report.tiers.c_ops > 0,
        "recovered mapping must route reads back to the cache"
    );
    let got = got.borrow();
    assert_eq!(got.len(), finals.len());
    for (i, (off, expect)) in finals.iter().enumerate() {
        assert_eq!(&got[i], expect, "data loss after recovery at offset {off}");
    }
}

fn tb_params_small() -> s4d::cost::CostParams {
    use s4d::storage::presets;
    s4d::cost::CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
    .with_cserver_op_overhead(300.0e-6, 16 * KIB)
}

#[test]
fn recovery_at_every_prefix_is_sound() {
    // Chaos variant: recovering from ANY journal prefix must yield a DMT
    // whose extents never overlap and whose space accounting is
    // consistent — a crash can land between any two records.
    let tb = testbed(24);
    let cfg = IorConfig {
        file_name: "prefix.dat".into(),
        file_size: 4 * MIB,
        processes: 2,
        request_size: 16 * KIB,
        pattern: AccessPattern::Random,
        do_write: true,
        do_read: true,
        seed: 24,
    };
    let middleware = S4dCache::new(recovery_config(MIB), tb.cost_params());
    let mut runner = Runner::new(tb.cluster(), middleware, cfg.scripts(), 24);
    runner.run();
    let (_c, mw, _r) = runner.into_parts();
    let log = mw.journal_log();
    assert!(log.len() > 50);
    // Check a sweep of prefixes (every 7th to keep the test fast).
    for cut in (0..=log.len()).step_by(7) {
        let recovered = S4dCache::recover(recovery_config(MIB), tb.cost_params(), &log[..cut]);
        // mapped bytes equal the sum over extents, and fit the capacity.
        let sum: u64 = recovered.dmt().iter_extents().map(|(_, _, e)| e.len).sum();
        assert_eq!(sum, recovered.dmt().mapped_bytes(), "prefix {cut}");
        assert!(recovered.space().allocated() <= recovered.space().capacity());
        assert_eq!(recovered.space().allocated(), sum);
    }
}

mod torn_journal_props {
    use super::*;
    use proptest::prelude::*;
    use s4d::cache::{Dmt, DMT_RECORD_BYTES};
    use s4d::pfs::FileId;

    const F: FileId = FileId(7);
    const CF: FileId = FileId(8);

    /// Drives a live DMT through an op script, returning the final live
    /// table and the record stream it journaled along the way.
    fn drive_ops(ops: &[(u64, u64, u8)]) -> (Dmt, Vec<s4d::cache::JournalRecord>) {
        let mut live = Dmt::new();
        let mut next_c = 0u64;
        for &(off, len, kind) in ops {
            match kind {
                0 => {
                    let view = live.view(F, off, len);
                    for (g_off, g_len) in view.gaps {
                        live.insert(F, g_off, g_len, CF, next_c, false);
                        next_c += g_len;
                    }
                }
                1 => live.mark_dirty(F, off, len),
                _ => {
                    live.remove(F, off);
                }
            }
        }
        let records = live.take_pending_journal();
        (live, records)
    }

    /// Produces a realistic record stream by driving a live DMT.
    fn records_from_ops(ops: &[(u64, u64, u8)]) -> Vec<s4d::cache::JournalRecord> {
        drive_ops(ops).1
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

        /// A journal that lost its tail to a torn write and/or took a
        /// single bit of corruption must still recover: `decode_prefix`
        /// never panics, yields an exact prefix of the original records
        /// (never a resurrected or altered mapping), and replay of that
        /// prefix is internally consistent.
        #[test]
        fn prop_torn_and_corrupted_journals_recover_a_prefix(
            ops in proptest::collection::vec((0u64..500, 1u64..64, 0u8..3), 1..40),
            cut_ppm in 0u64..1_000_001,
            flip in any::<bool>(),
            flip_at in 0u64..1_000_000,
        ) {
            let records = records_from_ops(&ops);
            let mut bytes = journal::encode_batch(&records);
            let full_len = bytes.len();
            // Torn write: keep an arbitrary byte prefix.
            let cut = (full_len as u64 * cut_ppm / 1_000_000) as usize;
            bytes.truncate(cut);
            // Bit rot: flip one bit somewhere in what remains.
            if flip && !bytes.is_empty() {
                let bit = (flip_at as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }

            let rec = journal::decode_prefix(&bytes);
            // Never more than what was stored; always an exact prefix.
            prop_assert!(rec.records.len() <= records.len());
            prop_assert_eq!(
                rec.records.as_slice(),
                &records[..rec.records.len()],
                "recovered records must be a prefix of the originals"
            );
            // Byte accounting: consumed + dropped covers the stream.
            let consumed = rec.records.len() as u64 * DMT_RECORD_BYTES;
            prop_assert_eq!(consumed + rec.dropped_bytes, bytes.len() as u64);
            // An untouched, frame-aligned stream decodes cleanly; anything
            // else reports how it was truncated.
            if !flip && cut == full_len {
                prop_assert!(rec.is_clean());
            }
            if rec.dropped_bytes > 0 {
                prop_assert!(rec.truncated_by.is_some());
            }

            // Replaying the prefix must yield a self-consistent mapping
            // (it is a valid history: the journal is written in order).
            let dmt = journal::replay(&rec.records);
            let sum: u64 = dmt.iter_extents().map(|(_, _, e)| e.len).sum();
            prop_assert_eq!(sum, dmt.mapped_bytes());
            // And agree exactly with a live DMT fed the same prefix.
            let reference = journal::replay(&records[..rec.records.len()]);
            prop_assert_eq!(dmt.view(F, 0, 1024), reference.view(F, 0, 1024));
            prop_assert_eq!(dmt.dirty_bytes(), reference.dirty_bytes());
        }

        /// Full-journal replay reconstructs the mapping *identically* to
        /// the live table — extent geometry, dirtiness, and the space
        /// allocator rebuilt from it — so a clean-shutdown recovery is
        /// indistinguishable from never having crashed.
        #[test]
        fn prop_replay_reconstructs_dmt_and_space_identically(
            ops in proptest::collection::vec((0u64..500, 1u64..64, 0u8..3), 1..60),
        ) {
            let (live, records) = drive_ops(&ops);
            let replayed = journal::replay(&records);
            prop_assert_eq!(replayed.mapped_bytes(), live.mapped_bytes());
            prop_assert_eq!(replayed.dirty_bytes(), live.dirty_bytes());
            prop_assert_eq!(replayed.entry_count(), live.entry_count());
            let live_extents: Vec<_> = live
                .iter_extents()
                .map(|(f, o, e)| (f, o, e.len, e.c_file, e.c_offset, e.dirty))
                .collect();
            let replayed_extents: Vec<_> = replayed
                .iter_extents()
                .map(|(f, o, e)| (f, o, e.len, e.c_file, e.c_offset, e.dirty))
                .collect();
            prop_assert_eq!(replayed_extents, live_extents);
            // The rebuilt allocator agrees byte-for-byte with one rebuilt
            // from the live table: identical occupancy and free headroom.
            let rebuild = |d: &Dmt| {
                s4d::cache::SpaceManager::rebuild(
                    1 << 20,
                    d.iter_extents().map(|(_, _, e)| (e.c_file, e.c_offset, e.len)),
                )
            };
            let (sa, sb) = (rebuild(&replayed), rebuild(&live));
            prop_assert_eq!(sa.allocated(), sb.allocated());
            prop_assert_eq!(sa.available(), sb.available());
            prop_assert_eq!(sa.allocated(), live.mapped_bytes());
        }

        /// A single bit flip strictly inside the stored stream is always
        /// *detected*: decoding stops at or before the damaged frame, so
        /// no corrupted record is ever replayed into the mapping.
        #[test]
        fn prop_single_bit_corruption_never_decodes_past_the_flip(
            ops in proptest::collection::vec((0u64..500, 1u64..64, 0u8..3), 1..30),
            flip_at in 0u64..1_000_000,
        ) {
            let records = records_from_ops(&ops);
            if records.is_empty() {
                return;
            }
            let mut bytes = journal::encode_batch(&records);
            let bit = (flip_at as usize) % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            let damaged_frame = bit / 8 / DMT_RECORD_BYTES as usize;

            let rec = journal::decode_prefix(&bytes);
            prop_assert!(
                rec.records.len() <= damaged_frame,
                "decoded {} records but frame {} is corrupt",
                rec.records.len(),
                damaged_frame
            );
            prop_assert_eq!(rec.records.as_slice(), &records[..rec.records.len()]);
            prop_assert!(rec.truncated_by.is_some(), "the flip must be noticed");
        }
    }
}
