//! Crash recovery: the paper persists DMT changes synchronously "to
//! survive power failures" (§III.D). These tests crash the middleware at
//! arbitrary points and rebuild it from the journal record stream,
//! verifying that the mapping, the space accounting, and — in functional
//! mode — every cached byte survive.

use std::cell::RefCell;
use std::rc::Rc;

use s4d::bench::testbed;
use s4d::cache::{journal, S4dCache, S4dConfig};
use s4d::mpiio::{script, Cluster, IoObserver, Rank, Runner};
use s4d::workloads::{AccessPattern, IorConfig};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn recovery_config(capacity: u64) -> S4dConfig {
    S4dConfig::new(capacity)
        .with_journal_log(true)
        .with_journal_batch(1)
}

#[test]
fn journal_encodes_and_replays_a_real_run() {
    let tb = testbed(21);
    let cfg = IorConfig {
        file_name: "crash.dat".into(),
        file_size: 8 * MIB,
        processes: 4,
        request_size: 16 * KIB,
        pattern: AccessPattern::Random,
        do_write: true,
        do_read: true,
        seed: 21,
    };
    let middleware = S4dCache::new(recovery_config(4 * MIB), tb.cost_params());
    let mut runner = Runner::new(tb.cluster(), middleware, cfg.scripts(), 21);
    runner.run();
    let (_cluster, mut mw, _report) = runner.into_parts();
    // Clean shutdown: commit the final record batch, so recovery is exact.
    mw.sync_journal_log();

    // Round-trip the log through the on-disk encoding, as a real journal
    // file would store it.
    let log = mw.journal_log();
    assert!(!log.is_empty(), "a caching run must have journaled");
    let bytes = journal::encode_batch(log);
    let decoded = journal::decode_batch(&bytes).expect("journal decodes");
    assert_eq!(decoded.len(), log.len());

    // Recover and compare the mapping tables.
    let recovered = S4dCache::recover(recovery_config(4 * MIB), tb.cost_params(), &decoded);
    assert_eq!(recovered.dmt().mapped_bytes(), mw.dmt().mapped_bytes());
    assert_eq!(recovered.dmt().entry_count(), mw.dmt().entry_count());
    assert_eq!(recovered.dmt().dirty_bytes(), mw.dmt().dirty_bytes());
    assert_eq!(recovered.space().allocated(), mw.space().allocated());
    // Byte-level agreement over the whole file.
    for off in (0..8 * MIB).step_by(1 << 20) {
        assert_eq!(
            recovered.dmt().view(pfs_file(&mw), off, 1 << 20),
            mw.dmt().view(pfs_file(&mw), off, 1 << 20),
            "coverage diverged at offset {off}"
        );
    }
}

/// The original-file id of the single file these tests use (opfs assigns 0
/// to the first created file).
fn pfs_file(_mw: &S4dCache) -> s4d::pfs::FileId {
    s4d::pfs::FileId(0)
}

#[test]
fn cached_bytes_survive_a_crash() {
    // Functional cluster: write pattern data through S4D, crash before any
    // flush completes, recover, and read everything back through the
    // recovered middleware — cached bytes must come back from the cache
    // file exactly.
    struct Capture(Rc<RefCell<Vec<Vec<u8>>>>);
    impl IoObserver for Capture {
        fn on_read_data(&mut self, _r: Rank, _o: u64, _l: u64, data: Option<&[u8]>) {
            self.0.borrow_mut().push(data.expect("functional").to_vec());
        }
    }

    // Rebuilder disabled (no flush candidates accepted), so the crash
    // catches the cache fully dirty.
    let mut config = recovery_config(64 * MIB);
    config.max_flush_per_wake = 0;

    let payloads: Vec<(u64, Vec<u8>)> = (0..24u64)
        .map(|i| {
            let offset = (i * 104729 % 96) * 16 * KIB;
            let data: Vec<u8> = (0..16 * KIB).map(|j| ((i * 97 + j) % 251) as u8).collect();
            (offset, data)
        })
        .collect();
    // Deduplicate by offset, keeping the last write.
    let mut finals: Vec<(u64, Vec<u8>)> = Vec::new();
    for (off, data) in &payloads {
        finals.retain(|(o, _)| o != off);
        finals.push((*off, data.clone()));
    }
    finals.sort_by_key(|(o, _)| *o);

    let mut writer = script().open("crash2.dat");
    for (off, data) in &payloads {
        writer = writer.write_bytes(0, *off, data.clone());
    }
    let cluster = Cluster::paper_testbed_small(22);
    let middleware = S4dCache::new(config.clone(), tb_params_small());
    let mut runner = Runner::new(cluster, middleware, vec![writer.build()], 22);
    let report = runner.run();
    assert!(report.tiers.c_ops > 0, "writes must have been cached");
    let (cluster, mw, _) = runner.into_parts();
    assert!(mw.dmt().dirty_bytes() > 0, "crash catches dirty data");
    let log = mw.journal_log().to_vec();
    drop(mw); // the crash

    // Recovery: same cluster (CServer contents are persistent SSD state),
    // fresh middleware from the journal.
    let recovered = S4dCache::recover(config, tb_params_small(), &log);
    assert!(recovered.dmt().dirty_bytes() > 0, "dirtiness survives");

    let mut reader = script().open("crash2.dat");
    for (off, _) in &finals {
        reader = reader.read(0, *off, 16 * KIB);
    }
    let got = Rc::new(RefCell::new(Vec::new()));
    let mut runner = Runner::new(cluster, recovered, vec![reader.close(0).build()], 23);
    runner.add_observer(Box::new(Capture(got.clone())));
    let report = runner.run();
    assert!(
        report.tiers.c_ops > 0,
        "recovered mapping must route reads back to the cache"
    );
    let got = got.borrow();
    assert_eq!(got.len(), finals.len());
    for (i, (off, expect)) in finals.iter().enumerate() {
        assert_eq!(&got[i], expect, "data loss after recovery at offset {off}");
    }
}

fn tb_params_small() -> s4d::cost::CostParams {
    use s4d::storage::presets;
    s4d::cost::CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
    .with_cserver_op_overhead(300.0e-6, 16 * KIB)
}

#[test]
fn recovery_at_every_prefix_is_sound() {
    // Chaos variant: recovering from ANY journal prefix must yield a DMT
    // whose extents never overlap and whose space accounting is
    // consistent — a crash can land between any two records.
    let tb = testbed(24);
    let cfg = IorConfig {
        file_name: "prefix.dat".into(),
        file_size: 4 * MIB,
        processes: 2,
        request_size: 16 * KIB,
        pattern: AccessPattern::Random,
        do_write: true,
        do_read: true,
        seed: 24,
    };
    let middleware = S4dCache::new(recovery_config(MIB), tb.cost_params());
    let mut runner = Runner::new(tb.cluster(), middleware, cfg.scripts(), 24);
    runner.run();
    let (_c, mw, _r) = runner.into_parts();
    let log = mw.journal_log();
    assert!(log.len() > 50);
    // Check a sweep of prefixes (every 7th to keep the test fast).
    for cut in (0..=log.len()).step_by(7) {
        let recovered = S4dCache::recover(recovery_config(MIB), tb.cost_params(), &log[..cut]);
        // mapped bytes equal the sum over extents, and fit the capacity.
        let sum: u64 = recovered.dmt().iter_extents().map(|(_, _, e)| e.len).sum();
        assert_eq!(sum, recovered.dmt().mapped_bytes(), "prefix {cut}");
        assert!(recovered.space().allocated() <= recovered.space().capacity());
        assert_eq!(recovered.space().allocated(), sum);
    }
}
