//! Group-commit crash matrix: crash at every record boundary (and inside
//! a record) of a coalesced multi-shard journal batch and prove the
//! all-or-prefix contract (DESIGN.md §15):
//!
//! * the durable journal holds a whole-record *prefix* of the batch in
//!   its deterministic drain order (shard order, then append order) —
//!   never a torn record, a hole, or a reordering;
//! * recovery replays exactly that prefix: the writes it covers read
//!   back as their new bytes, every write past the prefix reverts to the
//!   pre-crash original bytes (its cache payload is orphan-swept);
//! * space accounting and cache coverage match the recovered mapping.
//!
//! The workload stripes writes round-robin across 4 shards with a
//! group-commit threshold of 4 records, so the single batch frame the
//! fuse tears rejoins records from every per-shard queue.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use s4d::cache::{CrashFuse, CrashSite, S4dCache, S4dConfig, DMT_RECORD_BYTES};
use s4d::cost::CostParams;
use s4d::mpiio::{AppRequest, Cluster, Middleware, Plan, Rank};
use s4d::pfs::FileId;
use s4d::sim::SimTime;
use s4d::storage::{presets, IoKind};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;
const FILE_LEN: u64 = 2 * MIB;
/// One write per stripe tile so every request is shard-pure.
const TILE: u64 = 64 * KIB;
const REQ: u64 = 16 * KIB;
const SHARDS: u32 = 4;
const BATCH: u64 = 4;

fn params() -> CostParams {
    CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
    .with_cserver_op_overhead(300.0e-6, 16 * KIB)
}

fn config() -> S4dConfig {
    // Capacity far above the workload so no eviction interleaves with the
    // batch under test; the only journal write is the group commit.
    S4dConfig::new(64 * MIB)
        .with_journal_batch(BATCH)
        .with_shards(SHARDS)
        .with_shard_stripe(TILE)
}

fn seed_bytes() -> Vec<u8> {
    (0..FILE_LEN).map(|i| (i % 251) as u8).collect()
}

fn write_payload(n: u64) -> Vec<u8> {
    (0..REQ)
        .map(|j| ((n * 131 + j * 7 + 13) % 256) as u8)
        .collect()
}

/// Executes a plan functionally, charging data payloads and journal
/// frames to the fuse (the crash-torture executor, trimmed to writes).
fn exec_plan(cluster: &mut Cluster, fuse: Option<&Rc<RefCell<CrashFuse>>>, plan: &Plan) -> bool {
    for phase in &plan.phases {
        for op in phase {
            if fuse.is_some_and(|f| f.borrow().is_dead()) {
                return false;
            }
            if op.kind != IoKind::Write {
                continue;
            }
            let Some(data) = &op.data else {
                continue;
            };
            let site = if op.app_offset.is_some() {
                CrashSite::DataWrite
            } else {
                CrashSite::JournalWrite
            };
            let allowed = match fuse {
                Some(f) => f.borrow_mut().consume(site, op.len),
                None => op.len,
            };
            let _ = cluster
                .pfs_mut(op.tier)
                .apply_bytes(op.file, op.offset, allowed, Some(data));
            if allowed < op.len {
                return false;
            }
        }
    }
    true
}

/// One run up to (and through) the first group-commit batch.
struct Outcome {
    cluster: Cluster,
    fuse: Rc<RefCell<CrashFuse>>,
    file: FileId,
    /// Offsets of the admitted writes, in issue order.
    offsets: Vec<u64>,
    /// The batch's records in deterministic drain order (shard order,
    /// then append order within each shard's queue), reconstructed from
    /// the admission protocol: `(is_insert, write_index)` — write `i`
    /// queues its Insert during `plan_io` and its Seal at completion, and
    /// the batch fires inside the last write's `plan_io`, before that
    /// write completes.
    drain_order: Vec<(bool, usize)>,
}

/// Issues round-robin tile writes until one plan carries the coalesced
/// journal batch, crashing (or not) per the fuse budget.
fn run(budget: Option<u64>) -> Outcome {
    let mut cluster = Cluster::paper_testbed_small(41);
    let mut mw = S4dCache::new(config(), params());
    let fuse = match budget {
        Some(b) => CrashFuse::armed(b).shared(),
        None => CrashFuse::unlimited().shared(),
    };
    mw.attach_crash_fuse(fuse.clone());
    let file = mw.open(&mut cluster, Rank(0), "gc.dat").unwrap();
    cluster
        .opfs_mut()
        .apply_bytes(file, 0, FILE_LEN, Some(&seed_bytes()))
        .unwrap();
    let router = mw.plane().router();

    let mut offsets = Vec::new();
    let mut batched = false;
    for i in 0..(SHARDS as u64 * BATCH + 1) {
        let offset = i * TILE;
        let req = AppRequest {
            rank: Rank(0),
            file,
            kind: IoKind::Write,
            offset,
            len: REQ,
            data: Some(write_payload(i + 1)),
        };
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &req);
        offsets.push(offset);
        batched = plan
            .phases
            .iter()
            .flatten()
            .any(|op| op.kind == IoKind::Write && op.app_offset.is_none());
        let done = exec_plan(&mut cluster, Some(&fuse), &plan);
        if done && plan.tag != 0 {
            mw.on_plan_complete(&mut cluster, SimTime::ZERO, plan.tag);
        }
        if fuse.borrow().is_dead() || batched {
            break;
        }
    }
    assert!(
        batched || fuse.borrow().is_dead(),
        "the workload must reach a group-commit batch"
    );
    // Reconstruct each shard's queue: interleaved Insert/Seal events in
    // chronological order (ascending write index keeps them sorted).
    let n = offsets.len();
    let mut by_shard: Vec<Vec<(bool, usize)>> = vec![Vec::new(); SHARDS as usize];
    for (i, &o) in offsets.iter().enumerate() {
        let s = router.shard_of(file, o);
        by_shard[s].push((true, i));
        if i + 1 < n {
            by_shard[s].push((false, i));
        }
    }
    let drain_order: Vec<(bool, usize)> = by_shard.into_iter().flatten().collect();
    Outcome {
        cluster,
        fuse,
        file,
        offsets,
        drain_order,
    }
}

/// Reads `[offset, offset+REQ)` through a recovered middleware.
fn read_back(cluster: &mut Cluster, mw: &mut S4dCache, file: FileId, offset: u64) -> Vec<u8> {
    let req = AppRequest {
        rank: Rank(0),
        file,
        kind: IoKind::Read,
        offset,
        len: REQ,
        data: None,
    };
    let plan = mw.plan_io(cluster, SimTime::ZERO, &req);
    let mut out = vec![0u8; REQ as usize];
    for phase in &plan.phases {
        for op in phase {
            if op.kind == IoKind::Read {
                if let Some(app) = op.app_offset {
                    let bytes = cluster
                        .pfs(op.tier)
                        .read_bytes(op.file, op.offset, op.len)
                        .unwrap()
                        .expect("functional stores");
                    let at = (app - offset) as usize;
                    out[at..at + op.len as usize].copy_from_slice(&bytes);
                }
            } else if let Some(data) = &op.data {
                let _ =
                    cluster
                        .pfs_mut(op.tier)
                        .apply_bytes(op.file, op.offset, op.len, Some(data));
            }
        }
    }
    if plan.tag != 0 {
        mw.on_plan_complete(cluster, SimTime::ZERO, plan.tag);
    }
    out
}

#[test]
fn mid_batch_crash_keeps_an_exact_record_prefix() {
    // Clean run: locate the single coalesced batch write in the durable
    // trace. Every queued record drains into it, so its length is the
    // whole workload's record count.
    let clean = run(None);
    assert!(!clean.fuse.borrow().is_dead());
    let batch_steps: Vec<_> = clean
        .fuse
        .borrow()
        .steps()
        .iter()
        .filter(|s| s.site == CrashSite::JournalWrite)
        .copied()
        .collect();
    assert_eq!(batch_steps.len(), 1, "exactly one group-commit frame");
    let batch = batch_steps[0];
    let records = clean.drain_order.len() as u64;
    assert_eq!(
        batch.len,
        records * DMT_RECORD_BYTES,
        "the frame holds every queued Insert/Seal record"
    );
    assert!(
        records > BATCH,
        "the coalesced frame must span more than one shard's queue"
    );

    // The "all" arm: recovering the uncrashed cluster replays the whole
    // batch and every write is durable.
    let seed = seed_bytes();
    {
        let mut cluster = clean.cluster;
        let (mut mw, report) = S4dCache::recover_from_cluster(config(), params(), &mut cluster);
        assert_eq!(report.tail_records, records, "full batch replays");
        assert_eq!(report.dropped_journal_bytes, 0);
        let file = mw.open(&mut cluster, Rank(0), "gc.dat").unwrap();
        for (i, &offset) in clean.offsets.iter().enumerate() {
            let got = read_back(&mut cluster, &mut mw, file, offset);
            assert_eq!(got, write_payload(i as u64 + 1), "clean write {offset}");
        }
    }

    // The "prefix" arm: crash at every record boundary of the frame, and
    // 13 bytes into the following record — both must leave exactly k
    // whole records durable, never a torn one.
    for k in 0..records {
        for cut in [
            batch.start + k * DMT_RECORD_BYTES,
            batch.start + k * DMT_RECORD_BYTES + 13,
        ] {
            let torn_tail = cut - batch.start - k * DMT_RECORD_BYTES;
            let mut outcome = run(Some(cut));
            assert!(outcome.fuse.borrow().is_dead(), "budget within the frame");
            assert_eq!(
                outcome.fuse.borrow().steps().last().map(|s| s.site),
                Some(CrashSite::JournalWrite),
                "the fuse must die inside the batch frame"
            );
            let (mut mw, report) =
                S4dCache::recover_from_cluster(config(), params(), &mut outcome.cluster);

            // All-or-prefix: exactly k records replayed, the torn tail
            // truncated, nothing invented past the cut.
            assert_eq!(report.used_checkpoint, None);
            assert_eq!(report.tail_records, k, "cut at {cut}: prefix length");
            assert_eq!(report.dropped_journal_bytes, torn_tail);
            assert_eq!(report.dropped_extents, 0, "prefix data landed pre-batch");

            // The recovered mapping is exactly the writes whose Insert
            // record sits inside the drain-order prefix (Seal records
            // change no mapping; recovery keeps covered extents whether
            // or not their Seal made it into the prefix).
            let expect: BTreeSet<u64> = outcome
                .drain_order
                .iter()
                .take(k as usize)
                .filter(|&&(is_insert, _)| is_insert)
                .map(|&(_, i)| outcome.offsets[i])
                .collect();
            let got: BTreeSet<u64> = mw
                .plane()
                .iter_extents()
                .map(|(f, o, e)| {
                    assert_eq!(f, outcome.file);
                    assert_eq!(e.len, REQ);
                    o
                })
                .collect();
            assert_eq!(got, expect, "cut at {cut}: mapped prefix diverged");
            let mapped = expect.len() as u64 * REQ;
            assert_eq!(mw.plane().mapped_bytes(), mapped);
            assert_eq!(mw.plane().allocated(), mapped, "space matches mapping");

            // Byte-level: prefix writes read their new bytes; every write
            // past the prefix reverts to the original (its cache payload
            // was orphan-swept, never served).
            let file = mw.open(&mut outcome.cluster, Rank(0), "gc.dat").unwrap();
            for (i, &offset) in outcome.offsets.iter().enumerate() {
                let got = read_back(&mut outcome.cluster, &mut mw, file, offset);
                if expect.contains(&offset) {
                    assert_eq!(
                        got,
                        write_payload(i as u64 + 1),
                        "cut at {cut}: durable write {offset} lost bytes"
                    );
                } else {
                    let s = offset as usize;
                    assert_eq!(
                        got,
                        &seed[s..s + REQ as usize],
                        "cut at {cut}: undurable write {offset} partially applied"
                    );
                }
            }
        }
    }
}
