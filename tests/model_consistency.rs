//! Consistency between the paper's closed-form cost model (`s4d-cost`) and
//! the mechanical substrate it abstracts (`s4d-pfs`, `s4d-storage`): the
//! model's arithmetic must describe what the simulated file systems
//! actually do, the way the paper derives its parameters by profiling its
//! own testbed.

use proptest::prelude::*;
use s4d::cost::{involved_servers, max_subrequest_exact, max_subrequest_table2};
use s4d::pfs::StripeLayout;
use s4d::sim::SimRng;
use s4d::storage::{presets, profile};

const KIB: u64 = 1024;

proptest! {
    /// The cost crate's exact `s_m` equals the layout crate's actual
    /// largest per-server share, for arbitrary geometry — two independent
    /// implementations of the paper's decomposition.
    #[test]
    fn exact_sm_matches_pfs_layout(
        stripe_kib in 1u64..128,
        servers in 1usize..12,
        offset in 0u64..(1 << 24),
        len in 1u64..(1 << 22),
    ) {
        let stripe = stripe_kib * KIB;
        let layout = StripeLayout::new(stripe, servers);
        prop_assert_eq!(
            max_subrequest_exact(offset, len, stripe, servers),
            layout.max_subrequest(offset, len)
        );
    }

    /// The paper's Table II closed form tracks the true decomposition to
    /// within one stripe (its `E = ⌊(f+r)/str⌋` convention over-counts at
    /// aligned ends), and never under-estimates by more than one stripe.
    #[test]
    fn table2_tracks_layout_within_one_stripe(
        stripe_kib in 1u64..64,
        servers in 1usize..10,
        offset in 0u64..(1 << 22),
        len in 1u64..(1 << 21),
    ) {
        let stripe = stripe_kib * KIB;
        let layout = StripeLayout::new(stripe, servers);
        let truth = layout.max_subrequest(offset, len);
        let t2 = max_subrequest_table2(offset, len, stripe, servers);
        prop_assert!(t2 + stripe >= truth, "t2 {} vs truth {}", t2, truth);
        prop_assert!(t2 <= truth + stripe, "t2 {} vs truth {}", t2, truth);
    }

    /// Equation 6's server count is the layout's real count, give or take
    /// the paper's aligned-end quirk (+1).
    #[test]
    fn eq6_tracks_real_server_count(
        stripe_kib in 1u64..64,
        servers in 1usize..10,
        offset in 0u64..(1 << 22),
        len in 1u64..(1 << 20),
    ) {
        let stripe = stripe_kib * KIB;
        let layout = StripeLayout::new(stripe, servers);
        let real = layout.involved_servers(offset, len);
        let model = involved_servers(offset, len, stripe, servers);
        prop_assert!(model >= real, "model {} vs real {}", model, real);
        prop_assert!(model <= (real + 1).min(servers), "model {} vs real {}", model, real);
    }
}

/// Profiling the simulated HDD (the paper's offline methodology, ref [28])
/// recovers a seek curve close to the device's ground truth across four
/// decades of distance.
#[test]
fn profiled_seek_curve_matches_device() {
    let config = presets::hdd_seagate_st3250();
    let truth = config.seek_profile().clone();
    let mut rng = SimRng::seed(0xF5);
    let fitted = profile::profile_seek_curve(&config, 96, &mut rng).expect("profiling fits");
    for d in [1u64 << 16, 1 << 22, 1 << 28, 1 << 33, 1 << 37] {
        let t = truth.seek_secs(d);
        let f = fitted.seek_secs(d);
        let tol = (t * 0.35).max(1.5e-3);
        assert!(
            (t - f).abs() < tol,
            "distance {d}: truth {t:.4}s vs fitted {f:.4}s"
        );
    }
}

/// The benefit evaluator's decisions are consistent with the simulator's
/// actual relative service times: for the paper's testbed, a request the
/// model calls critical really is served faster by the CServer array, and
/// a multi-megabyte request really is not.
#[test]
fn model_decisions_match_simulated_reality() {
    use s4d::bench::testbed;
    use s4d::cost::BenefitEvaluator;
    use s4d::storage::{DeviceModel, IoKind};

    let tb = testbed(55);
    let eval: BenefitEvaluator<u32> = BenefitEvaluator::new(tb.cost_params());

    // Simulated single-request service times, random placement.
    let hdd_cfg = presets::hdd_seagate_st3250();
    let ssd_cfg = presets::ssd_ocz_revodrive_x2();
    let mut rng = SimRng::seed(56);
    let mut hdd = hdd_cfg.clone().build();
    let mut ssd = ssd_cfg.clone().build();

    // 16 KiB random: model says critical; the devices agree by a wide
    // margin (single-server comparison is conservative: the HDD side also
    // enjoys 8-way parallelism only for striped requests, which a 16 KiB
    // request cannot use).
    let b = eval.evaluate_at_distance(512 << 20, 0, 16 * KIB);
    assert!(b.is_critical());
    let mut hdd_t = 0.0;
    let mut ssd_t = 0.0;
    for i in 0..32u64 {
        let lba = (i * 7_919 % 101) * (1 << 30);
        hdd_t += hdd
            .service_time(IoKind::Write, lba, 16 * KIB, &mut rng)
            .as_secs_f64();
        ssd_t += ssd
            .service_time(IoKind::Write, lba, 16 * KIB, &mut rng)
            .as_secs_f64();
    }
    assert!(
        hdd_t > 5.0 * ssd_t,
        "simulated devices must agree with the model: hdd {hdd_t:.4} vs ssd {ssd_t:.4}"
    );

    // 4 MiB: model says not critical; aggregate streaming rates agree
    // (8 HDDs beat 4 SSDs on writes).
    let b = eval.evaluate_at_distance(512 << 20, 0, 4 << 20);
    assert!(!b.is_critical());
    let hdd_agg = 8.0 * hdd_cfg.transfer_rate();
    let ssd_agg = 4.0 * ssd_cfg.rate(IoKind::Write);
    assert!(hdd_agg > ssd_agg);
}
