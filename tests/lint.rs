//! Tier-1 gate: the workspace must lint clean under `s4d-lint`.
//!
//! This is the same check CI runs via `cargo run -p s4d-lint --
//! --workspace`, wired into the ordinary test suite so a plain
//! `cargo test` refuses determinism, panic-freedom, lock-discipline,
//! and durability-protocol regressions. Warnings (report-only findings,
//! e.g. determinism in test code and `panic-path` reachability reports)
//! are printed but do not fail.
//!
//! A second test pins the run as a snapshot — violation-free, a stable
//! suppression count, deterministic ordering — so a regression that
//! introduces errors, sneaks in an unreviewed allow-pragma, or breaks
//! output determinism fails tier-1 even if the finding itself would only
//! warn.

use s4d_lint::Severity;

fn report() -> s4d_lint::Report {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    s4d_lint::lint_workspace(root).expect("workspace walk succeeds")
}

#[test]
fn workspace_lints_clean() {
    let report = report();
    assert!(report.files > 50, "walk found only {} files", report.files);
    for d in report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
    {
        println!("(report-only) {d}");
    }
    let errors: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .collect();
    assert!(
        errors.is_empty(),
        "s4d-lint found {} error(s):\n{}",
        errors.len(),
        errors.join("\n")
    );
}

/// The pinned workspace snapshot. Update the numbers only with the
/// review that justifies the change (a new pragma needs its call-chain
/// evidence; a new `panic-path` warning needs the chain audited).
#[test]
fn workspace_report_matches_the_pinned_snapshot() {
    let report = report();
    assert_eq!(report.errors(), 0, "the workspace is pinned violation-free");
    // 22 = the previous 26 minus the four findings (two `panic` sites
    // and their `panic-path` shadows) retired when the scrub-cursor and
    // CRC-table indexing were rewritten to `.get(…)` — provably-in-range
    // masks no longer need a pragma to say so.
    assert_eq!(
        report.suppressed, 22,
        "pragma-suppression count drifted — a pragma was added or \
         retired without updating the pinned snapshot (suppressed = \
         lexical `panic` findings + the site-anchored `panic-path` \
         findings their pragmas also cover)"
    );
    // Every surviving warning is a reviewed reachability report (or a
    // report-only determinism note) — none may carry an empty message.
    for d in &report.diagnostics {
        assert_eq!(d.severity, Severity::Warning);
        assert!(!d.message.is_empty());
    }
    // Deterministic output order: (file, line, rule, message),
    // strictly sorted, so CI artifact diffs are stable line-by-line.
    let keys: Vec<_> = report
        .diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule, d.message.clone()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "diagnostics must come out sorted");
    // Interprocedural findings must carry their witness chains.
    for d in report.diagnostics.iter().filter(|d| d.rule == "panic-path") {
        assert!(
            !d.chain.is_empty(),
            "panic-path finding without a witness chain: {d}"
        );
    }
}

/// The linter's output is part of the CI contract: two runs over the
/// same tree must be byte-identical — same findings, same order, same
/// chains, same rendered JSON. The CFG construction, the dataflow
/// fixpoints, and the diagnostic sort are all deterministic; this pins
/// that end to end.
#[test]
fn lint_output_is_byte_identical_across_runs() {
    let render = |r: &s4d_lint::Report| -> String {
        let mut out = String::new();
        for d in &r.diagnostics {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out.push_str(&format!(
            "files={} suppressed={} pragmas={}\n",
            r.files, r.suppressed, r.pragmas
        ));
        out
    };
    let (a, b) = (report(), report());
    assert_eq!(
        render(&a),
        render(&b),
        "two lint runs over the same tree diverged — nondeterminism in \
         the walk, the CFG/dataflow layer, or the sort"
    );
}
