//! Tier-1 gate: the workspace must lint clean under `s4d-lint`.
//!
//! This is the same check CI runs via `cargo run -p s4d-lint --
//! --workspace`, wired into the ordinary test suite so a plain
//! `cargo test` refuses determinism, panic-freedom, lock-discipline,
//! and durability-protocol regressions. Warnings (report-only findings,
//! e.g. determinism in test code) are printed but do not fail.

use s4d_lint::Severity;

#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = s4d_lint::lint_workspace(root).expect("workspace walk succeeds");
    assert!(report.files > 50, "walk found only {} files", report.files);
    for d in report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
    {
        println!("(report-only) {d}");
    }
    let errors: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .collect();
    assert!(
        errors.is_empty(),
        "s4d-lint found {} error(s):\n{}",
        errors.len(),
        errors.join("\n")
    );
}
