//! Gray-failure (fail-slow) integration tests: stall and tail-latency
//! fault plans driven end to end through the runner with deadline
//! budgets, hedged reads, and straggler abandonment — every read
//! verified byte-exact against the durable image.
//!
//! The matrix deliberately covers both directions of the trade-off:
//! scenarios where the machinery must fire (forever-stalls, heavy
//! tails) and scenarios where it must *not* (released stalls without
//! deadlines, mild degradation inside a generous budget).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use s4d::bench::testbed;
use s4d::cache::{S4dCache, S4dConfig};
use s4d::mpiio::{script, Cluster, GrayFailureCounts, IoObserver, Rank, Runner, ScriptBuilder};
use s4d::pfs::{FaultPlan, OpClass, ServerFault};
use s4d::sim::{SimDuration, SimTime};
use s4d::storage::IoKind;

const KIB: u64 = 1024;

/// Deterministic pattern bytes for a write at `offset` with version `v`.
fn pattern(offset: u64, len: u64, v: u64) -> Vec<u8> {
    (0..len)
        .map(|j| ((offset / KIB) * 37 + j * 11 + v * 101) as u8)
        .collect()
}

/// Observer checking every read against an expected byte image.
struct Verify {
    expected: Rc<RefCell<HashMap<u64, Vec<u8>>>>,
    failures: Rc<RefCell<Vec<String>>>,
}

impl IoObserver for Verify {
    fn on_read_data(&mut self, _r: Rank, offset: u64, len: u64, data: Option<&[u8]>) {
        let expected = self.expected.borrow();
        let Some(want) = expected.get(&offset) else {
            self.failures
                .borrow_mut()
                .push(format!("unexpected read at {offset}"));
            return;
        };
        let data = data.expect("functional run returns data");
        if want.as_slice() != data {
            self.failures
                .borrow_mut()
                .push(format!("wrong bytes at offset {offset} len {len}"));
        }
    }
}

struct Setup {
    runner: Runner<S4dCache>,
    failures: Rc<RefCell<Vec<String>>>,
}

fn build(
    seed: u64,
    config: S4dConfig,
    fault: FaultPlan,
    script: ScriptBuilder,
    expected: HashMap<u64, Vec<u8>>,
) -> Setup {
    let mut cluster = Cluster::paper_testbed_small(seed);
    cluster
        .cpfs_mut()
        .set_fault_plan(0, fault)
        .expect("CServer 0 exists");
    let params = testbed(seed).cost_params();
    let mut runner = Runner::new(
        cluster,
        S4dCache::new(config, params),
        vec![script.close(0).build()],
        seed,
    );
    let failures = Rc::new(RefCell::new(Vec::new()));
    runner.add_observer(Box::new(Verify {
        expected: Rc::new(RefCell::new(expected)),
        failures: failures.clone(),
    }));
    Setup { runner, failures }
}

/// Writes the standard 8 × 16 KiB pattern and records the expected image.
fn write_phase(mut b: ScriptBuilder, expected: &mut HashMap<u64, Vec<u8>>) -> ScriptBuilder {
    for i in 0..8u64 {
        let off = i * 16 * KIB;
        b = b.write_bytes(0, off, pattern(off, 16 * KIB, 1));
        expected.insert(off, pattern(off, 16 * KIB, 1));
    }
    b
}

/// With deadlines disabled (the default), a stall window with a release
/// is simply ridden out: writes issued mid-stall park in the service
/// slot, resume at the release, and complete — no errors, no replans,
/// and every gray-failure counter stays zero.
#[test]
fn released_stall_is_ridden_out_without_deadlines() {
    let config = S4dConfig::new(64 * 1024 * KIB).with_journal_batch(1);
    let fault = FaultPlan::new().with(ServerFault::Stall {
        since: SimTime::from_secs(1),
        release: Some(SimTime::from_secs(1) + SimDuration::from_millis(500)),
    });

    let mut expected = HashMap::new();
    let mut b = script()
        .open("stall-wait.dat")
        .think(SimDuration::from_secs(1));
    // Issued inside the stall window: they park until the release.
    b = write_phase(b, &mut expected);
    for i in 0..8u64 {
        b = b.read(0, i * 16 * KIB, 16 * KIB);
    }

    let Setup {
        mut runner,
        failures,
    } = build(41, config, fault, b, expected);
    let report = runner.run();
    assert!(
        failures.borrow().is_empty(),
        "stalled writes corrupted data: {:?}",
        failures.borrow()
    );
    assert_eq!(report.app_ops(IoKind::Read), 8);
    assert_eq!(
        report.gray,
        GrayFailureCounts::default(),
        "no deadlines, no gray-failure actions"
    );
    assert_eq!(report.degraded.replans, 0);
    assert!(
        report.end_time >= SimTime::from_secs(1) + SimDuration::from_millis(500),
        "the run must have waited for the stall release"
    );
}

/// A heavy latency tail (every op in the window served 1000× slower)
/// under deadline budgets: each tailed read misses its deadline, the
/// straggler is abandoned, and a hedged OPFS read delivers the same
/// clean bytes inside the budget. The run never waits out a tail.
#[test]
fn tail_latency_hedges_past_deadline_misses() {
    let config = S4dConfig::new(64 * 1024 * KIB)
        .with_journal_batch(1)
        .with_rebuild_period(SimDuration::from_millis(200))
        .with_deadlines(4.0, SimDuration::from_millis(2))
        .with_hedged_reads(true)
        // This scenario exercises hedging, not quarantine: keep the
        // demerit ladder from tripping so every read takes the cache
        // route and must be rescued individually.
        .with_quarantine(1000, SimDuration::from_secs(1));
    let fault = FaultPlan::new().with(ServerFault::TailLatency {
        from: SimTime::from_secs(2),
        until: SimTime::from_secs(100),
        probability: 1.0,
        factor: 1000.0,
    });

    let mut expected = HashMap::new();
    let mut b = write_phase(script().open("tail.dat"), &mut expected);
    // Think past several Rebuilder wakes so everything is flushed clean
    // (and journaled) before the tail window opens.
    b = b.think(SimDuration::from_secs(2));
    for i in 0..8u64 {
        b = b.read(0, i * 16 * KIB, 16 * KIB);
    }

    let Setup {
        mut runner,
        failures,
    } = build(43, config, fault, b, expected);
    let report = runner.run();
    assert!(
        failures.borrow().is_empty(),
        "hedged reads returned wrong bytes: {:?}",
        failures.borrow()
    );
    assert_eq!(report.app_ops(IoKind::Read), 8);
    assert!(report.gray.deadline_misses > 0, "tails must miss deadlines");
    assert!(report.gray.hedges_issued > 0, "misses must hedge");
    assert!(report.gray.hedges_won > 0, "hedges must deliver the bytes");
    let m = runner.middleware().metrics();
    assert!(m.hedged_reads > 0);
    assert_eq!(m.straggler_abandons, 0, "no write was ever abandoned");
}

/// The canonical gray failure: a CServer stalls forever (up, but serving
/// nothing). Clean cached reads park, miss their deadline, and are
/// rescued by hedged OPFS reads; the parked stragglers are physically
/// freed from the server. The run completes — nothing waits forever.
#[test]
fn forever_stall_clean_reads_rescued_by_hedged_opfs_reads() {
    let config = S4dConfig::new(64 * 1024 * KIB)
        .with_journal_batch(1)
        .with_rebuild_period(SimDuration::from_millis(200))
        .with_deadlines(4.0, SimDuration::from_millis(2))
        .with_hedged_reads(true);
    let fault = FaultPlan::new().with(ServerFault::Stall {
        since: SimTime::from_secs(2),
        release: None,
    });

    let mut expected = HashMap::new();
    let mut b = write_phase(script().open("stall-forever.dat"), &mut expected);
    // All dirty data is flushed clean and journaled well before the
    // stall begins — from 2 s on, the cache holds only clean bytes whose
    // durable copy a hedge can serve.
    b = b.think(SimDuration::from_millis(2500));
    for i in 0..8u64 {
        b = b.read(0, i * 16 * KIB, 16 * KIB);
    }

    let Setup {
        mut runner,
        failures,
    } = build(47, config, fault, b, expected);
    let report = runner.run();
    assert!(
        failures.borrow().is_empty(),
        "rescued reads returned wrong bytes: {:?}",
        failures.borrow()
    );
    assert_eq!(report.app_ops(IoKind::Read), 8, "every read completed");
    assert!(report.gray.deadline_misses > 0);
    assert!(report.gray.hedges_issued > 0, "parked reads must hedge");
    assert!(report.gray.hedges_won > 0);
    assert!(
        report.gray.stall_abandons > 0,
        "parked stragglers must be freed from the server"
    );
    // The deadline demerits quarantine the stalled server, so later
    // reads degrade to OPFS at plan time instead of parking at all.
    let m = runner.middleware().metrics();
    assert!(
        m.quarantines >= 1,
        "repeated deadline misses must quarantine the server"
    );
}

/// Mild per-class degradation (writes 3× slower) inside a generous
/// deadline budget: the budget absorbs the slowdown, so nothing misses,
/// nothing hedges, nothing is abandoned — and reads, being the healthy
/// class, are untouched. Guards against false-positive hedging.
#[test]
fn class_degraded_writes_stay_within_generous_budgets() {
    let config = S4dConfig::new(64 * 1024 * KIB)
        .with_journal_batch(1)
        .with_deadlines(50.0, SimDuration::from_millis(10))
        .with_hedged_reads(true);
    let fault = FaultPlan::new().with(ServerFault::ClassDegraded {
        from: SimTime::ZERO,
        until: SimTime::from_secs(100),
        class: OpClass::Write,
        factor: 3.0,
    });

    let mut expected = HashMap::new();
    let mut b = write_phase(script().open("limp-writes.dat"), &mut expected);
    for i in 0..8u64 {
        b = b.read(0, i * 16 * KIB, 16 * KIB);
    }

    let Setup {
        mut runner,
        failures,
    } = build(53, config, fault, b, expected);
    let report = runner.run();
    assert!(
        failures.borrow().is_empty(),
        "degraded writes corrupted data: {:?}",
        failures.borrow()
    );
    assert_eq!(report.app_ops(IoKind::Read), 8);
    assert_eq!(
        report.gray,
        GrayFailureCounts::default(),
        "a 3x write limp inside a 50x budget must trigger nothing"
    );
    assert_eq!(report.degraded.replans, 0);
}

/// A write caught by a stall window is abandoned at its deadline and
/// re-planned until the release lets it through. Abandonment is never
/// partially visible: once the write is acknowledged, reading every
/// byte back returns exactly the final image.
#[test]
fn stalled_write_is_abandoned_and_replanned_without_partial_visibility() {
    let config = S4dConfig::new(64 * 1024 * KIB)
        .with_journal_batch(1)
        .with_deadlines(4.0, SimDuration::from_millis(2))
        // Abandon demerits must not quarantine here: the extent is
        // already mapped dirty, so the replanned write has to keep
        // taking the cache route until the release.
        .with_quarantine(1000, SimDuration::from_secs(1));
    let fault = FaultPlan::new().with(ServerFault::Stall {
        since: SimTime::from_secs(1),
        release: Some(SimTime::from_secs(1) + SimDuration::from_millis(400)),
    });

    let mut expected = HashMap::new();
    let mut b = script()
        .open("stall-write.dat")
        .think(SimDuration::from_secs(1));
    // Issued inside the stall: parks, misses its deadline, is abandoned
    // and re-planned (with backoff) until the release.
    b = write_phase(b, &mut expected);
    for i in 0..8u64 {
        b = b.read(0, i * 16 * KIB, 16 * KIB);
    }

    let Setup {
        mut runner,
        failures,
    } = build(59, config, fault, b, expected);
    let report = runner.run();
    assert!(
        failures.borrow().is_empty(),
        "abandoned writes were partially visible: {:?}",
        failures.borrow()
    );
    assert_eq!(report.app_ops(IoKind::Read), 8);
    assert!(report.gray.deadline_misses > 0);
    assert!(
        report.gray.stall_abandons > 0,
        "parked writes must be pulled off the server"
    );
    assert!(report.degraded.replans > 0, "abandoned plans must re-plan");
    let m = runner.middleware().metrics();
    assert!(m.straggler_abandons > 0);
    assert_eq!(report.gray.hedges_issued, 0, "writes never hedge");
    assert!(report.end_time >= SimTime::from_secs(1) + SimDuration::from_millis(400));
}

/// Control: deadlines armed but hedging disabled. Reads parked by a
/// released stall miss their deadlines and the policy records the miss
/// but elects to wait (there is nowhere safe to go without hedging), so
/// the run completes at the release with zero hedges.
#[test]
fn deadline_misses_without_hedging_wait_out_the_stall() {
    let config = S4dConfig::new(64 * 1024 * KIB)
        .with_journal_batch(1)
        .with_rebuild_period(SimDuration::from_millis(200))
        .with_deadlines(4.0, SimDuration::from_millis(2))
        .with_hedged_reads(false)
        // Keep quarantine out of the picture so every read parks on the
        // stalled server and must wait for the release.
        .with_quarantine(1000, SimDuration::from_secs(1));
    let release = SimTime::from_secs(2) + SimDuration::from_millis(300);
    let fault = FaultPlan::new().with(ServerFault::Stall {
        since: SimTime::from_secs(2),
        release: Some(release),
    });

    let mut expected = HashMap::new();
    let mut b = write_phase(script().open("stall-nohedge.dat"), &mut expected);
    b = b.think(SimDuration::from_millis(2100));
    for i in 0..8u64 {
        b = b.read(0, i * 16 * KIB, 16 * KIB);
    }

    let Setup {
        mut runner,
        failures,
    } = build(61, config, fault, b, expected);
    let report = runner.run();
    assert!(
        failures.borrow().is_empty(),
        "waited-out reads returned wrong bytes: {:?}",
        failures.borrow()
    );
    assert_eq!(report.app_ops(IoKind::Read), 8);
    assert!(report.gray.deadline_misses > 0, "misses are still counted");
    assert_eq!(report.gray.hedges_issued, 0, "hedging is disabled");
    assert_eq!(report.gray.stall_abandons, 0, "waiting abandons nothing");
    let m = runner.middleware().metrics();
    assert!(m.straggler_waits > 0, "the wait decision is recorded");
    assert!(
        report.end_time >= release,
        "the reads waited for the release"
    );
}
