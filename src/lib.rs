//! # s4d — Smart Selective SSD Cache for Parallel I/O Systems
//!
//! A from-scratch Rust reproduction of *S4D-Cache: Smart Selective SSD
//! Cache for Parallel I/O Systems* (He, Sun, Feng — ICDCS 2014), including
//! every substrate the paper runs on: storage device models, a PVFS2-style
//! striped parallel file system, an MPI-IO-like middleware layer, the
//! paper's cost model and selective-caching algorithms, the benchmark
//! workloads (IOR, HPIO, MPI-Tile-IO), an IOSIG-style tracer, and an
//! experiment harness regenerating every table and figure of the
//! evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name and hosts the runnable examples and cross-crate integration tests.
//!
//! ## Layer map
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`sim`] | `s4d-sim` | deterministic discrete-event engine |
//! | [`storage`] | `s4d-storage` | HDD/SSD service-time models, seek profiling, byte stores |
//! | [`pfs`] | `s4d-pfs` | striped parallel file system (OPFS/CPFS substrate) |
//! | [`cost`] | `s4d-cost` | the paper's cost model (Eq. 1–8, Table II) |
//! | [`mpiio`] | `s4d-mpiio` | MPI-IO-like API, middleware seam, simulation runner |
//! | [`cache`] | `s4d-cache` | **the contribution**: Identifier, Redirector, Rebuilder |
//! | [`workloads`] | `s4d-workloads` | IOR / HPIO / MPI-Tile-IO generators |
//! | [`trace`] | `s4d-trace` | IOSIG-style tracing and analysis |
//! | [`bench`](mod@bench) | `s4d-bench` | experiment harness for all tables/figures |
//!
//! ## Quickstart
//!
//! ```
//! use s4d::bench::{run_s4d, run_stock, testbed};
//! use s4d::cache::S4dConfig;
//! use s4d::workloads::{AccessPattern, IorConfig};
//!
//! let tb = testbed(42);
//! let ior = IorConfig {
//!     file_name: "demo.dat".into(),
//!     file_size: 16 * 1024 * 1024,
//!     processes: 8,
//!     request_size: 16 * 1024,
//!     pattern: AccessPattern::Random,
//!     do_write: true,
//!     do_read: true,
//!     seed: 7,
//! };
//! let stock = run_stock(&tb, ior.scripts(), Vec::new());
//! let s4d = run_s4d(
//!     &tb,
//!     S4dConfig::new(ior.file_size / 5),
//!     ior.scripts(),
//!     Vec::new(),
//! );
//! assert!(s4d.write_mibs() > stock.write_mibs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use s4d_bench as bench;
pub use s4d_cache as cache;
pub use s4d_cost as cost;
pub use s4d_mpiio as mpiio;
pub use s4d_pfs as pfs;
pub use s4d_sim as sim;
pub use s4d_storage as storage;
pub use s4d_trace as trace;
pub use s4d_workloads as workloads;
