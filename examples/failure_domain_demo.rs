//! Failure-domain demo: script CServer faults against one workload and
//! watch the middleware degrade gracefully instead of corrupting data.
//!
//! One write/overwrite/read job runs under four fault plans:
//!   1. healthy baseline — nothing degrades;
//!   2. transient error storm — capped-backoff retries absorb it;
//!   3. saturated error window — the CServer is quarantined, clean reads
//!      fall back to OPFS, a write in the window is denied admission;
//!   4. hard crash with data loss — unflushed overwrites are reported
//!      lost, reads roll back to the durable OPFS state, and admission
//!      resumes once the server recovers.
//!
//! ```text
//! cargo run --release --example failure_domain_demo
//! ```

use s4d::bench::testbed;
use s4d::cache::{S4dCache, S4dConfig, S4dMetrics};
use s4d::mpiio::{script, Cluster, RunReport, Runner};
use s4d::pfs::{FaultPlan, ServerFault};
use s4d::sim::{SimDuration, SimTime};

const KIB: u64 = 1024;
const REQ: u64 = 16 * KIB;
const REQS: u64 = 32;

fn run(label: &str, fault: FaultPlan) -> (RunReport, S4dMetrics) {
    let seed = 0x54D;
    let mut cluster = Cluster::paper_testbed_small(seed);
    cluster
        .cpfs_mut()
        .set_fault_plan(0, fault)
        .expect("CServer 0 exists");

    // Write 32 x 16 KiB and let the Rebuilder flush everything clean;
    // overwrite the first eight (dirty again, right before the fault
    // windows open); read it all back inside the windows plus one fresh
    // write (admission probe); then, after recovery, read again and
    // write once more.
    let mut b = script().open("demo.dat");
    for i in 0..REQS {
        b = b.write_bytes(0, i * REQ, vec![i as u8; REQ as usize]);
    }
    b = b.think(SimDuration::from_millis(1050));
    for i in 0..8 {
        b = b.write_bytes(0, i * REQ, vec![0x55; REQ as usize]);
    }
    b = b.think(SimDuration::from_millis(150));
    // Clean extents first, the dirty overwrites last: under quarantine
    // the clean ones may degrade to OPFS while dirty ones must keep the
    // cache route (the cache holds the only current copy).
    for i in (8..REQS).chain(0..8) {
        b = b.read(0, i * REQ, REQ);
    }
    b = b.write_bytes(0, REQS * REQ, vec![0xAA; REQ as usize]);
    b = b.think(SimDuration::from_secs(3));
    for i in 0..=REQS {
        b = b.read(0, i * REQ, REQ);
    }
    b = b.write_bytes(0, (REQS + 1) * REQ, vec![0xBB; REQ as usize]);

    let config = S4dConfig::new(64 * 1024 * KIB)
        .with_rebuild_period(SimDuration::from_millis(200))
        .with_retry_policy(
            SimDuration::from_micros(500),
            SimDuration::from_millis(20),
            4,
        )
        .with_quarantine(5, SimDuration::from_secs(2));
    let mut runner = Runner::new(
        cluster,
        S4dCache::new(config, testbed(seed).cost_params()),
        vec![b.close(0).build()],
        seed,
    );
    let report = runner.run();
    let metrics = *runner.middleware().metrics();

    println!("== {label}");
    println!(
        "   io_errors {:4}  retries {:4}  replans {:3}  end {:.2}s",
        report.degraded.io_errors,
        report.degraded.retries,
        report.degraded.replans,
        report.end_time.as_secs_f64(),
    );
    println!(
        "   quarantines {}  fallback_reads {}  admission_denied {}  dirty_lost {} KiB  invalidated {} KiB",
        metrics.quarantines,
        metrics.fallback_reads,
        metrics.admission_denied_health,
        metrics.dirty_bytes_lost / KIB,
        metrics.crash_invalidated_bytes / KIB,
    );
    (report, metrics)
}

fn main() {
    run("healthy baseline", FaultPlan::new());

    run(
        "transient errors (20% for 100s): retries absorb the storm",
        FaultPlan::new().with(ServerFault::TransientErrors {
            from: SimTime::ZERO,
            until: SimTime::from_secs(100),
            error_rate: 0.2,
        }),
    );

    run(
        "saturated errors (100% in [1.15s, 2.2s)): quarantine + OPFS fallback",
        FaultPlan::new().with(ServerFault::TransientErrors {
            from: SimTime::from_secs(1) + SimDuration::from_millis(150),
            until: SimTime::from_secs(2) + SimDuration::from_millis(200),
            error_rate: 1.0,
        }),
    );

    run(
        "hard crash at 1.15s, recovery at 3s: loss surfaced, reads durable",
        FaultPlan::new().with(ServerFault::Crash {
            at: SimTime::from_secs(1) + SimDuration::from_millis(150),
            recover_at: SimTime::from_secs(3),
        }),
    );

    // A fault scheduled entirely after the run ends must change nothing.
    run(
        "fault after the run ends: inert",
        FaultPlan::new().with(ServerFault::Crash {
            at: SimTime::from_secs(10_000),
            recover_at: SimTime::from_secs(10_001),
        }),
    );

    // Installing a plan on a server that does not exist is an error, not
    // a silent no-op.
    let mut cluster = Cluster::paper_testbed_small(1);
    let err = cluster
        .cpfs_mut()
        .set_fault_plan(99, FaultPlan::new())
        .unwrap_err();
    println!("== out-of-range server: {err}");
}
