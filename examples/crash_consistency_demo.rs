//! Crash-consistency demo: kill the middleware mid-effect at three
//! different durable steps — a torn cache-data write, a torn journal
//! append, and a torn checkpoint install — then rebuild it from nothing
//! but the cluster's persisted bytes and show what recovery found. A
//! final act flips a cached bit under a valid seal and lets the scrubber
//! repair it from the DServers.
//!
//! ```text
//! cargo run --release --example crash_consistency_demo
//! ```

use s4d::cache::{CrashFuse, CrashSite, S4dCache, S4dConfig};
use s4d::cost::CostParams;
use s4d::mpiio::{AppRequest, Cluster, Middleware, Plan, Rank};
use s4d::pfs::FileId;
use s4d::sim::SimTime;
use s4d::storage::{presets, IoKind};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;
const REQ: u64 = 16 * KIB;

fn params() -> CostParams {
    CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
    .with_cserver_op_overhead(300.0e-6, 16 * KIB)
}

fn config() -> S4dConfig {
    S4dConfig::new(MIB)
        .with_journal_batch(1)
        .with_checkpoint_thresholds(24, u64::MAX)
        .with_scrub(MIB)
}

/// Executes a plan against the functional stores; application payloads
/// and plan-carried journal frames pass through the fuse.
fn exec_plan(
    cluster: &mut Cluster,
    fuse: &std::rc::Rc<std::cell::RefCell<CrashFuse>>,
    plan: &Plan,
) -> bool {
    for phase in &plan.phases {
        for op in phase {
            if fuse.borrow().is_dead() {
                return false;
            }
            if op.kind != IoKind::Write {
                continue;
            }
            let Some(data) = &op.data else { continue };
            let site = if op.app_offset.is_some() {
                CrashSite::DataWrite
            } else {
                CrashSite::JournalWrite
            };
            let allowed = fuse.borrow_mut().consume(site, op.len);
            let _ = cluster
                .pfs_mut(op.tier)
                .apply_bytes(op.file, op.offset, allowed, Some(data));
            if allowed < op.len {
                return false;
            }
        }
    }
    true
}

/// Runs the demo workload until it finishes or the fuse blows, and
/// returns the cluster as the crash left it.
fn run_until_crash(budget: Option<u64>) -> (Cluster, std::rc::Rc<std::cell::RefCell<CrashFuse>>) {
    let mut cluster = Cluster::paper_testbed_small(2026);
    let mut mw = S4dCache::new(config(), params());
    let fuse = match budget {
        Some(b) => CrashFuse::armed(b).shared(),
        None => CrashFuse::unlimited().shared(),
    };
    mw.attach_crash_fuse(fuse.clone());
    let file = mw.open(&mut cluster, Rank(0), "demo.dat").unwrap();
    'script: for round in 0..3u64 {
        for i in 0..8u64 {
            let offset = (round * 8 + i) * REQ;
            let data: Vec<u8> = (0..REQ).map(|j| ((offset + j) % 241) as u8).collect();
            let req = AppRequest {
                rank: Rank(0),
                file,
                kind: IoKind::Write,
                offset,
                len: REQ,
                data: Some(data),
            };
            let plan = mw.plan_io(&mut cluster, SimTime::from_secs(round), &req);
            if !exec_plan(&mut cluster, &fuse, &plan) {
                break 'script;
            }
            if plan.tag != 0 {
                mw.on_plan_complete(&mut cluster, SimTime::from_secs(round), plan.tag);
            }
        }
        for wake in 0..20u64 {
            let now = SimTime::from_secs(10 + round * 30 + wake);
            let poll = mw.poll_background(&mut cluster, now);
            if fuse.borrow().is_dead() {
                break 'script;
            }
            for plan in &poll.plans {
                if !exec_plan(&mut cluster, &fuse, plan) {
                    break 'script;
                }
                if plan.tag != 0 {
                    mw.on_plan_complete(&mut cluster, now, plan.tag);
                }
            }
            if !poll.work_pending {
                break;
            }
        }
    }
    (cluster, fuse)
}

fn recover_and_report(label: &str, cluster: &mut Cluster) -> S4dCache {
    let (mw, report) = S4dCache::recover_from_cluster(config(), params(), cluster);
    println!("{label}");
    match report.used_checkpoint {
        Some(seq) => println!(
            "  checkpoint slot: seq {seq} ({} snapshot records)",
            report.snapshot_records
        ),
        None => println!("  checkpoint slot: none (full journal replay)"),
    }
    println!(
        "  journal tail: {} records replayed, {} torn bytes truncated",
        report.tail_records, report.dropped_journal_bytes
    );
    println!(
        "  dropped {} torn extent(s); {} dirty bytes lost; {} orphan bytes swept",
        report.dropped_extents, report.dirty_bytes_lost, report.orphan_bytes_discarded
    );
    println!(
        "  recovered mapping: {} KiB cached ({} KiB dirty), space allocated {} KiB",
        mw.dmt().mapped_bytes() / KIB,
        mw.dmt().dirty_bytes() / KIB,
        mw.space().allocated() / KIB
    );
    mw
}

fn main() {
    // Record the durable-step trace of a clean run: it defines where the
    // interesting crash points are.
    let (mut clean_cluster, fuse) = run_until_crash(None);
    let steps = fuse.borrow().steps().to_vec();
    println!(
        "clean run: {} durable steps, {} bytes persisted\n",
        steps.len(),
        fuse.borrow().consumed()
    );
    recover_and_report(
        "recovery of the cleanly-stopped cluster:",
        &mut clean_cluster,
    );

    for site in [
        CrashSite::DataWrite,
        CrashSite::JournalWrite,
        CrashSite::CheckpointWrite,
    ] {
        let Some(step) = steps.iter().find(|s| s.site == site && s.len > 1) else {
            continue;
        };
        let (mut cluster, fuse) = run_until_crash(Some(step.start + step.len / 2));
        let torn = fuse.borrow().steps().last().copied();
        println!(
            "\npower failure mid-{:?} ({} of {} bytes landed):",
            site,
            torn.map_or(0, |s| fuse.borrow().consumed() - s.start),
            torn.map_or(0, |s| s.len)
        );
        recover_and_report("after recovery:", &mut cluster);
    }

    // Bit rot under a valid seal: the scrubber catches and repairs it.
    println!("\nbit rot in a clean cached extent:");
    let (mut cluster, _fuse) = run_until_crash(None);
    let (mut mw, _) = S4dCache::recover_from_cluster(config(), params(), &mut cluster);
    let victim = mw
        .dmt()
        .iter_extents()
        .find(|(_, _, e)| !e.dirty)
        .map(|(f, o, e)| (f, o, *e));
    match victim {
        None => println!("  (no clean extent survived to corrupt)"),
        Some((f, o, e)) => {
            let byte = cluster
                .cpfs()
                .read_bytes(e.c_file, e.c_offset, 1)
                .unwrap()
                .expect("functional stores");
            cluster
                .cpfs_mut()
                .apply_bytes(e.c_file, e.c_offset, 1, Some(&[byte[0] ^ 0x40]))
                .unwrap();
            println!("  flipped a bit in extent ({:?}, {o})", FileId(f.0));
            for wake in 0..4u64 {
                let poll = mw.poll_background(&mut cluster, SimTime::from_secs(1000 + wake));
                drop(poll); // scrub runs inside the wake itself
            }
            println!(
                "  scrubber: {} KiB scanned, {} KiB repaired from DServers, {} KiB lost",
                mw.metrics().scrub_scanned_bytes / KIB,
                mw.metrics().scrub_repaired_bytes / KIB,
                mw.metrics().scrub_lost_bytes / KIB
            );
        }
    }
}
