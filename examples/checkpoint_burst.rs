//! Checkpoint-burst scenario: the workload the paper's introduction
//! motivates. An HPC application alternates computation with bursts of
//! checkpoint I/O; most of the checkpoint is a large sequential dump, but
//! each process also writes small per-rank state records at scattered
//! offsets. S4D-Cache should absorb the scattered records into the SSD
//! cache while leaving the sequential dump on the HDD array's full
//! parallelism.
//!
//! ```text
//! cargo run --release --example checkpoint_burst
//! ```

use s4d::bench::{run_s4d, run_stock, testbed};
use s4d::cache::S4dConfig;
use s4d::workloads::CheckpointConfig;

const MIB: u64 = 1 << 20;

fn main() {
    let tb = testbed(1234);
    let cfg = CheckpointConfig::representative(16);

    println!(
        "checkpoint workload: {} procs x {} rounds",
        cfg.processes, cfg.rounds
    );
    println!(
        "  per round per proc: one {} MiB sequential dump + {} scattered {} KiB records",
        cfg.dump_slice / MIB,
        cfg.records_per_round,
        cfg.record_size / 1024
    );
    println!(
        "  bulk fraction of bytes: {:.1}%",
        cfg.bulk_fraction() * 100.0
    );

    let stock = run_stock(&tb, cfg.scripts(), Vec::new());
    let s4d = run_s4d(
        &tb,
        S4dConfig::new(cfg.total_bytes() / 5),
        cfg.scripts(),
        Vec::new(),
    );

    println!();
    println!(
        "stock: {:7.1} MiB/s writes ({:.1}s simulated)",
        stock.write_mibs(),
        stock.report.end_time.as_secs_f64()
    );
    println!(
        "s4d:   {:7.1} MiB/s writes ({:.1}s simulated)",
        s4d.write_mibs(),
        s4d.report.end_time.as_secs_f64()
    );
    println!();
    println!("where did the bytes go?");
    println!(
        "  DServers: {:6.1} MiB in {:>5} ops (the sequential dumps)",
        s4d.report.tiers.d_bytes as f64 / MIB as f64,
        s4d.report.tiers.d_ops
    );
    println!(
        "  CServers: {:6.1} MiB in {:>5} ops (the scattered records)",
        s4d.report.tiers.c_bytes as f64 / MIB as f64,
        s4d.report.tiers.c_ops
    );
    let avg_d = s4d.report.tiers.d_bytes as f64 / s4d.report.tiers.d_ops.max(1) as f64;
    let avg_c = s4d.report.tiers.c_bytes as f64 / s4d.report.tiers.c_ops.max(1) as f64;
    println!(
        "  mean op size: DServers {:.0} KiB vs CServers {:.0} KiB — the cache took \
         the small random traffic, exactly the selectivity the paper designs for",
        avg_d / 1024.0,
        avg_c / 1024.0
    );
}
