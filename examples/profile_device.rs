//! Offline seek-curve profiling — the methodology behind the cost model's
//! `F(d)` function (paper §III.B, following its reference [28]).
//!
//! Probes a drive at logarithmically spaced distances, strips the
//! rotational component, fits the two-regime seek curve by least squares,
//! and compares the fit against the drive's ground truth.
//!
//! ```text
//! cargo run --release --example profile_device
//! ```

use s4d::sim::SimRng;
use s4d::storage::{presets, profile};

fn main() {
    let config = presets::hdd_seagate_st3250();
    let mut rng = SimRng::seed(2014);

    println!("probing SEAGATE ST32502NS model (96 samples per distance)...");
    let samples = profile::collect_seek_samples(&config, 96, &mut rng);
    println!("{} distances probed:", samples.len());
    for s in samples.iter().step_by(4) {
        println!(
            "  d = {:>12} bytes   seek ≈ {:6.2} ms",
            s.distance,
            s.seek_secs * 1e3
        );
    }

    let fitted = profile::fit_seek_profile(&samples).expect("fit succeeds");
    let truth = config.seek_profile();
    println!("\nfitted vs ground-truth curve:");
    println!(
        "{:>14}  {:>10}  {:>10}  {:>7}",
        "distance", "truth ms", "fitted ms", "error"
    );
    for exp in [16u64, 20, 24, 28, 32, 36, 37] {
        let d = 1u64 << exp;
        let t = truth.seek_secs(d) * 1e3;
        let f = fitted.seek_secs(d) * 1e3;
        println!(
            "{:>14}  {:>10.3}  {:>10.3}  {:>6.1}%",
            format!("2^{exp}"),
            t,
            f,
            if t > 0.0 { (f - t) / t * 100.0 } else { 0.0 }
        );
    }
    println!(
        "\nfull-stroke cap: truth {:.2} ms, fitted {:.2} ms",
        truth.max_seek_secs() * 1e3,
        fitted.max_seek_secs() * 1e3
    );
    println!("this fitted curve is exactly what CostParams uses as F(d).");
}
