//! Quickstart: run the same random-I/O workload over the stock parallel
//! file system and over S4D-Cache, and compare throughput.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use s4d::bench::{run_s4d, run_stock, testbed};
use s4d::cache::S4dConfig;
use s4d::workloads::{AccessPattern, IorConfig};

fn main() {
    // The paper's testbed: 8 HDD DServers + 4 SSD CServers, 64 KiB stripes.
    let tb = testbed(42);

    // A small random IOR workload: 16 processes, 16 KiB requests, shared
    // 256 MiB file — the access pattern parallel file systems hate most.
    let ior = IorConfig {
        file_name: "quickstart.dat".into(),
        file_size: 256 << 20,
        processes: 16,
        request_size: 16 * 1024,
        pattern: AccessPattern::Random,
        do_write: true,
        do_read: true,
        seed: 7,
    };

    println!("running stock middleware (all I/O to the HDD servers)...");
    let stock = run_stock(&tb, ior.scripts(), Vec::new());

    println!("running S4D-Cache (cache capacity = 20% of data)...");
    let s4d = run_s4d(
        &tb,
        S4dConfig::new(ior.file_size / 5),
        ior.scripts(),
        Vec::new(),
    );

    println!();
    println!(
        "stock: write {:7.1} MiB/s   read {:7.1} MiB/s",
        stock.write_mibs(),
        stock.read_mibs()
    );
    println!(
        "s4d:   write {:7.1} MiB/s   read {:7.1} MiB/s",
        s4d.write_mibs(),
        s4d.read_mibs()
    );
    println!(
        "write speedup: {:.1}x   requests redirected to CServers: {:.1}%",
        s4d.write_mibs() / stock.write_mibs(),
        s4d.report.tiers.cserver_op_share()
    );
    println!(
        "identifier: {} of {} requests classified performance-critical",
        s4d.metrics.critical, s4d.metrics.evaluated
    );
}
