//! Second-run read acceleration on MPI-Tile-IO.
//!
//! "Many MPI programs are executed several times and present consistent
//! data access patterns. The critical data identified and cached by
//! S4D-Cache in the first run can improve read performance in the later
//! runs." (§V.A) — this example reproduces that lifecycle on the
//! MPI-Tile-IO benchmark: run once (the Identifier learns, the Rebuilder
//! caches), then run the reads again and watch them hit the SSDs.
//!
//! ```text
//! cargo run --release --example tile_rerun
//! ```

use s4d::bench::{run_s4d_second_read, run_stock, testbed};
use s4d::cache::S4dConfig;
use s4d::workloads::TileIoConfig;

fn main() {
    let tb = testbed(77);
    let mut cfg = TileIoConfig::paper_default("tiles.dat", 100);
    cfg.element_size = 8 * 1024; // keep the example quick
    let data = cfg.dataset_bytes();
    println!(
        "MPI-Tile-IO: {} processes in a {:?} grid, {} MiB dataset",
        cfg.processes,
        cfg.grid(),
        data >> 20
    );

    let stock = run_stock(&tb, cfg.scripts(), Vec::new());
    println!(
        "stock read throughput:        {:7.1} MiB/s",
        stock.read_mibs()
    );

    // First run: write + read (the read misses mark the CDT); the Rebuilder
    // then fetches critical data into CServers; the second, read-only run
    // is what we measure.
    let read_only = TileIoConfig {
        do_write: false,
        ..cfg.clone()
    };
    let second = run_s4d_second_read(
        &tb,
        S4dConfig::new(data / 5),
        cfg.scripts(),
        read_only.scripts(),
    );
    println!(
        "s4d second-run read:          {:7.1} MiB/s  ({:+.1}%)",
        second.read_mibs(),
        (second.read_mibs() - stock.read_mibs()) / stock.read_mibs() * 100.0
    );
    println!(
        "second-run requests served by CServers: {:.1}%",
        second.report.tiers.cserver_op_share()
    );
}
