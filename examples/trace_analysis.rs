//! Tracing and access-pattern analysis (the paper's IOSIG methodology).
//!
//! Attaches the `s4d-trace` collector to a mixed campaign run, then
//! reproduces the kind of analysis behind the paper's Table III: request
//! distribution over a time window, per-rank sequentiality, mean request
//! distance, and a per-tier bandwidth timeline.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use s4d::bench::{run_s4d, testbed};
use s4d::cache::S4dConfig;
use s4d::mpiio::Tier;
use s4d::sim::{SimDuration, SimTime};
use s4d::storage::IoKind;
use s4d::trace::{analysis, TraceCollector};
use s4d::workloads::campaign::CampaignConfig;

fn main() {
    let tb = testbed(9);
    let cfg = CampaignConfig::paper_mix(16, 64 << 20, 16 * 1024);
    let capacity = cfg.total_data_bytes() / 5;

    let (collector, handle) = TraceCollector::new();
    let out = run_s4d(
        &tb,
        S4dConfig::new(capacity),
        cfg.scripts(),
        vec![Box::new(collector)],
    );
    let records = handle.snapshot();
    println!(
        "traced {} dispatched requests over {:.1} simulated seconds",
        records.len(),
        out.report.end_time.as_secs_f64()
    );

    // Table-III-style distribution over the middle of the run.
    let end = out.report.end_time.as_nanos();
    let window = (
        SimTime::from_nanos(end / 2),
        SimTime::from_nanos(end / 2 + end / 10),
    );
    let writes = analysis::tier_distribution(&records, Some(window), Some(IoKind::Write));
    println!(
        "write distribution in mid-run window: DServers {:.1}% / CServers {:.1}%",
        writes.d_percent(),
        writes.c_percent()
    );

    println!(
        "per-rank sequentiality: {:.1}% of requests continue the previous one",
        analysis::sequentiality(&records) * 100.0
    );
    println!(
        "mean logical distance between consecutive requests: {:.1} MiB",
        analysis::mean_distance(&records) / (1 << 20) as f64
    );

    // A bandwidth timeline per tier (1-second windows).
    println!("\nper-tier dispatch bandwidth (MiB/s per 1s window):");
    let d = analysis::bandwidth_series(&records, SimDuration::from_secs(1), Tier::DServers);
    let c = analysis::bandwidth_series(&records, SimDuration::from_secs(1), Tier::CServers);
    for (i, (t, d_mibs)) in d.iter_mibs().enumerate().take(12) {
        let c_mibs = c.iter_mibs().nth(i).map(|(_, v)| v).unwrap_or(0.0);
        println!(
            "  t={:>5.1}s  D {:8.1}  C {:8.1}",
            t.as_secs_f64(),
            d_mibs,
            c_mibs
        );
    }

    // First few CSV rows, as IOSIG would export them.
    println!("\ntrace CSV head:");
    for line in handle.to_csv().lines().take(5) {
        println!("  {line}");
    }
}
