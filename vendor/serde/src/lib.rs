//! Minimal shim for the `serde` facade.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros. Nothing in the workspace performs actual
//! serialization, so the traits carry no methods.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
