//! Minimal shim for `criterion`: wall-clock micro-benchmarking with the
//! `bench_function`/`iter` calling convention. Prints mean time per
//! iteration; no warm-up analysis, outlier rejection, or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints the mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            batch: 1,
        };
        // Calibrate: grow the iteration count until the batch takes ≥ 20 ms,
        // then time three batches.
        let mut per_batch = 1u64;
        loop {
            b.iters = 0;
            b.elapsed = Duration::ZERO;
            b.batch = per_batch;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(20) || per_batch >= 1 << 24 {
                break;
            }
            per_batch *= 8;
        }
        let mut total = b.elapsed;
        let mut iters = b.iters;
        for _ in 0..2 {
            b.iters = 0;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        let per_iter = if iters == 0 {
            Duration::ZERO
        } else {
            total / u32::try_from(iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!("{name:<40} {per_iter:>12.2?}/iter ({iters} iters)");
        self
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    batch: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let n = self.batch.max(1);
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += n;
    }
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
