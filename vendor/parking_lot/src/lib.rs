//! Minimal shim for `parking_lot`: a `Mutex` with the parking_lot calling
//! convention (`lock()` returns the guard directly, no poisoning) backed by
//! `std::sync::Mutex`. If a thread panics while holding the lock, the next
//! `lock()` simply recovers the inner value instead of propagating poison.

use std::sync::PoisonError;

/// Mutual exclusion primitive with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
