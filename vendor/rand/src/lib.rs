//! Minimal shim for `rand` 0.8 providing the surface the workspace uses:
//! `rngs::StdRng`, the `RngCore`/`SeedableRng`/`Rng` traits, `gen::<T>()`
//! for integer/float/bool, and `gen_range` over half-open integer ranges.
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64 (the upstream-
//! recommended seeding scheme for the xoshiro family). Streams therefore
//! differ from upstream `StdRng` (ChaCha12) for the same seed; the
//! workspace asserts determinism and distributional properties, never exact
//! sequences, so this is safe.

use std::ops::Range;

/// Pseudo-random number generators.
pub mod rngs {
    /// Deterministic generator: xoshiro256** (Blackman & Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }
}

/// Core randomness source: a stream of 64-bit values.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from an [`RngCore`] (stand-in for sampling from
/// rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integers samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Rejection sampling to avoid modulo bias.
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (lo as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience draws layered over [`RngCore`] (auto-implemented).
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly (rand's `gen::<T>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.gen_range(3u64..7);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "both endpoints should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
