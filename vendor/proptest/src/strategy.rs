//! Strategy combinators and the deterministic sampling RNG.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic RNG used to sample strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, derived from the test name and case index so
    /// every run of the suite samples identical inputs.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Modulo is fine here: inputs need coverage, not exact uniformity.
        self.next_u64() % n
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Strategy yielding one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy over the whole domain of `T`.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
