//! Minimal shim for `proptest`: deterministic random sampling of the
//! strategy combinators the workspace uses. No shrinking, no failure
//! persistence — a failing case panics with the case number so it can be
//! reproduced (sampling is a pure function of test name and case index).
//!
//! Supported surface: `proptest!` (with optional `#![proptest_config(..)]`),
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_oneof!`,
//! integer range strategies, tuple strategies, `any::<T>()`, `Just`,
//! `Strategy::prop_map`/`boxed`, and `collection::vec`.

pub mod collection;
pub mod strategy;

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Per-test configuration (subset of upstream's fields).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to sample per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` block is
/// expanded to a `#[test]` that samples `config.cases` inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::strategy::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let run = || $body;
                    run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..10, 5u8..6), flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            let _ = flag;
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u64..4).prop_map(|x| x * 2),
            (10u64..12).prop_map(|x| x + 1),
        ]) {
            prop_assert!(v % 2 == 0 && v < 8 || (11..13).contains(&v));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::{Strategy, TestRng};
        let s = crate::collection::vec(0u64..1000, 1..50);
        let a = s.sample(&mut TestRng::for_case("x", 3));
        let b = s.sample(&mut TestRng::for_case("x", 3));
        let c = s.sample(&mut TestRng::for_case("x", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
