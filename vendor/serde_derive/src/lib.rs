//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to mark types
//! as serializable for future tooling; nothing serializes at runtime, so the
//! derives expand to nothing. `#[serde(...)]` helper attributes are accepted
//! and ignored.

use proc_macro::TokenStream;

/// Derives `Serialize` (expands to nothing; see crate docs).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives `Deserialize` (expands to nothing; see crate docs).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
